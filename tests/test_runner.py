"""Smoke tests for the all-experiments runner (heavy parts stubbed)."""

import pytest

from repro.experiments import runner


class TestRunner:
    def test_main_writes_output(self, tmp_path, monkeypatch):
        artifacts = ["TABLE A", "TABLE B"]
        monkeypatch.setattr(runner, "run_all", lambda scale: artifacts)
        out = tmp_path / "report.txt"
        assert runner.main(["--scale", "tiny", "--output", str(out)]) == 0
        assert out.read_text() == "TABLE A\n\nTABLE B\n"

    def test_main_without_output(self, monkeypatch, capsys):
        monkeypatch.setattr(runner, "run_all", lambda scale: ["X"])
        assert runner.main([]) == 0
        assert "wrote" not in capsys.readouterr().out

    def test_run_all_light_half(self, monkeypatch, capsys):
        """The illustrative tables run for real; the evaluation half is
        stubbed so the smoke test stays fast."""
        import repro.experiments.runner as r

        monkeypatch.setattr(
            r, "table4a_same_technology", lambda scale: (_FakeReport(), "IVa")
        )
        monkeypatch.setattr(
            r,
            "table4bc_cross_technology",
            lambda tech, scale: (_FakeReport(), f"IV-{tech}"),
        )
        monkeypatch.setattr(r, "accuracy_bands", lambda tech, scale: _FakeBands())
        monkeypatch.setattr(r, "hybrid_flow_study", lambda scale: _FakeStudy())
        artifacts = r.run_all(scale="tiny", verbose=False)
        joined = "\n".join(artifacts)
        assert "Table II" in joined
        assert "IVa" in joined and "IV-c28" in joined and "hybrid" in joined


class _FakeReport:
    def mean_accuracy(self):
        return 0.99

    def accuracy_fraction_above(self, threshold=0.97):
        return 0.9

    uncovered = ()


class _FakeBands:
    def render(self):
        return "bands"


class _FakeStudy:
    def render(self):
        return "hybrid study"
