"""Lightweight lint gate: no bare ``print(`` in library code.

Library modules must report through :mod:`repro.obs` (events / metrics /
spans) so output is structured, level-filtered, and capturable.  Only the
two sanctioned console sinks may print: the CLI itself and the experiment
runner's artifact printing.  The same rule runs in CI as ruff's T201
(see .ruff.toml per-file-ignores); this test keeps the gate active in
environments without ruff.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: module paths (relative to src/repro) allowed to print
ALLOWED = {
    "cli.py",
    "experiments/runner.py",
}

#: a call of the print builtin (not a method like writer.print_header)
PRINT_CALL = re.compile(r"(?<![\w.])print\(")


def test_no_bare_print_outside_sinks():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC).as_posix()
        if relative in ALLOWED:
            continue
        for number, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if PRINT_CALL.search(code):
                offenders.append(f"{relative}:{number}: {line.strip()}")
    assert not offenders, (
        "bare print() in library code (use repro.obs.events):\n"
        + "\n".join(offenders)
    )


def test_allowed_sinks_exist():
    # guard against the allowlist silently rotting after a refactor
    for relative in ALLOWED:
        assert (SRC / relative).exists(), relative
