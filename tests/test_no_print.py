"""No-print gate, now a thin shim over the repro.lint framework.

The regex scanner that used to live here became lint rule RPL001
(``no-print``) in :mod:`repro.lint.rules.obs` — AST-based, so method
calls like ``writer.print_header()`` and prints inside strings no longer
need regex heuristics.  This shim keeps the historical test name alive
so the gate cannot silently disappear from the suite, and guards the
sink allowlist against rot.  See docs/static-analysis.md.
"""

from pathlib import Path

from repro.lint import LintConfig, run_lint, select_rules

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_no_bare_print_outside_sinks():
    findings = run_lint([REPO_ROOT / "src"], select_rules(["RPL001"]))
    assert not findings, (
        "bare print() in library code (use repro.obs.events):\n"
        + "\n".join(f.render() for f in findings)
    )


def test_allowed_sinks_exist():
    # guard against the allowlist silently rotting after a refactor
    for pattern in LintConfig().print_allowed:
        relative = pattern.lstrip("*/")
        assert (REPO_ROOT / "src" / relative).exists(), pattern
