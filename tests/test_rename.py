"""Unit tests for canonical transistor renaming — the paper's key step."""

import pytest

from repro.camatrix import activity_values, rename_transistors
from repro.library import C28, C40, SOI28, build_cell, function_names, CATALOG
from repro.library.synth import SynthesisOptions, synthesize
from repro.library.catalog import get as get_function


class TestPaperTable2:
    """The NAND2 renaming example of Table II, reproduced exactly."""

    def test_activity_values(self, nand2):
        activity = activity_values(nand2, params=SOI28.electrical)
        by_gate = {}
        for t in nand2.transistors:
            by_gate[(t.ttype, t.gate)] = activity[t.name]
        assert by_gate[("nmos", "A")] == 3
        assert by_gate[("nmos", "B")] == 5
        assert by_gate[("pmos", "A")] == 12
        assert by_gate[("pmos", "B")] == 10

    def test_renaming(self, nand2):
        renamed = rename_transistors(nand2, SOI28.electrical)
        # sorted by ascending activity: N0=3, N1=5, P0=10, P1=12
        assert renamed.activity == {"N0": 3, "N1": 5, "P0": 10, "P1": 12}

    def test_canonical_netlist_devices_renamed(self, nand2):
        renamed = rename_transistors(nand2, SOI28.electrical)
        assert sorted(t.name for t in renamed.cell.transistors) == [
            "N0",
            "N1",
            "P0",
            "P1",
        ]

    def test_signature(self, nand2):
        renamed = rename_transistors(nand2, SOI28.electrical)
        assert renamed.signature == ("((1n&1n)|1p|1p)",)


class TestCrossLibraryInvariance:
    @pytest.mark.parametrize(
        "function",
        sorted(set(SOI28.functions) & set(C40.functions) & set(C28.functions)),
    )
    def test_signature_and_equations_match(self, function):
        rows = []
        for tech in (SOI28, C40, C28):
            cell = build_cell(tech, function, 1)
            renamed = rename_transistors(cell, tech.electrical)
            rows.append((renamed.signature, tuple(renamed.equations())))
        assert rows[0] == rows[1] == rows[2]

    def test_shuffle_invariance(self):
        """Renaming must not depend on source transistor order or names."""
        fdef = get_function("AOI21")
        spec = fdef.spec(["A", "B", "C"], "Z")
        reference = None
        for seed in (None, 3, 99, 1234):
            cell = synthesize(spec, "AOI21", SynthesisOptions(shuffle_seed=seed))
            renamed = rename_transistors(cell)
            gates = tuple(
                cell.transistor(old).gate
                for old, _new in sorted(
                    renamed.mapping.items(), key=lambda kv: kv[1]
                )
            )
            key = (renamed.signature, gates, tuple(sorted(renamed.activity.items())))
            if reference is None:
                reference = key
            else:
                assert key == reference

    def test_mapping_is_bijection(self, aoi21):
        renamed = rename_transistors(aoi21, SOI28.electrical)
        assert len(set(renamed.mapping.values())) == aoi21.n_transistors

    def test_counts_by_type(self, aoi21):
        renamed = rename_transistors(aoi21, SOI28.electrical)
        names = renamed.canonical_names()
        n = [x for x in names if x.startswith("N")]
        p = [x for x in names if x.startswith("P")]
        assert len(n) == sum(t.is_nmos for t in aoi21.transistors)
        assert len(p) == sum(t.is_pmos for t in aoi21.transistors)
        assert n == [f"N{i}" for i in range(len(n))]
        assert p == [f"P{i}" for i in range(len(p))]

    def test_pin_order_preserved_for_builder_cells(self, nand2):
        renamed = rename_transistors(nand2, SOI28.electrical)
        assert renamed.pin_order == nand2.inputs

    def test_drive_styles_have_different_signatures(self):
        merged = rename_transistors(build_cell(SOI28, "NAND2", 2), SOI28.electrical)
        split = rename_transistors(build_cell(C40, "NAND2", 2), C40.electrical)
        assert merged.signature != split.signature


class TestActivityValues:
    def test_range(self, aoi21):
        activity = activity_values(aoi21, params=SOI28.electrical)
        upper = 2 ** (2 ** aoi21.n_inputs)
        assert all(0 <= v < upper for v in activity.values())

    def test_complementary_pairs(self, nand2):
        """NMOS and PMOS gated by the same pin have complementary bits."""
        activity = activity_values(nand2, params=SOI28.electrical)
        mask = (1 << (2 ** nand2.n_inputs)) - 1
        for pin in nand2.inputs:
            pair = [t for t in nand2.transistors if t.gate == pin]
            n = next(t for t in pair if t.is_nmos)
            p = next(t for t in pair if t.is_pmos)
            assert activity[n.name] ^ activity[p.name] == mask

    def test_pin_order_changes_values(self, nand2):
        default = activity_values(nand2, params=SOI28.electrical)
        swapped = activity_values(
            nand2, params=SOI28.electrical, pin_order=list(reversed(nand2.inputs))
        )
        assert default != swapped

    def test_bad_pin_order(self, nand2):
        with pytest.raises(ValueError):
            activity_values(nand2, params=SOI28.electrical, pin_order=["A", "Q"])
