"""Hypothesis properties of the coordinator/worker lease protocol.

Three layers are exercised, all against real on-disk state:

* **Lease interleavings** — arbitrary op sequences (claim, heartbeat,
  clock advance, reap, complete, fail, silent worker death) across N
  simulated workers drive a real :class:`~repro.service.lease.LeaseStore`
  through its injectable clock.  Invariants: a cell is never lost (it is
  always claimable again after at most one TTL), never characterized
  twice (the exclusive CAS commit admits exactly one artifact), a live
  non-expired lease is never stolen, and the lifetime attempt index —
  recovered from the telemetry shards alone — is never reused.
* **Resume accounting** — per-cell scripts of crash / die-after-commit
  outcomes replay coordinator sessions (killed and resumed at arbitrary
  points) over a real :class:`~repro.resilience.ledger.RunLedger`.
  Invariants: every cell's counters land in ``metrics_total()`` exactly
  once no matter how many sessions it took, and no cell is collected
  twice.
* **Commit/claim edges** — deterministic checks of the exactly-once
  hardlink commit and of torn (unparseable) claim files being
  immediately reapable.
"""

import json
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.camodel import generate_ca_model
from repro.library import SOI28, build_cell
from repro.obs import store as obs_store
from repro.resilience.ledger import DONE, RunLedger
from repro.resilience.runner import canonical_model_dict, read_sidecar
from repro.service.lease import LeaseStore
from repro.service.worker import commit_artifact, next_attempt_index

# ----------------------------------------------------------------------
# Lease interleaving property
# ----------------------------------------------------------------------

CELLS = ("C0", "C1", "C2")
WORKERS = ("w0", "w1", "w2")
KEY = "k"
TTL = 5.0


class FakeClock:
    """Deterministic injectable time for :class:`LeaseStore`."""

    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _cell_data(name):
    return {"cell": name, "payload": "model-bytes"}


op_strategy = st.one_of(
    st.tuples(
        st.just("claim"),
        st.sampled_from(WORKERS),
        st.sampled_from(CELLS),
    ),
    st.tuples(st.just("heartbeat"), st.sampled_from(WORKERS)),
    st.tuples(st.just("complete"), st.sampled_from(WORKERS)),
    st.tuples(st.just("fail"), st.sampled_from(WORKERS)),
    st.tuples(st.just("die"), st.sampled_from(WORKERS)),
    st.tuples(st.just("advance"), st.sampled_from([1.0, 3.0, 6.0])),
    st.tuples(st.just("reap")),
)


class _World:
    """One simulated fleet following the real worker/coordinator protocol."""

    def __init__(self, run_dir: Path) -> None:
        self.run_dir = run_dir
        self.models_dir = run_dir / "models"
        self.models_dir.mkdir(parents=True)
        self.clock = FakeClock()
        self.leases = LeaseStore(run_dir, ttl=TTL, clock=self.clock)
        self.store = obs_store.ObsStore(run_dir)
        self.held = {}  # worker -> Lease it believes it holds
        self.commits = {name: 0 for name in CELLS}
        self.attempts_used = {name: set() for name in CELLS}

    def artifact(self, name: str) -> Path:
        return self.models_dir / f"{name}-{KEY}.json"

    def write_shard(self, name: str, attempt: int, outcome: str) -> None:
        obs_store.write_attempt_shard(
            self.store.attempt_shard_path(name, KEY, attempt),
            cell=name,
            key=KEY,
            attempt=attempt,
            outcome=outcome,
            pid=0,
            started=self.clock.now,
            seconds=0.0,
            counters={},
            spans=[],
            events=[],
            error=None if outcome == "ok" else outcome,
        )

    # -- ops, mirroring worker_loop / run_attempt / the coordinator ----
    def claim(self, worker: str, name: str) -> None:
        if worker in self.held:
            return  # one cell at a time, like worker_loop
        if self.artifact(name).exists():
            return  # committed; not claimable
        if self.leases.read(name) is not None:
            return  # visibly leased; workers never steal
        attempt = next_attempt_index(self.store.obs_dir, name, KEY, 0)
        lease = self.leases.claim(name, worker, attempt)
        if lease is None:
            return  # lost the O_EXCL race (impossible sequentially)
        # the shard-recovered index is never reused by a later attempt
        assert attempt not in self.attempts_used[name]
        self.attempts_used[name].add(attempt)
        # any previous believer on this cell has verifiably lost it
        for other, other_lease in list(self.held.items()):
            if other_lease.cell == name:
                assert not self.leases.heartbeat(other_lease)
                del self.held[other]
        self.held[worker] = lease

    def heartbeat(self, worker: str) -> None:
        lease = self.held.get(worker)
        if lease is None:
            return
        if not self.leases.heartbeat(lease):
            del self.held[worker]  # lost: discard before the commit point

    def complete(self, worker: str) -> None:
        lease = self.held.pop(worker, None)
        if lease is None:
            return
        if not self.leases.heartbeat(lease):
            return  # still_held() failed: discard, write nothing
        committed = commit_artifact(
            self.run_dir, self.artifact(lease.cell), _cell_data(lease.cell)
        )
        assert committed, "a held, heartbeat-fresh lease lost the commit"
        self.commits[lease.cell] += 1
        assert self.commits[lease.cell] == 1  # never characterized twice
        self.write_shard(lease.cell, lease.attempt, "ok")
        self.leases.release(lease)

    def fail(self, worker: str) -> None:
        lease = self.held.pop(worker, None)
        if lease is None:
            return
        if not self.leases.heartbeat(lease):
            return  # already written off by the reaper
        self.write_shard(lease.cell, lease.attempt, "exception")
        self.leases.release(lease)

    def die(self, worker: str) -> None:
        # silent SIGKILL: the lease file stays until the reaper takes it
        self.held.pop(worker, None)

    def advance(self, dt: float) -> None:
        self.clock.advance(dt)

    def reap(self) -> None:
        def before_unlink(name, record):
            attempt = int(record.get("attempt", -1))
            if attempt >= 0 and not self.store.has_attempt(
                name, KEY, attempt
            ):
                self.write_shard(name, attempt, "crash")

        self.leases.reap_expired(before_unlink=before_unlink)

    # -- invariants checked after every op ------------------------------
    def check(self) -> None:
        for worker, lease in self.held.items():
            if lease.expires > self.clock.now:
                # a live, non-expired lease is never reaped or stolen
                record = self.leases.read(lease.cell)
                assert record is not None
                assert record.get("owner") == worker
        for name in CELLS:
            assert self.commits[name] <= 1
            if self.commits[name]:
                assert json.loads(
                    self.artifact(name).read_text()
                ) == _cell_data(name)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(op_strategy, max_size=60))
def test_lease_interleavings_never_lose_or_double_characterize(ops):
    run_dir = Path(tempfile.mkdtemp(prefix="service-lease-prop-"))
    try:
        world = _World(run_dir)
        for op in ops:
            getattr(world, op[0])(*op[1:])
            world.check()
        # Drain: expire every straggler, reap once, and finish the job
        # with one surviving worker — no interleaving may have lost a
        # cell or burned its claimability.
        world.clock.advance(TTL + 1.0)
        world.reap()
        for name in CELLS:
            if world.artifact(name).exists():
                continue
            world.held.pop("finisher", None)
            world.claim("finisher", name)
            assert "finisher" in world.held, f"{name} is not claimable"
            world.complete("finisher")
        for name in CELLS:
            assert world.commits[name] == 1  # exactly once, never lost
            assert world.artifact(name).exists()
        # lifetime attempt indices are a gap-free unique sequence
        for name, used in world.attempts_used.items():
            assert used == set(range(len(used)))
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)


# ----------------------------------------------------------------------
# Resume accounting property
# ----------------------------------------------------------------------

OPTIONS = {"policy": "exhaustive", "delay_detection": True}

CRASH = "crash"
DIE_AFTER_COMMIT = "die-after-commit"

service_scripts = st.dictionaries(
    keys=st.sampled_from(["C0", "C1", "C2"]),
    values=st.lists(st.sampled_from([CRASH, DIE_AFTER_COMMIT]), max_size=2),
    min_size=1,
    max_size=3,
)


@pytest.fixture(scope="module")
def model_dict():
    cell = build_cell(SOI28, "NAND2", 1)
    model = generate_ca_model(cell, params=SOI28.electrical)
    return canonical_model_dict(model)


def _artifact_for(model_dict, name):
    data = dict(model_dict)
    data["cell"] = name
    return data


class _CoordinatorKilled(Exception):
    """The simulated coordinator died mid-session."""


def _commit(run_dir, ledger, name, model_dict):
    """A worker's commit: sidecar first, then the exclusive hardlink."""
    ledger.sidecar_path(name).write_text(
        json.dumps({"seconds": 1.0, "counters": {"work": 1.0}, "spans": []})
    )
    assert commit_artifact(
        run_dir, ledger.artifact_path(name), _artifact_for(model_dict, name)
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(scripts=service_scripts)
def test_service_resume_never_double_counts_counters(scripts, model_dict):
    run_dir = Path(tempfile.mkdtemp(prefix="service-resume-prop-"))
    try:
        names = sorted(scripts)
        cells = [(name, f"key-{name}") for name in names]
        cursor = {name: 0 for name in names}
        collected_in = {}  # cell -> session index that merged its counters
        session_merges = []  # per-session merged counter sums
        sessions = 0
        bound = sum(len(s) for s in scripts.values()) + len(names) + 4
        while sessions <= bound:
            ledger = RunLedger.open(
                run_dir, OPTIONS, cells, resume=sessions > 0
            )
            ledger.recover()
            merged = {}
            session_merges.append(merged)
            try:
                for name in names:
                    while ledger.state(name) != DONE:
                        if ledger.validate_artifact(name):
                            # coordinator collect path: exactly-once done
                            seconds, counters, _ = read_sidecar(ledger, name)
                            ledger.mark_done(
                                name, seconds=seconds, metrics=counters
                            )
                            assert name not in collected_in
                            collected_in[name] = sessions
                            for key, value in counters.items():
                                merged[key] = merged.get(key, 0) + value
                            continue
                        action = (
                            scripts[name][cursor[name]]
                            if cursor[name] < len(scripts[name])
                            else "ok"
                        )
                        cursor[name] += 1
                        ledger.mark_running(name)
                        if action == CRASH:
                            ledger.record_failure(name, {"kind": "crash"})
                        elif action == DIE_AFTER_COMMIT:
                            _commit(run_dir, ledger, name, model_dict)
                            raise _CoordinatorKilled(name)
                        else:
                            _commit(run_dir, ledger, name, model_dict)
            except _CoordinatorKilled:
                sessions += 1
                continue
            sessions += 1
            if all(
                RunLedger.load(run_dir).state(name) == DONE for name in names
            ):
                break
        final = RunLedger.load(run_dir)
        assert set(final.names_in(DONE)) == set(names)
        # each done cell's counters are in the total exactly once, no
        # matter how many coordinator deaths and resumes it took
        assert final.metrics_total().get("work", 0.0) == float(len(names))
        # ... and exactly one session performed each cell's merge (a
        # recovery-promoted cell flows through the ledger, never twice)
        merge_counts = {}
        for merged in session_merges:
            for key, value in merged.items():
                merge_counts[key] = merge_counts.get(key, 0.0) + value
        promoted = [n for n in names if n not in collected_in]
        assert merge_counts.get("work", 0.0) == float(
            len(names) - len(promoted)
        )
        for name in promoted:
            # died-after-commit cells the next session's recover()
            # promoted still carry their sidecar counters in the ledger
            assert final.cells[name]["metrics"] == {"work": 1.0}
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)


# ----------------------------------------------------------------------
# Commit / claim edge cases (deterministic)
# ----------------------------------------------------------------------


def test_commit_artifact_admits_exactly_one_winner(tmp_path):
    artifact = tmp_path / "models" / f"C0-{KEY}.json"
    artifact.parent.mkdir(parents=True)
    data = _cell_data("C0")
    assert commit_artifact(tmp_path, artifact, data) is True
    # the second committer loses the hardlink race and must discard
    assert commit_artifact(tmp_path, artifact, data) is False
    assert json.loads(artifact.read_text()) == data


def test_torn_claim_is_immediately_reapable(tmp_path):
    clock = FakeClock()
    leases = LeaseStore(tmp_path, ttl=TTL, clock=clock)
    (tmp_path / "leases" / "C0.json").write_text("{never finished")
    # a torn claim reads as an empty record, which counts as expired
    assert leases.read("C0") == {}
    reaped = leases.reap_expired()
    assert [record["cell"] for record in reaped] == ["C0"]
    assert leases.claim("C0", "w0", 0) is not None
