"""Differential tests: batched solving vs the scalar reference oracle.

The vectorized batch kernel (`StaticSolver.solve_batch` threaded through
`CellSimulator.solve_words`) is an optimization, not a semantic change:
the scalar per-word path is the reference implementation and the batched
path must reproduce it byte for byte — same net codes, same retention
behaviour, same detection tables, and even the same solve / cache-hit
counter sequences.  These tests enforce that contract over the full
synthesized cell catalog, over whole defect universes, and over
Hypothesis-generated random cells.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.camodel import (
    generate_ca_model,
    generate_multi,
    resolve_policy,
    stimuli,
)
from repro.defects.universe import default_universe
from repro.library import SOI28, build_cell, function_names
from repro.library.synth import (
    CellSpec,
    Leaf,
    StageSpec,
    parallel,
    series,
    synthesize,
)
from repro.simulation import CellSimulator, GOLDEN

PARAMS = SOI28.electrical


def _word_set(cell):
    policy = resolve_policy(cell.n_inputs, "auto")
    return stimuli(cell.n_inputs, policy)


def _assert_identical(cell, effect, words):
    """Scalar and batched simulators must agree on everything visible."""
    scalar = CellSimulator(cell, params=PARAMS, effect=effect, batched=False)
    batched = CellSimulator(cell, params=PARAMS, effect=effect, batched=True)
    expected = scalar.solve_words(words)
    got = batched.solve_words(words)
    assert got == expected
    # Not just the same answers: the same cost accounting.  The batched
    # path stages pre-solved phases but consumes them through the scalar
    # memoization layer, so solve/hit counts must match exactly.
    assert batched.solve_count == scalar.solve_count
    assert batched.cache_hit_count == scalar.cache_hit_count
    assert batched.batched_count == scalar.solve_count
    # Retention flags ride on the memoized base solves.
    for vector, reference in scalar._memoryless_cache.items():
        assert (
            batched._memoryless_cache[vector].retention_used
            == reference.retention_used
        )


class TestCatalogGoldenDifferential:
    """Every synthesized catalog cell, golden circuit, full stimulus set."""

    @pytest.mark.parametrize("function", function_names())
    def test_catalog_cell(self, function):
        cell = build_cell(SOI28, function, 1)
        _assert_identical(cell, GOLDEN, _word_set(cell))


class TestDefectDifferential:
    """Whole defect universes on a structural cross-section of the catalog:
    plain stacks, reconvergent gates, pass-style cells, multi-output."""

    @pytest.mark.parametrize(
        "function", ["INV", "NAND2", "NOR3", "XOR2", "AOI22", "MUX2", "HA1"]
    )
    def test_full_universe(self, function):
        cell = build_cell(SOI28, function, 1)
        words = _word_set(cell)
        for defect in default_universe(cell):
            effect = defect.effect(cell, PARAMS.short_resistance)
            _assert_identical(cell, effect, words)


class TestModelDifferential:
    """End-to-end: generated models must be identical either way."""

    def _compare(self, a, b):
        assert a.golden == b.golden
        assert np.array_equal(a.detection, b.detection)
        assert a.responses == b.responses
        assert a.stats.solves == b.stats.solves
        assert a.stats.cache_hits == b.stats.cache_hits

    @pytest.mark.parametrize("function", ["NAND2", "XOR2"])
    def test_generate_ca_model(self, function):
        cell = build_cell(SOI28, function, 1)
        scalar = generate_ca_model(
            cell, params=PARAMS, keep_responses=True, batched=False
        )
        batched = generate_ca_model(
            cell, params=PARAMS, keep_responses=True, batched=True
        )
        assert scalar.stats.batched_phases == 0
        assert batched.stats.batched_phases > 0
        self._compare(scalar, batched)

    def test_generate_multi(self):
        cell = build_cell(SOI28, "HA1", 1)
        scalar = generate_multi(
            cell, params=PARAMS, keep_responses=True, batched=False
        )
        batched = generate_multi(
            cell, params=PARAMS, keep_responses=True, batched=True
        )
        assert set(scalar) == set(batched) == {"Z", "CO"}
        for port in scalar:
            self._compare(scalar[port], batched[port])


class TestPackedDifferential:
    """Cross-cell packed kernel vs the per-cell batched / scalar paths.

    `solve_packed` pads many topologies into one kernel call; like
    `solve_batch` it is an optimization with a byte-identity contract —
    same codes, same retention flags, same counter sequences, and models
    that round-trip identically through the canonical form.
    """

    FUNCTIONS = ("INV", "NAND2", "NOR3", "XOR2", "MUX2")

    def test_solve_packed_mixed_topologies(self):
        """One padded call over several cells + defect variants must equal
        per-request scalar solves exactly (codes and retention)."""
        from itertools import product

        from repro.simulation import GOLDEN, PackedRequest, solve_packed

        requests = []
        for function in self.FUNCTIONS:
            cell = build_cell(SOI28, function, 1)
            effects = [GOLDEN]
            for defect in default_universe(cell)[:2]:
                effects.append(defect.effect(cell, PARAMS.short_resistance))
            for effect in effects:
                sim = CellSimulator(cell, params=PARAMS, effect=effect)
                vectors = list(product((0, 1), repeat=cell.n_inputs))
                requests.append(PackedRequest(sim.solver, vectors))
        packed = solve_packed(requests)
        assert len(packed) == len(requests)
        for request, results in zip(requests, packed):
            for vector, result in zip(request.vectors, results):
                reference = request.solver.solve(vector, None)
                assert result.codes == reference.codes
                assert result.retention_used == reference.retention_used

    def _canonical(self, model):
        from repro.resilience.runner import canonical_model_dict

        return canonical_model_dict(model)

    @pytest.mark.parametrize("function", ["NAND2", "XOR2"])
    def test_generate_packed_canonical_identity(self, function):
        """packed=True must be invisible in the canonical model — answers
        AND cost counters (solves, cache hits, batched phases)."""
        cell = build_cell(SOI28, function, 1)
        batched = generate_ca_model(
            cell, params=PARAMS, keep_responses=True, batched=True
        )
        packed = generate_ca_model(
            cell, params=PARAMS, keep_responses=True, batched=True, packed=True
        )
        assert self._canonical(packed) == self._canonical(batched)

    def test_run_throughput_matches_per_cell_reference(self):
        """The cross-cell engine must reproduce per-cell generation
        canonically for a whole multi-cell library."""
        from repro.camodel import run_throughput

        cells = [build_cell(SOI28, fn, 1) for fn in self.FUNCTIONS]
        reference = {
            cell.name: generate_ca_model(cell, params=PARAMS, batched=True)
            for cell in cells
        }
        engine = run_throughput(cells, params=PARAMS)
        assert set(engine) == set(reference)
        for name in reference:
            assert self._canonical(engine[name]) == self._canonical(
                reference[name]
            )

    def test_phase_cache_warm_run_byte_identical(self, tmp_path):
        """A warm on-disk phase cache must change nothing observable —
        not even the solve / cache-hit counter sequences."""
        from repro import obs
        from repro.simulation.engine import M_PHASECACHE_HITS

        cell = build_cell(SOI28, "AOI22", 1)
        store = tmp_path / "phases"
        cold = generate_ca_model(
            cell, params=PARAMS, keep_responses=True, packed=True,
            phase_cache=store,
        )
        assert list(store.glob("*.json")), "cold run must populate the store"
        with obs.scoped(metrics=obs.Metrics()) as state:
            warm = generate_ca_model(
                cell, params=PARAMS, keep_responses=True, packed=True,
                phase_cache=store,
            )
            hits = state.metrics.get(M_PHASECACHE_HITS)
        assert hits > 0, "warm run must actually consume the store"
        assert self._canonical(warm) == self._canonical(cold)


# ----------------------------------------------------------------------
# Randomized property test: random series-parallel cells, random defects
# ----------------------------------------------------------------------

PINS = ("A", "B", "C")


def _sp(draw, depth):
    if depth <= 0 or draw(st.booleans()):
        return Leaf(draw(st.sampled_from(PINS)))
    combine = series if draw(st.booleans()) else parallel
    return combine(_sp(draw, depth - 1), _sp(draw, depth - 1))


@st.composite
def random_cell(draw):
    spec = CellSpec(
        function="RND",
        inputs=PINS,
        output="Z",
        stages=(StageSpec(out="Z", pulldown=_sp(draw, draw(st.integers(1, 3)))),),
    )
    return synthesize(spec, "RND")


class TestRandomizedDifferential:
    @given(random_cell(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_cell_random_defect(self, cell, data):
        universe = default_universe(cell)
        defect = data.draw(st.sampled_from(universe))
        effect = defect.effect(cell, PARAMS.short_resistance)
        words = stimuli(cell.n_inputs, "exhaustive")
        _assert_identical(cell, effect, words)

    @given(random_cell(), st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_random_cell_detection_tables(self, cell, seed):
        rng = np.random.default_rng(seed)
        universe = default_universe(cell)
        picks = rng.choice(len(universe), size=min(4, len(universe)), replace=False)
        sample = [universe[int(i)] for i in picks]
        scalar = generate_ca_model(
            cell, params=PARAMS, universe=sample, keep_responses=True,
            batched=False,
        )
        batched = generate_ca_model(
            cell, params=PARAMS, universe=sample, keep_responses=True,
            batched=True,
        )
        assert scalar.golden == batched.golden
        assert np.array_equal(scalar.detection, batched.detection)
        assert scalar.responses == batched.responses
