"""Differential tests: frontier-batched forest engine vs the references.

Three contracts, each against its scalar oracle:

* ``engine="frontier"`` trees are **node-for-node identical** to the
  recursive reference — same features, thresholds, child links, class
  counts and DFS-preorder numbering — on synthetic corpora, real
  CA-matrix data, and Hypothesis-generated random integer datasets.
* ``PackedForest`` inference is bit-for-bit equal to the per-tree loop
  path (``predict_proba(packed=False)``).
* Parallel fits are byte-identical to serial fits (same serialized
  forest), and parallel grid search ranks candidates identically.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.camodel import generate_ca_model
from repro.learning import (
    PackedForest,
    RandomForestClassifier,
    build_samples,
    grid_search,
)
from repro.learning.engine import candidate_features, grow_frontier
from repro.learning.persistence import (
    forest_to_dict,
    load_packed_forest,
    packed_forest_from_dict,
    packed_forest_to_dict,
    save_packed_forest,
)
from repro.learning.tree import DecisionTreeClassifier
from repro.library import SOI28, build_cell


def _assert_trees_identical(a, b):
    """Every observable of two fitted trees must match exactly."""
    assert a.node_count == b.node_count
    assert np.array_equal(a._feature, b._feature)
    assert np.array_equal(a._threshold, b._threshold)
    assert np.array_equal(a._left, b._left)
    assert np.array_equal(a._right, b._right)
    assert np.array_equal(a._counts, b._counts)
    assert np.array_equal(a.classes_, b.classes_)


def _fit_both(X, y, **params):
    a = DecisionTreeClassifier(engine="recursive", **params).fit(X, y)
    b = DecisionTreeClassifier(engine="frontier", **params).fit(X, y)
    return a, b


def _random_dataset(seed, n=300, n_features=8, n_values=5, n_classes=3):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, n_values, size=(n, n_features)).astype(np.int8)
    y = rng.integers(0, n_classes, size=n)
    return X, y


class TestFrontierEqualsRecursive:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize(
        "max_features", [None, "sqrt", "log2", 0.5, 2], ids=str
    )
    def test_random_integer_data(self, seed, max_features):
        X, y = _random_dataset(seed)
        a, b = _fit_both(
            X, y, max_features=max_features, random_state=seed
        )
        _assert_trees_identical(a, b)

    @pytest.mark.parametrize("max_depth", [None, 1, 3])
    @pytest.mark.parametrize("min_samples_leaf", [1, 5, 40])
    def test_depth_and_leaf_constraints(self, max_depth, min_samples_leaf):
        X, y = _random_dataset(11, n=200)
        a, b = _fit_both(
            X,
            y,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features=0.5,
            random_state=7,
        )
        _assert_trees_identical(a, b)

    def test_min_samples_split(self):
        X, y = _random_dataset(12, n=120)
        a, b = _fit_both(X, y, min_samples_split=30, random_state=0)
        _assert_trees_identical(a, b)

    def test_negative_and_shifted_features(self):
        rng = np.random.default_rng(4)
        X = rng.integers(-3, 9, size=(150, 5)).astype(np.int64)
        y = rng.integers(0, 2, size=150)
        a, b = _fit_both(X, y, max_features=0.5, random_state=4)
        _assert_trees_identical(a, b)

    def test_single_class(self):
        X = np.zeros((20, 3), dtype=np.int8)
        y = np.ones(20, dtype=int)
        a, b = _fit_both(X, y, random_state=0)
        _assert_trees_identical(a, b)
        assert a.node_count == 1

    def test_constant_features(self):
        X = np.full((40, 4), 7, dtype=np.int8)
        y = np.arange(40) % 2
        a, b = _fit_both(X, y, random_state=0)
        _assert_trees_identical(a, b)
        assert a.node_count == 1  # nothing to split on

    def test_single_column(self):
        X, y = _random_dataset(5, n_features=1)
        a, b = _fit_both(X, y, random_state=5)
        _assert_trees_identical(a, b)

    def test_binary_features(self):
        X, y = _random_dataset(6, n_values=2)
        a, b = _fit_both(X, y, max_features="sqrt", random_state=6)
        _assert_trees_identical(a, b)

    def test_tiny_dataset(self):
        X = np.array([[0], [1]], dtype=np.int8)
        y = np.array([0, 1])
        a, b = _fit_both(X, y, random_state=0)
        _assert_trees_identical(a, b)
        assert a.node_count == 3

    def test_real_ca_matrix_rows(self):
        cell = build_cell(SOI28, "AOI21", 1)
        model = generate_ca_model(cell, params=SOI28.electrical)
        sample = build_samples([(cell, model)])[0]
        X = sample.matrix.features
        y = sample.matrix.labels
        for mf in (None, 0.5, "sqrt"):
            a, b = _fit_both(X, y, max_features=mf, random_state=1)
            _assert_trees_identical(a, b)
            assert (a.predict(X) == b.predict(X)).all()

    def test_forest_engines_identical(self):
        X, y = _random_dataset(13)
        a = RandomForestClassifier(
            n_estimators=5, max_features=0.5, random_state=2,
            engine="recursive",
        ).fit(X, y)
        b = RandomForestClassifier(
            n_estimators=5, max_features=0.5, random_state=2,
            engine="frontier",
        ).fit(X, y)
        assert forest_to_dict(a) == forest_to_dict(b)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(engine="magic")
        with pytest.raises(ValueError):
            RandomForestClassifier(engine="magic").fit(
                np.zeros((4, 2)), np.zeros(4)
            )

    def test_min_samples_leaf_validated(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 120),
        n_features=st.integers(1, 10),
        n_values=st.integers(1, 9),
        n_classes=st.integers(1, 4),
        max_features=st.sampled_from([None, "sqrt", 0.5, 1]),
        min_samples_leaf=st.integers(1, 8),
    )
    def test_property_identical_on_random_data(
        self, seed, n, n_features, n_values, n_classes, max_features,
        min_samples_leaf,
    ):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, n_values, size=(n, n_features)).astype(np.int16)
        y = rng.integers(0, n_classes, size=n)
        a, b = _fit_both(
            X,
            y,
            max_features=max_features,
            min_samples_leaf=min_samples_leaf,
            random_state=seed,
        )
        _assert_trees_identical(a, b)


class TestCandidateFeatures:
    def test_traversal_order_independent(self):
        # Same (seed, path) always draws the same subset — the property
        # both engines' equivalence rests on.
        a = candidate_features(123, 5, 20, 4)
        b = candidate_features(123, 5, 20, 4)
        assert np.array_equal(a, b)
        assert len(set(a.tolist())) == 4

    def test_all_features_shortcut(self):
        assert np.array_equal(
            candidate_features(1, 1, 5, 5), np.arange(5)
        )
        assert np.array_equal(
            candidate_features(1, 1, 5, 9), np.arange(5)
        )

    def test_grow_frontier_records_are_dfs_preorder(self):
        X, y = _random_dataset(3, n=80)
        records = grow_frontier(
            X,
            y.astype(np.int64),
            3,
            max_depth=None,
            min_samples_split=2,
            min_samples_leaf=1,
            n_candidates=X.shape[1],
            base_seed=99,
        )
        # Preorder: both children of node i come after i, left first.
        for i, (_, _, left, right, _) in enumerate(records):
            if left >= 0:
                assert left == i + 1
                assert right > left


class TestPackedForest:
    def _forest(self, seed=0, **kw):
        X, y = _random_dataset(seed, n=400)
        kw.setdefault("n_estimators", 6)
        kw.setdefault("max_features", 0.5)
        forest = RandomForestClassifier(random_state=seed, **kw).fit(X, y)
        return forest, X

    def test_packed_equals_loop_bitwise(self):
        forest, X = self._forest()
        loop = forest.predict_proba(X, packed=False)
        fused = forest.predict_proba(X, packed=True)
        assert np.array_equal(loop, fused)

    def test_packed_predict_equals_loop_predict(self):
        forest, X = self._forest(seed=1)
        assert (
            forest.predict(X)
            == forest.classes_[
                np.argmax(forest.predict_proba(X, packed=False), axis=1)
            ]
        ).all()

    def test_missing_class_in_bootstrap(self):
        # Tiny bootstraps routinely miss a class; the packed alignment
        # must scatter per-tree probabilities into the forest's order.
        rng = np.random.default_rng(8)
        X = rng.integers(0, 4, size=(30, 5)).astype(np.int8)
        y = np.concatenate([np.zeros(27, dtype=int), np.array([1, 2, 3])])
        forest = RandomForestClassifier(
            n_estimators=12, random_state=0, max_samples=0.2
        ).fit(X, y)
        assert np.array_equal(
            forest.predict_proba(X, packed=False),
            forest.predict_proba(X, packed=True),
        )

    def test_dispersion_bounds_and_unanimity(self):
        forest, X = self._forest(seed=2)
        dispersion = forest.vote_dispersion(X)
        n = forest.n_estimators
        assert (dispersion >= 0).all()
        assert (dispersion <= 1 - 1 / n + 1e-12).all()
        # On its own noise-free training set the forest is mostly sure;
        # unanimous rows must score exactly zero.
        packed = forest.packed_forest()
        votes = packed.leaf_vote[packed.descend(X)]
        unanimous = (votes == votes[0]).all(axis=0)
        assert np.array_equal(dispersion == 0.0, unanimous)

    def test_predict_with_dispersion_matches_separate_calls(self):
        forest, X = self._forest(seed=3)
        labels, dispersion = forest.predict_with_dispersion(X)
        assert (labels == forest.predict(X)).all()
        assert np.array_equal(dispersion, forest.vote_dispersion(X))

    def test_packed_cache_invalidated_on_refit(self):
        forest, X = self._forest(seed=4)
        first = forest.packed_forest()
        assert forest.packed_forest() is first  # cached
        X2, y2 = _random_dataset(5, n=100)
        forest.fit(X2, y2)
        assert forest.packed_forest() is not first

    def test_pack_unfitted_rejected(self):
        with pytest.raises(ValueError):
            PackedForest.from_forest(RandomForestClassifier())
        with pytest.raises(RuntimeError):
            RandomForestClassifier().packed_forest()

    def test_offsets_partition_node_table(self):
        forest, _ = self._forest(seed=6)
        packed = forest.packed_forest()
        sizes = np.diff(packed.offsets)
        assert sizes.tolist() == [
            t.node_count for t in forest.estimators_
        ]
        assert packed.offsets[-1] == packed.node_count

    def test_persistence_round_trip(self, tmp_path):
        forest, X = self._forest(seed=7)
        packed = forest.packed_forest()
        path = save_packed_forest(packed, tmp_path / "packed.json")
        loaded = load_packed_forest(path)
        assert np.array_equal(loaded.classes_, packed.classes_)
        assert np.array_equal(
            loaded.predict_proba(X), packed.predict_proba(X)
        )
        assert np.array_equal(
            loaded.vote_dispersion(X), packed.vote_dispersion(X)
        )
        # dict round trip preserves every field exactly
        again = packed_forest_from_dict(packed_forest_to_dict(packed))
        assert np.array_equal(again.leaf_proba, packed.leaf_proba)

    def test_bad_payloads_rejected(self):
        with pytest.raises(ValueError):
            packed_forest_from_dict({"kind": "nope"})
        forest, _ = self._forest(seed=8)
        payload = packed_forest_to_dict(forest.packed_forest())
        payload["format"] = 999
        with pytest.raises(ValueError):
            packed_forest_from_dict(payload)


class TestParallelFit:
    def test_parallel_fit_byte_identical(self):
        X, y = _random_dataset(20, n=250)
        serial = RandomForestClassifier(
            n_estimators=6, max_features=0.5, random_state=5
        ).fit(X, y)
        pooled = RandomForestClassifier(
            n_estimators=6, max_features=0.5, random_state=5, parallelism=3
        ).fit(X, y)
        assert forest_to_dict(serial) == forest_to_dict(pooled)
        assert np.array_equal(
            serial.predict_proba(X), pooled.predict_proba(X)
        )

    def test_parallelism_one_stays_serial(self):
        X, y = _random_dataset(21, n=100)
        a = RandomForestClassifier(
            n_estimators=3, random_state=1, parallelism=1
        ).fit(X, y)
        b = RandomForestClassifier(n_estimators=3, random_state=1).fit(X, y)
        assert forest_to_dict(a) == forest_to_dict(b)

    def test_no_bootstrap_parallel(self):
        X, y = _random_dataset(22, n=100)
        a = RandomForestClassifier(
            n_estimators=4, random_state=2, bootstrap=False
        ).fit(X, y)
        b = RandomForestClassifier(
            n_estimators=4, random_state=2, bootstrap=False, parallelism=2
        ).fit(X, y)
        assert forest_to_dict(a) == forest_to_dict(b)


class TestParallelGridSearch:
    def _samples(self):
        cells = [
            build_cell(SOI28, "NAND2", 1),
            build_cell(SOI28, "NOR2", 1),
            build_cell(SOI28, "NAND2", 2),
        ]
        return build_samples(
            [
                (c, generate_ca_model(c, params=SOI28.electrical))
                for c in cells
            ],
            params=SOI28.electrical,
        )

    def test_parallel_ranking_identical(self):
        samples = self._samples()
        grid = {"n_estimators": [2, 4], "max_features": [0.5, None]}
        serial = grid_search(samples, grid, seed=3)
        pooled = grid_search(samples, grid, seed=3, parallelism=2)
        assert serial.ranking == pooled.ranking
        assert serial.best_params == pooled.best_params
