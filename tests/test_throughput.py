"""Cross-cell throughput engine, plan store, and pool-path fixes.

Covers the three correctness fixes that rode along with the packed
engine (failed pool workers must not drop their spans/metrics; duplicate
cell names are rejected by one shared helper; run-dir-only facade kwargs
are rejected loudly instead of silently ignored) plus the engine-level
behaviours the differential suite does not touch: per-cell failure
containment, progress reporting, metric registration, on-disk phase
cache corruption tolerance, and quarantine-then-resume with a warm
store.
"""

import json

import pytest

from repro import obs
from repro.camodel import (
    LibraryGenerationError,
    ensure_unique_cell_names,
    generate_ca_model,
    generate_library,
    run_throughput,
)
from repro.camodel.stats import M_GOLDEN_SECONDS
from repro.defects.model import Defect
from repro.library import SOI28, build_cell
from repro.resilience import FaultPlan, FaultRule, faults
from repro.resilience.runner import canonical_model_dict, run_library

PARAMS = SOI28.electrical

FUNCTIONS = ("INV", "NAND2", "NOR2")


@pytest.fixture(scope="module")
def library_cells():
    return [build_cell(SOI28, function, 1) for function in FUNCTIONS]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    faults.deactivate()


class TestEnsureUniqueCellNames:
    def test_unique_names_pass(self):
        ensure_unique_cell_names(["A", "B", "C"])

    def test_duplicates_named_once_and_sorted(self):
        with pytest.raises(ValueError) as err:
            ensure_unique_cell_names(["B", "A", "B", "C", "A", "B"])
        assert "duplicate cell names in library: A, B" in str(err.value)

    def test_large_library_names_duplicates_exactly(self):
        # The old per-path guard was `names.count(n)` inside a
        # comprehension — O(n^2); a 20k-name library must be instant
        # and still name every duplicate exactly once, sorted.
        names = [f"CELL{i}" for i in range(20_000)] + ["CELL9", "CELL7"]
        with pytest.raises(ValueError, match="CELL7, CELL9"):
            ensure_unique_cell_names(names)
        ensure_unique_cell_names(names[:20_000])

    def test_shared_by_throughput_engine(self, library_cells):
        with pytest.raises(ValueError, match="duplicate"):
            run_throughput([library_cells[0], library_cells[0]])

    def test_shared_by_resilient_runner(self, tmp_path, library_cells):
        with pytest.raises(ValueError, match="duplicate"):
            run_library(
                [library_cells[0], library_cells[0]], run_dir=tmp_path / "run"
            )


class TestRunDirOnlyOptions:
    """Run-dir-only kwargs without run_dir used to be silently dropped."""

    def test_each_option_is_rejected_loudly(self, library_cells):
        cells = library_cells[:1]
        for kwargs, option in (
            ({"resume": True}, "resume"),
            ({"retries": 3}, "retries"),
            ({"cell_timeout": 5.0}, "cell_timeout"),
            ({"retry_backoff": 0.0}, "retry_backoff"),
            ({"fault_plan": FaultPlan()}, "fault_plan"),
            ({"output": "library.json"}, "output"),
        ):
            with pytest.raises(ValueError) as err:
                generate_library(cells, **kwargs)
            assert option in str(err.value)
            assert "run_dir" in str(err.value)

    def test_multiple_offenders_listed_sorted(self, library_cells):
        with pytest.raises(ValueError, match="output, resume, retries"):
            generate_library(
                library_cells, resume=True, retries=2, output="x.json"
            )

    def test_defaults_are_not_rejected(self, library_cells):
        models = generate_library(library_cells[:1])
        assert set(models) == {library_cells[0].name}

    def test_run_dir_forwards_every_option(self, tmp_path, library_cells, monkeypatch):
        import repro.resilience.runner as runner_module

        captured = {}

        class _Result:
            models = {"stub": None}

        def fake_run_library(cells, **kwargs):
            captured.update(kwargs, cells=list(cells))
            return _Result()

        monkeypatch.setattr(runner_module, "run_library", fake_run_library)
        plan = FaultPlan([FaultRule(cell="X", mode="raise")])
        out = generate_library(
            library_cells,
            run_dir=tmp_path / "run",
            retries=3,
            retry_backoff=0.0,
            cell_timeout=9.0,
            fault_plan=plan,
            output=tmp_path / "library.json",
            packed=True,
            phase_cache=tmp_path / "phases",
        )
        assert out == _Result.models
        assert captured["retries"] == 3
        assert captured["retry_backoff"] == 0.0
        assert captured["cell_timeout"] == 9.0
        assert captured["fault_plan"] is plan
        assert captured["output"] == tmp_path / "library.json"
        assert captured["packed"] is True
        assert captured["phase_cache"] == tmp_path / "phases"


class TestPoolErrorAbsorption:
    """A failing worker's partial work (spans, counters) must merge into
    the parent exactly like a successful one's."""

    def test_failed_workers_ship_spans_and_metrics(self, library_cells):
        # Every cell's defect loop dies on a defect naming a transistor
        # that does not exist — but only after the golden run solved.
        bad_universe = [Defect("bogus", "open", ("MZZ9", "drain"))]
        with obs.scoped(
            tracer=obs.Tracer(enabled=True),
            metrics=obs.Metrics(),
            events=obs.EventLog(obs.ListSink()),
        ) as state:
            with pytest.raises(LibraryGenerationError) as err:
                generate_library(
                    library_cells, processes=2, universe=bad_universe
                )
            spans = state.tracer.export()
            golden_seconds = state.metrics.get(M_GOLDEN_SECONDS)
        assert len(err.value.failures) == len(library_cells)
        assert err.value.completed == {}
        # The golden passes ran inside the workers before the failures
        # (M_GOLDEN_SECONDS is recorded before the defect loop): their
        # counters and spans must survive the error path.
        assert golden_seconds > 0
        golden_spans = [s for s in spans if s["name"] == "generate.golden"]
        assert len(golden_spans) >= len(library_cells)
        assert obs.orphan_parents(spans) == []
        library_span = next(
            s for s in spans if s["name"] == "camodel.generate_library"
        )
        worker_pids = {s["pid"] for s in golden_spans}
        assert library_span["pid"] not in worker_pids


class TestRunThroughput:
    def test_per_cell_failure_containment(self, library_cells):
        """One poisoned cell must not discard its siblings' models."""
        victim = library_cells[1].name
        faults.activate(
            FaultPlan([FaultRule(cell=victim, mode="raise")]), "", 0
        )
        try:
            with pytest.raises(LibraryGenerationError) as err:
                run_throughput(library_cells, params=PARAMS)
        finally:
            faults.deactivate()
        assert [f["cell"] for f in err.value.failures] == [victim]
        survivors = err.value.completed
        assert set(survivors) == {
            c.name for c in library_cells if c.name != victim
        }
        for cell in library_cells:
            if cell.name == victim:
                continue
            reference = generate_ca_model(cell, params=PARAMS)
            assert canonical_model_dict(
                survivors[cell.name]
            ) == canonical_model_dict(reference)

    def test_progress_reaches_total(self, library_cells):
        seen = []
        run_throughput(
            library_cells,
            params=PARAMS,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (len(library_cells), len(library_cells))
        assert [done for done, _total in seen] == list(
            range(1, len(library_cells) + 1)
        )

    def test_engine_metrics_are_recorded(self, library_cells):
        from repro.camodel.throughput import M_THROUGHPUT_CELLS
        from repro.simulation.engine import M_PACKED_FLUSHES, M_PACKED_ROWS

        with obs.scoped(metrics=obs.Metrics()) as state:
            models = run_throughput(library_cells, params=PARAMS)
            cells_count = state.metrics.get(M_THROUGHPUT_CELLS)
            rows = state.metrics.get(M_PACKED_ROWS)
            flushes = state.metrics.get(M_PACKED_FLUSHES)
        assert len(models) == len(library_cells)
        assert cells_count == len(library_cells)
        # Cross-cell packing is the whole point: many rows, few flushes.
        assert rows > 0
        assert 0 < flushes < rows

    def test_library_facade_routes_inline_packed_runs(self, library_cells):
        packed = generate_library(library_cells, packed=True)
        plain = generate_library(library_cells)
        assert set(packed) == set(plain)
        for name in plain:
            assert canonical_model_dict(packed[name]) == canonical_model_dict(
                plain[name]
            )


class TestPhaseCacheStore:
    def test_corrupt_entry_is_tolerated_and_reported(self, tmp_path):
        cell = build_cell(SOI28, "NAND2", 1)
        store = tmp_path / "phases"
        cold = generate_ca_model(
            cell, params=PARAMS, packed=True, phase_cache=store
        )
        entries = sorted(store.glob("*.json"))
        assert entries
        entries[0].write_text("{ not json")
        sink = obs.ListSink()
        with obs.scoped(events=obs.EventLog(sink)):
            warm = generate_ca_model(
                cell, params=PARAMS, packed=True, phase_cache=store
            )
        assert canonical_model_dict(warm) == canonical_model_dict(cold)
        corrupt = [e for e in sink.events if e.name == "phasecache.corrupt"]
        assert corrupt, "corrupt store entries must be reported, not fatal"
        # ...and the rewritten store heals: the entry is valid JSON again.
        json.loads(entries[0].read_text())

    def test_store_is_partitioned_by_electrical_params(self, tmp_path):
        from repro.library import ElectricalParams

        cell = build_cell(SOI28, "INV", 1)
        store = tmp_path / "phases"
        generate_ca_model(cell, params=PARAMS, packed=True, phase_cache=store)
        before = {p.name for p in store.glob("*.json")}
        weak = ElectricalParams(short_resistance=50_000.0)
        generate_ca_model(cell, params=weak, packed=True, phase_cache=store)
        after = {p.name for p in store.glob("*.json")}
        assert before < after, (
            "different electrical params must hash to different entries"
        )


class TestCliPackedFlags:
    def test_generate_packed_phase_cache_identical_models(self, tmp_path, library_cells):
        from repro.camodel import load_models
        from repro.cli import main
        from repro.spice import write_library

        netlist = tmp_path / "library.sp"
        netlist.write_text(write_library(library_cells, SOI28.dialect))
        plain_out = tmp_path / "plain.json"
        packed_out = tmp_path / "packed.json"
        store = tmp_path / "phases"
        assert main(["generate", str(netlist), "-o", str(plain_out)]) == 0
        assert (
            main(
                [
                    "generate",
                    str(netlist),
                    "-o",
                    str(packed_out),
                    "--packed",
                    "--phase-cache",
                    str(store),
                ]
            )
            == 0
        )
        assert list(store.glob("*.json")), "--phase-cache must populate the store"
        plain = {m.cell_name: m for m in load_models(plain_out)}
        packed = {m.cell_name: m for m in load_models(packed_out)}
        assert set(packed) == set(plain) == {c.name for c in library_cells}
        for name in plain:
            assert canonical_model_dict(packed[name]) == canonical_model_dict(
                plain[name]
            )

    def test_batch_packed_phase_cache_byte_identical(self, tmp_path, library_cells):
        from repro.cli import main
        from repro.spice import write_library

        netlist = tmp_path / "library.sp"
        netlist.write_text(write_library(library_cells, SOI28.dialect))
        plain_out = tmp_path / "plain.json"
        packed_out = tmp_path / "packed.json"
        assert (
            main(
                [
                    "batch",
                    str(netlist),
                    "--run-dir",
                    str(tmp_path / "plain_run"),
                    "-o",
                    str(plain_out),
                    "--retry-backoff",
                    "0",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "batch",
                    str(netlist),
                    "--run-dir",
                    str(tmp_path / "packed_run"),
                    "-o",
                    str(packed_out),
                    "--retry-backoff",
                    "0",
                    "--packed",
                    "--phase-cache",
                    str(tmp_path / "phases"),
                ]
            )
            == 0
        )
        assert packed_out.read_bytes() == plain_out.read_bytes()


class TestQuarantineResumeWithWarmStore:
    def test_resume_with_warm_phase_cache_byte_identical(
        self, tmp_path, library_cells
    ):
        """Quarantine a cell, then resume against the now-warm on-disk
        phase cache: the assembled library must match a clean plain run
        byte for byte."""
        baseline_dir = tmp_path / "baseline"
        baseline = run_library(
            library_cells,
            run_dir=baseline_dir,
            retry_backoff=0.0,
            output=baseline_dir / "library.json",
        )
        assert baseline.complete
        baseline_bytes = (baseline_dir / "library.json").read_bytes()

        victim = library_cells[-1].name
        run_dir = tmp_path / "run"
        store = tmp_path / "phases"
        plan = FaultPlan([FaultRule(cell=victim, mode="raise")])
        first = run_library(
            library_cells,
            run_dir=run_dir,
            retries=1,
            retry_backoff=0.0,
            fault_plan=plan,
            packed=True,
            phase_cache=store,
            output=run_dir / "library.json",
        )
        assert set(first.quarantined) == {victim}
        assert list(store.glob("*.json")), "first run must warm the store"

        resumed = run_library(
            library_cells,
            run_dir=run_dir,
            resume=True,
            retry_backoff=0.0,
            packed=True,
            phase_cache=store,
            output=run_dir / "library.json",
        )
        assert resumed.complete
        assert (run_dir / "library.json").read_bytes() == baseline_bytes
