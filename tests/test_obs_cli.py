"""CLI surface of the obs subsystem: --trace / --log-json / -v / -q."""

import json

import pytest

from repro.cli import main
from repro.experiments import runner
from repro.library import SOI28, build_cell
from repro.spice import write_cell


@pytest.fixture()
def nand2_file(tmp_path, nand2):
    path = tmp_path / "nand2.sp"
    path.write_text(write_cell(nand2, SOI28.dialect))
    return path


class TestGenerateTrace:
    def test_parallel_generate_writes_chrome_trace(self, tmp_path, nand2_file):
        trace = tmp_path / "run.json"
        assert main(
            ["generate", str(nand2_file), "-j", "2", "--trace", str(trace)]
        ) == 0
        payload = json.loads(trace.read_text())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        names = [e["name"] for e in events]
        # golden / defect-chunk / merge spans from all workers, one root
        assert names.count("cli.generate") == 1
        assert names.count("camodel.generate") == 1
        assert names.count("generate.chunk") == 2
        assert names.count("generate.merge") == 1
        assert "generate.golden" in names and "generate.defects" in names
        assert len({e["pid"] for e in events}) == 3  # main + 2 workers
        ids = {e["args"]["span_id"] for e in events}
        for event in events:
            parent = event["args"].get("parent_id")
            assert parent is None or parent in ids

    def test_trace_jsonl_variant(self, tmp_path, nand2_file):
        trace = tmp_path / "run.jsonl"
        assert main(["generate", str(nand2_file), "--trace", str(trace)]) == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(r["name"] == "camodel.generate" for r in records)

    def test_log_json_captures_events(self, tmp_path, nand2_file):
        log = tmp_path / "events.jsonl"
        # hybrid needs training; use generate plus a stats round-trip via
        # the cache-unreadable path instead: simplest event source is the
        # hybrid route, so drive predict with a training file.
        from repro.camodel import generate_ca_model, save_models

        train = tmp_path / "train.json"
        cells = [build_cell(SOI28, "NAND2", 1, f) for f in SOI28.flavors]
        save_models(
            [generate_ca_model(c, params=SOI28.electrical) for c in cells],
            train,
        )
        assert main(
            [
                "predict",
                str(nand2_file),
                "-t",
                str(train),
                "--log-json",
                str(log),
            ]
        ) == 0
        records = [json.loads(line) for line in log.read_text().splitlines()]
        route = [r for r in records if r["event"] == "hybrid.route"]
        assert route and route[0]["route"] == "ml"

    def test_no_flags_leaves_no_trace_file(self, tmp_path, nand2_file, capsys):
        assert main(["generate", str(nand2_file)]) == 0
        assert list(tmp_path.glob("*.json*")) == []
        assert "wrote" not in capsys.readouterr().out


class TestRunnerCli:
    def test_runner_trace_and_timing_table(self, tmp_path, monkeypatch):
        # stub the heavy halves; the timing table and trace still appear
        monkeypatch.setattr(
            runner, "table4a_same_technology", lambda scale: (_FakeReport(), "IVa")
        )
        monkeypatch.setattr(
            runner,
            "table4bc_cross_technology",
            lambda tech, scale: (_FakeReport(), f"IV-{tech}"),
        )
        monkeypatch.setattr(
            runner, "accuracy_bands", lambda tech, scale: _FakeBands()
        )
        monkeypatch.setattr(runner, "hybrid_flow_study", lambda scale: _FakeStudy())
        out = tmp_path / "report.txt"
        trace = tmp_path / "run.json"
        assert (
            runner.main(
                [
                    "--scale",
                    "tiny",
                    "--output",
                    str(out),
                    "--trace",
                    str(trace),
                    "-q",
                ]
            )
            == 0
        )
        report = out.read_text()
        assert "artifact timings" in report
        assert "table4.a" in report and "hybrid_study" in report
        payload = json.loads(trace.read_text())
        names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
        # 6 small tables/figs + table4.a + 2x(table4 + bands) + hybrid study
        assert names.count("experiments.artifact") == 12
        assert names.count("experiments.run_all") == 1

    def test_timing_table_shape(self):
        table = runner.timing_table([("a", 0.5), ("bb", 1.25)])
        lines = table.splitlines()
        assert lines[0] == "artifact timings"
        assert any(line.startswith("a ") for line in lines)
        assert lines[-1].startswith("total")
        assert "1.750" in lines[-1]


class _FakeReport:
    def mean_accuracy(self):
        return 0.99

    def accuracy_fraction_above(self, threshold=0.97):
        return 0.9

    uncovered = ()


class _FakeBands:
    def render(self):
        return "bands"


class _FakeStudy:
    def render(self):
        return "hybrid study"
