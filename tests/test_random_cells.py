"""Property-based tests on randomly generated cells.

Hypothesis builds random series-parallel cell specifications; for every
one of them the switch-level simulator must agree with direct Boolean
evaluation, and the canonical renaming must be invariant under netlist
shuffling.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.camatrix import rename_transistors
from repro.library.synth import (
    CellSpec,
    Leaf,
    StageSpec,
    SynthesisOptions,
    parallel,
    series,
    synthesize,
)
from repro.logic import And, Expr, Not, Or, Var
from repro.simulation import logic_check

# ----------------------------------------------------------------------
# Random SP expression strategy
# ----------------------------------------------------------------------

PINS = ("A", "B", "C")


def _sp_and_expr(draw, depth: int):
    """Recursive builder: returns (SP network, Boolean conduction expr)."""
    if depth <= 0 or draw(st.booleans()):
        pin = draw(st.sampled_from(PINS))
        return Leaf(pin), Var(pin)
    make_series = draw(st.booleans())
    left_sp, left_expr = _sp_and_expr(draw, depth - 1)
    right_sp, right_expr = _sp_and_expr(draw, depth - 1)
    if make_series:
        return series(left_sp, right_sp), And(left_expr, right_expr)
    return parallel(left_sp, right_sp), Or(left_expr, right_expr)


@st.composite
def random_cell_spec(draw):
    sp, conduction = _sp_and_expr(draw, depth=draw(st.integers(1, 3)))
    spec = CellSpec(
        function="RND",
        inputs=tuple(PINS),
        output="Z",
        stages=(StageSpec(out="Z", pulldown=sp),),
    )
    return spec, Not(conduction)  # static CMOS inverts the pull-down


class TestRandomCells:
    @given(random_cell_spec())
    @settings(max_examples=30, deadline=None)
    def test_simulator_matches_boolean(self, spec_expr):
        spec, expected = spec_expr
        cell = synthesize(spec, "RND")
        assert not logic_check(cell, expected)

    @given(random_cell_spec(), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_renaming_shuffle_invariant(self, spec_expr, seed):
        spec, _expected = spec_expr
        reference = synthesize(spec, "RND")
        shuffled = synthesize(spec, "RND", SynthesisOptions(shuffle_seed=seed))
        ra = rename_transistors(reference)
        rb = rename_transistors(shuffled)
        assert ra.signature == rb.signature
        gates_a = {
            new: reference.transistor(old).gate for old, new in ra.mapping.items()
        }
        gates_b = {
            new: shuffled.transistor(old).gate for old, new in rb.mapping.items()
        }
        assert gates_a == gates_b

    @given(random_cell_spec())
    @settings(max_examples=15, deadline=None)
    def test_structure_descriptors_total(self, spec_expr):
        spec, _expected = spec_expr
        cell = synthesize(spec, "RND")
        renamed = rename_transistors(cell)
        assert set(renamed.structure) == set(renamed.mapping.values())
        for level, depth, width in renamed.structure.values():
            assert level >= 1 and depth >= 1 and width >= 1

    @given(random_cell_spec())
    @settings(max_examples=15, deadline=None)
    def test_two_pattern_consistency(self, spec_expr):
        """Every dynamic word's phases must match the two static solves."""
        from repro.logic import word_from_phases
        from repro.simulation import golden_simulator

        spec, _expected = spec_expr
        cell = synthesize(spec, "RND")
        sim = golden_simulator(cell)
        vectors = list(itertools.product((0, 1), repeat=3))[:4]
        for initial in vectors:
            for final in vectors:
                if initial == final:
                    continue
                word = word_from_phases(initial, final)
                response = sim.output_response(word)
                first = sim.static_net_codes(initial)[cell.outputs[0]]
                second = sim.static_net_codes(final)[cell.outputs[0]]
                assert response.initial == first
                assert response.final == second
