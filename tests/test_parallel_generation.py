"""Defect-level parallel generation: identity with the serial path, stats,
and the batch kwargs-forwarding regression."""

import numpy as np
import pytest

from repro.camodel import generate_ca_model, generate_library
from repro.defects import default_universe
from repro.library import SOI28, ElectricalParams, build_cell
from repro.simulation import CellSimulator, CellTopology


class TestParallelIdentity:
    @pytest.mark.parametrize("function", ["NAND2", "AOI221"])  # 2 and 5 inputs
    def test_detection_byte_identical(self, function):
        cell = build_cell(SOI28, function, 1)
        serial = generate_ca_model(cell, params=SOI28.electrical)
        parallel = generate_ca_model(cell, params=SOI28.electrical, parallelism=2)
        assert serial.detection.tobytes() == parallel.detection.tobytes()
        assert serial.golden == parallel.golden
        assert serial.stimuli == parallel.stimuli
        assert [d.name for d in serial.defects] == [d.name for d in parallel.defects]
        assert serial.simulation_count == parallel.simulation_count

    def test_parallel_keep_responses(self, nand2):
        serial = generate_ca_model(
            nand2, params=SOI28.electrical, keep_responses=True
        )
        parallel = generate_ca_model(
            nand2, params=SOI28.electrical, keep_responses=True, parallelism=2
        )
        assert serial.responses == parallel.responses

    def test_small_universe_falls_back_to_serial(self, nand2):
        universe = default_universe(nand2)[:4]
        model = generate_ca_model(
            nand2, params=SOI28.electrical, universe=universe, parallelism=4
        )
        assert model.stats.workers == 1
        assert model.n_defects == 4

    def test_progress_reaches_total_in_parallel(self, nand2):
        seen = []
        generate_ca_model(
            nand2,
            params=SOI28.electrical,
            parallelism=2,
            progress=lambda done, total: seen.append((done, total)),
        )
        total = len(default_universe(nand2))
        assert seen[-1] == (total, total)


class TestGenerationStats:
    def test_stats_account_for_every_defect(self, nand2):
        model = generate_ca_model(nand2, params=SOI28.electrical)
        stats = model.stats
        assert stats is not None
        assert stats.workers == 1
        assert stats.simulated_defects + stats.skipped_defects == model.n_defects
        assert stats.solves > 0
        assert stats.cache_hits > 0
        assert 0.0 < stats.cache_hit_rate < 1.0
        assert stats.total_seconds >= stats.golden_seconds

    def test_parallel_stats_record_workers(self, nand2):
        model = generate_ca_model(nand2, params=SOI28.electrical, parallelism=2)
        assert model.stats.workers == 2
        assert (
            model.stats.simulated_defects + model.stats.skipped_defects
            == model.n_defects
        )

    def test_stats_survive_serialization(self, nand2):
        from repro.camodel import model_from_dict, model_to_dict

        model = generate_ca_model(nand2, params=SOI28.electrical)
        restored = model_from_dict(model_to_dict(model))
        assert restored.stats is not None
        assert restored.stats.solves == model.stats.solves
        assert restored.stats.workers == model.stats.workers

    def test_summary_includes_generation_block(self, nand2):
        model = generate_ca_model(nand2, params=SOI28.electrical)
        summary = model.summary()
        assert summary["generation"]["solves"] == model.stats.solves


class TestSharedTopology:
    def test_topology_specialization_matches_fresh_graph(self, nand2):
        from repro.logic import parse_word

        topology = CellTopology(nand2, params=SOI28.electrical)
        universe = default_universe(nand2)
        for defect in universe[:10]:
            effect = defect.effect(nand2, SOI28.electrical.short_resistance)
            if effect.benign:
                continue
            shared = CellSimulator(
                nand2, params=SOI28.electrical, effect=effect, topology=topology
            )
            fresh = CellSimulator(nand2, params=SOI28.electrical, effect=effect)
            for text in ("00", "11", "R1", "1F"):
                word = parse_word(text)
                assert shared.output_response(word) is fresh.output_response(word)


class TestBatchKwargsForwarding:
    """processes=N must return the same models as processes=1 (the
    dropped-kwargs regression: workers used to run defaults silently)."""

    def _cells(self):
        return [build_cell(SOI28, fn, 1) for fn in ("INV", "NAND2", "NOR2")]

    def test_inline_vs_pool_with_non_default_options(self):
        cells = self._cells()
        # Weak shorts + no delay detection change the detection tables, so
        # a worker silently falling back to defaults would be caught.
        params = ElectricalParams(short_resistance=50_000.0)
        inline = generate_library(
            cells, processes=1, params=params, delay_detection=False
        )
        pooled = generate_library(
            cells, processes=2, params=params, delay_detection=False
        )
        defaults = generate_library(cells, processes=1)
        assert set(inline) == set(pooled) == set(defaults)
        changed_any = False
        for name in inline:
            assert inline[name].detection.tobytes() == pooled[name].detection.tobytes()
            if inline[name].detection.tobytes() != defaults[name].detection.tobytes():
                changed_any = True
        assert changed_any, "options were expected to change at least one model"

    def test_universe_forwarded_to_workers(self, nand2):
        universe = default_universe(nand2)[:12]
        inline = generate_library([nand2], processes=1, universe=universe)
        pooled = generate_library([nand2], processes=2, universe=universe)
        assert inline[nand2.name].n_defects == 12
        assert pooled[nand2.name].n_defects == 12
        assert (
            inline[nand2.name].detection.tobytes()
            == pooled[nand2.name].detection.tobytes()
        )

    def test_duplicate_cell_names_raise(self, nand2):
        with pytest.raises(ValueError, match="duplicate"):
            generate_library([nand2, nand2], processes=1)
        with pytest.raises(ValueError, match="duplicate"):
            generate_library([nand2, nand2], processes=2)

    def test_generate_multi_forwards_parallelism(self, nand2):
        from repro.camodel import generate_multi

        models = generate_multi(nand2, params=SOI28.electrical, parallelism=2)
        model = models[nand2.outputs[0]]
        assert model.stats.workers == 2
