"""Every catalog function must implement its reference formula in every
technology — the foundation the whole dataset stands on."""

import pytest

from repro.library import CATALOG, SOI28, C28, C40, build_cell, function_names, get_function
from repro.logic import truth_table
from repro.simulation import logic_check


class TestCatalogIntegrity:
    def test_names_sorted_and_unique(self):
        names = function_names()
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            get_function("NAND9")

    @pytest.mark.parametrize("name", function_names())
    def test_spec_matches_input_count(self, name):
        fdef = CATALOG[name]
        pins = [f"I{i}" for i in range(fdef.n_inputs)]
        spec = fdef.spec(pins, "Z")
        assert spec.inputs == tuple(pins)
        assert spec.n_transistors % 2 == 0

    def test_spec_wrong_pin_count(self):
        with pytest.raises(ValueError):
            CATALOG["NAND2"].spec(["A"], "Z")

    @pytest.mark.parametrize("name", function_names())
    def test_formula_parses(self, name):
        fdef = CATALOG[name]
        pins = [f"I{i}" for i in range(fdef.n_inputs)]
        table = truth_table(fdef.expr(pins), pins)
        assert len(table) == 2 ** fdef.n_inputs


@pytest.mark.parametrize("tech", [SOI28, C40, C28], ids=lambda t: t.name)
@pytest.mark.parametrize("name", function_names())
def test_netlist_implements_formula(tech, name):
    """Switch-level behaviour equals the reference Boolean function."""
    cell = build_cell(tech, name, 1)
    mismatches = logic_check(cell, CATALOG[name].expr(cell.inputs), tech.electrical)
    assert not mismatches, mismatches[:4]


@pytest.mark.parametrize("drive", [2, 4])
def test_drive_variants_implement_formula(drive):
    for name in ("NAND2", "AOI21", "XOR2"):
        for tech in (SOI28, C40):
            cell = build_cell(tech, name, drive)
            assert not logic_check(
                cell, CATALOG[name].expr(cell.inputs), tech.electrical
            )
