"""Unit tests for the Boolean expression AST and parser."""

import pytest

from repro.logic import (
    And,
    Const,
    ExprSyntaxError,
    Not,
    Or,
    Var,
    Xor,
    assignments,
    parse_expr,
    truth_table,
)


class TestEvaluation:
    def test_var_and_const(self):
        assert Var("A").evaluate({"A": 1}) == 1
        assert Const(0).evaluate({}) == 0

    def test_gates(self):
        env = {"A": 1, "B": 0}
        assert And(Var("A"), Var("B")).evaluate(env) == 0
        assert Or(Var("A"), Var("B")).evaluate(env) == 1
        assert Xor(Var("A"), Var("B")).evaluate(env) == 1
        assert Not(Var("B")).evaluate(env) == 1

    def test_nary(self):
        env = {"A": 1, "B": 1, "C": 0}
        assert And(Var("A"), Var("B"), Var("C")).evaluate(env) == 0
        assert Or(Var("A"), Var("B"), Var("C")).evaluate(env) == 1
        assert Xor(Var("A"), Var("B"), Var("C")).evaluate(env) == 0

    def test_operator_sugar(self):
        expr = (Var("A") & Var("B")) | ~Var("C")
        assert expr.evaluate({"A": 1, "B": 1, "C": 1}) == 1
        assert expr.evaluate({"A": 0, "B": 1, "C": 1}) == 0

    def test_variables(self):
        expr = parse_expr("(A&B)|!C")
        assert expr.variables() == frozenset({"A", "B", "C"})


class TestParser:
    @pytest.mark.parametrize(
        "text,env,expected",
        [
            ("A&B", {"A": 1, "B": 1}, 1),
            ("A|B&C", {"A": 0, "B": 1, "C": 1}, 1),  # & binds tighter
            ("(A|B)&C", {"A": 1, "B": 0, "C": 0}, 0),
            ("!A", {"A": 0}, 1),
            ("!!A", {"A": 1}, 1),
            ("A^B^C", {"A": 1, "B": 1, "C": 1}, 1),
            ("1&A", {"A": 1}, 1),
            ("0|A", {"A": 0}, 0),
        ],
    )
    def test_parse_and_evaluate(self, text, env, expected):
        assert parse_expr(text).evaluate(env) == expected

    @pytest.mark.parametrize("bad", ["A&", "(A", "A B", "&A", "A!B", ""])
    def test_syntax_errors(self, bad):
        with pytest.raises(ExprSyntaxError):
            parse_expr(bad)

    def test_precedence_xor_between_or_and_and(self):
        # or is loosest: A | B ^ C == A | (B ^ C)
        expr = parse_expr("A|B^C")
        assert expr.evaluate({"A": 0, "B": 1, "C": 1}) == 0


class TestTruthTable:
    def test_nand2(self):
        expr = parse_expr("!(A&B)")
        assert truth_table(expr, ["A", "B"]) == (1, 1, 1, 0)

    def test_msb_is_first_input(self):
        expr = parse_expr("A")
        # A is the MSB: rows 00,01,10,11 -> A = 0,0,1,1
        assert truth_table(expr, ["A", "B"]) == (0, 0, 1, 1)

    def test_assignments_order(self):
        out = list(assignments(["A", "B"]))
        assert out[0] == {"A": 0, "B": 0}
        assert out[-1] == {"A": 1, "B": 1}
        assert len(out) == 4
