"""Crash-recovery integration: SIGKILL a real ``batch`` CLI subprocess
mid-run, resume, and diff the result against a clean baseline.

This is the one suite that exercises a *real* unscripted kill — the
parent orchestrator dies at an arbitrary instant (as soon as at least
one checkpoint artifact exists) and the resumed session must converge
to the exact bytes an uninterrupted run produces.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.library import SOI28, build_cell
from repro.resilience.ledger import RunLedger
from repro.resilience.runner import run_library
from repro.spice import parse_library, write_library

ROOT = Path(__file__).resolve().parents[1]

FUNCTIONS = ("NAND2", "NOR2", "AND2", "OR2", "AOI21")


@pytest.fixture(scope="module")
def netlist_file(tmp_path_factory):
    built = [build_cell(SOI28, function, 1) for function in FUNCTIONS]
    path = tmp_path_factory.mktemp("netlist") / "library.sp"
    path.write_text(write_library(built, SOI28.dialect))
    return path


@pytest.fixture(scope="module")
def cells(netlist_file):
    # Parse from the netlist so the in-process baseline and the CLI
    # subprocess characterize byte-identical cell representations.
    return parse_library(netlist_file.read_text())


@pytest.fixture(scope="module")
def baseline_bytes(tmp_path_factory, cells):
    run_dir = tmp_path_factory.mktemp("clean")
    output = run_dir / "library.json"
    result = run_library(
        cells, run_dir=run_dir, processes=2, retry_backoff=0.0, output=output
    )
    assert result.complete
    return output.read_bytes()


def _spawn_batch(netlist_file, run_dir, output):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "batch",
            str(netlist_file),
            "--run-dir",
            str(run_dir),
            "-o",
            str(output),
            "--processes",
            "1",
            "--retry-backoff",
            "0",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestSigkillRecovery:
    def test_killed_batch_resumes_byte_identical(
        self, tmp_path, cells, netlist_file, baseline_bytes
    ):
        run_dir = tmp_path / "run"
        output = tmp_path / "library.json"
        process = _spawn_batch(netlist_file, run_dir, output)
        try:
            # Kill as soon as the first checkpoint lands — an arbitrary
            # mid-run instant from the orchestrator's point of view.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    pytest.fail(
                        "batch subprocess finished before it could be killed;"
                        " enlarge the cell set"
                    )
                if list((run_dir / "models").glob("*.json")):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("no checkpoint artifact appeared within 120s")
            os.kill(process.pid, signal.SIGKILL)
        finally:
            process.wait()
        assert process.returncode == -signal.SIGKILL
        assert not output.exists()  # the killed run never assembled a library

        # Resume through the CLI and diff against the clean baseline.
        rc = main(
            [
                "batch",
                str(netlist_file),
                "--run-dir",
                str(run_dir),
                "--resume",
                "-o",
                str(output),
                "--retry-backoff",
                "0",
            ]
        )
        assert rc == 0
        assert output.read_bytes() == baseline_bytes

        # Per-model JSON diff against the clean run, cell by cell.
        clean = {
            model["cell"]: model
            for model in json.loads(baseline_bytes)["models"]
        }
        resumed = {
            model["cell"]: model
            for model in json.loads(output.read_text())["models"]
        }
        assert resumed == clean

    def test_resumed_session_reuses_prior_checkpoints(
        self, tmp_path, cells, netlist_file, baseline_bytes
    ):
        run_dir = tmp_path / "run"
        output = tmp_path / "library.json"
        process = _spawn_batch(netlist_file, run_dir, output)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    pytest.fail("batch subprocess finished too quickly")
                done = [
                    record
                    for record in _ledger_cells(run_dir).values()
                    if record.get("state") == "done"
                ]
                if done:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("no cell reached done within 120s")
            os.kill(process.pid, signal.SIGKILL)
        finally:
            process.wait()

        result = run_library(
            cells,
            run_dir=run_dir,
            processes=2,
            resume=True,
            retry_backoff=0.0,
            output=output,
        )
        assert result.complete
        assert result.resumed, "resume should reuse completed checkpoints"
        assert output.read_bytes() == baseline_bytes
        ledger = RunLedger.load(run_dir)
        for name in result.resumed:
            # reused cells were not regenerated by the resumed session
            assert ledger.cells[name]["state"] == "done"


def _ledger_cells(run_dir):
    path = Path(run_dir) / "ledger.json"
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text()).get("cells", {})
    except (ValueError, json.JSONDecodeError):
        return {}
