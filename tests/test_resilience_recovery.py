"""Crash-recovery integration: SIGKILL a real ``batch`` CLI subprocess
mid-run, resume, and diff the result against a clean baseline.

This is the one suite that exercises a *real* unscripted kill — the
parent orchestrator dies at an arbitrary instant (as soon as at least
one checkpoint artifact exists) and the resumed session must converge
to the exact bytes an uninterrupted run produces.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.library import SOI28, build_cell
from repro.obs.store import RunTelemetry
from repro.resilience.faults import FaultPlan, FaultRule
from repro.resilience.ledger import RunLedger
from repro.resilience.runner import run_library
from repro.service import serve, submit_library
from repro.spice import parse_library, write_library

ROOT = Path(__file__).resolve().parents[1]

FUNCTIONS = ("NAND2", "NOR2", "AND2", "OR2", "AOI21")


@pytest.fixture(scope="module")
def netlist_file(tmp_path_factory):
    built = [build_cell(SOI28, function, 1) for function in FUNCTIONS]
    path = tmp_path_factory.mktemp("netlist") / "library.sp"
    path.write_text(write_library(built, SOI28.dialect))
    return path


@pytest.fixture(scope="module")
def cells(netlist_file):
    # Parse from the netlist so the in-process baseline and the CLI
    # subprocess characterize byte-identical cell representations.
    return parse_library(netlist_file.read_text())


@pytest.fixture(scope="module")
def baseline_bytes(tmp_path_factory, cells):
    run_dir = tmp_path_factory.mktemp("clean")
    output = run_dir / "library.json"
    result = run_library(
        cells, run_dir=run_dir, processes=2, retry_backoff=0.0, output=output
    )
    assert result.complete
    return output.read_bytes()


def _spawn_batch(netlist_file, run_dir, output):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "batch",
            str(netlist_file),
            "--run-dir",
            str(run_dir),
            "-o",
            str(output),
            "--processes",
            "1",
            "--retry-backoff",
            "0",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestSigkillRecovery:
    def test_killed_batch_resumes_byte_identical(
        self, tmp_path, cells, netlist_file, baseline_bytes
    ):
        run_dir = tmp_path / "run"
        output = tmp_path / "library.json"
        process = _spawn_batch(netlist_file, run_dir, output)
        try:
            # Kill as soon as the first checkpoint lands — an arbitrary
            # mid-run instant from the orchestrator's point of view.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    pytest.fail(
                        "batch subprocess finished before it could be killed;"
                        " enlarge the cell set"
                    )
                if list((run_dir / "models").glob("*.json")):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("no checkpoint artifact appeared within 120s")
            os.kill(process.pid, signal.SIGKILL)
        finally:
            process.wait()
        assert process.returncode == -signal.SIGKILL
        assert not output.exists()  # the killed run never assembled a library

        # Resume through the CLI and diff against the clean baseline.
        rc = main(
            [
                "batch",
                str(netlist_file),
                "--run-dir",
                str(run_dir),
                "--resume",
                "-o",
                str(output),
                "--retry-backoff",
                "0",
            ]
        )
        assert rc == 0
        assert output.read_bytes() == baseline_bytes

        # Per-model JSON diff against the clean run, cell by cell.
        clean = {
            model["cell"]: model
            for model in json.loads(baseline_bytes)["models"]
        }
        resumed = {
            model["cell"]: model
            for model in json.loads(output.read_text())["models"]
        }
        assert resumed == clean

    def test_resumed_session_reuses_prior_checkpoints(
        self, tmp_path, cells, netlist_file, baseline_bytes
    ):
        run_dir = tmp_path / "run"
        output = tmp_path / "library.json"
        process = _spawn_batch(netlist_file, run_dir, output)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    pytest.fail("batch subprocess finished too quickly")
                done = [
                    record
                    for record in _ledger_cells(run_dir).values()
                    if record.get("state") == "done"
                ]
                if done:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("no cell reached done within 120s")
            os.kill(process.pid, signal.SIGKILL)
        finally:
            process.wait()

        result = run_library(
            cells,
            run_dir=run_dir,
            processes=2,
            resume=True,
            retry_backoff=0.0,
            output=output,
        )
        assert result.complete
        assert result.resumed, "resume should reuse completed checkpoints"
        assert output.read_bytes() == baseline_bytes
        ledger = RunLedger.load(run_dir)
        for name in result.resumed:
            # reused cells were not regenerated by the resumed session
            assert ledger.cells[name]["state"] == "done"


def _ledger_cells(run_dir):
    path = Path(run_dir) / "ledger.json"
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text()).get("cells", {})
    except (ValueError, json.JSONDecodeError):
        return {}


# ----------------------------------------------------------------------
# Service chaos: kill leased workers, diff against the sequential bytes
# ----------------------------------------------------------------------


def _spawn_worker(run_dir, owner):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            str(run_dir),
            "--owner",
            owner,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _attempt_outcomes(run_dir, name):
    """(attempt, outcome) pairs of every telemetry shard of *name*."""
    tel = RunTelemetry.load(run_dir)
    return [
        (int(shard["attempt"]), str(shard["outcome"]))
        for shard in tel.attempts_for(name)
    ]


class TestServiceWorkerSigkill:
    def test_sigkilled_worker_cell_releases_once_byte_identical(
        self, tmp_path, cells, baseline_bytes
    ):
        """SIGKILL a live worker subprocess mid-lease.

        The orphaned lease must expire, the coordinator must re-lease
        the cell exactly once, and the final library bytes must match an
        uninterrupted sequential run.
        """
        run_dir = tmp_path / "run"
        output = tmp_path / "library.json"
        job = submit_library(cells, run_dir, lease_ttl=1.0, retries=1)
        artifacts = {
            name: run_dir / "models" / f"{name}-{key}.json"
            for name, key in job.manifest.keyed()
        }
        worker = _spawn_worker(run_dir, owner="victim")
        victim = None
        try:
            deadline = time.monotonic() + 120
            lease_dir = run_dir / "leases"
            while time.monotonic() < deadline:
                if worker.poll() is not None:
                    pytest.fail("worker finished before it could be killed")
                live = [
                    path.stem
                    for path in sorted(lease_dir.glob("*.json"))
                    if path.stem in artifacts
                    and not artifacts[path.stem].exists()
                ] if lease_dir.is_dir() else []
                if live:
                    victim = live[0]
                    break
                time.sleep(0.002)
            else:
                pytest.fail("worker never claimed a lease within 120s")
            os.kill(worker.pid, signal.SIGKILL)
        finally:
            worker.wait()
        assert worker.returncode == -signal.SIGKILL
        # The kill left an orphan: the claim file still blocks the cell,
        # its holder is dead, and only lease expiry can free it.
        assert (run_dir / "leases" / f"{victim}.json").exists()
        assert not artifacts[victim].exists()

        result = serve(run_dir, workers=2, output=output)
        assert result.complete
        assert not result.quarantined
        assert output.read_bytes() == baseline_bytes

        # Re-leased exactly once: the lifetime record of the victim cell
        # is one expired-lease crash followed by one clean attempt.
        record = RunLedger.load(run_dir).cells[victim]
        errors = record.get("errors", [])
        assert len(errors) == 1
        assert errors[0]["kind"] == "crash"
        assert "lease expired" in errors[0]["error"]
        assert int(record["attempts"]) == 2
        assert _attempt_outcomes(run_dir, victim) == [
            (0, "crash"),
            (1, "ok"),
        ]
        # every other cell was characterized on the first attempt
        for name, cell_record in RunLedger.load(run_dir).cells.items():
            if name != victim:
                assert int(cell_record["attempts"]) == 1
                assert not cell_record.get("errors")

    def test_crash_fault_killed_worker_is_respawned_and_converges(
        self, tmp_path, cells, baseline_bytes
    ):
        """A crash fault exits the whole worker process mid-lease.

        The coordinator must reap the expired lease, respawn a local
        worker, retry the cell within budget, and still produce the
        sequential bytes — with the dead attempt visible in the
        reconciled telemetry.
        """
        run_dir = tmp_path / "run"
        output = tmp_path / "library.json"
        plan = FaultPlan(
            rules=[FaultRule(cell="S28_NAND2X1", mode="crash", attempts=(0,))]
        )
        submit_library(
            cells, run_dir, lease_ttl=1.0, retries=1, fault_plan=plan
        )
        result = serve(run_dir, workers=2, output=output)
        assert result.complete
        assert not result.quarantined
        assert output.read_bytes() == baseline_bytes

        record = RunLedger.load(run_dir).cells["S28_NAND2X1"]
        errors = record.get("errors", [])
        assert len(errors) == 1
        assert errors[0]["kind"] == "crash"
        assert int(record["attempts"]) == 2
        assert _attempt_outcomes(run_dir, "S28_NAND2X1") == [
            (0, "crash"),
            (1, "ok"),
        ]
        tel = RunTelemetry.load(run_dir)
        assert tel.reconcile() == []
        # the lease expiry is on the record (merged worker/session events)
        expired = [
            event
            for event in tel.merged_events()
            if event.get("event") == "lease.expired"
        ]
        assert len(expired) == 1
        assert expired[0]["cell"] == "S28_NAND2X1"

        # publish the service chaos artifacts for the CI `distributed`
        # job's upload (same idiom as CHAOS_failure_report.json)
        (ROOT / "SERVICE_failure_report.json").write_text(
            (run_dir / "failures.json").read_text()
        )
        (ROOT / "SERVICE_run_telemetry.json").write_text(
            json.dumps(
                {
                    "attempts": tel.attempts,
                    "workers": tel.workers,
                    "worker_counters": tel.worker_counters(),
                    "counters_by_cell": tel.counters_by_cell(),
                    "lease_expiries": expired,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
