"""Unit tests for CA-guided pattern selection and cell-level diagnosis."""

import numpy as np
import pytest

from repro.camodel.patterns import (
    DiagnosisCandidate,
    PatternSet,
    diagnose,
    select_patterns,
)


class TestSelectPatterns:
    def test_full_coverage_on_real_model(self, nand2_model):
        result = select_patterns(nand2_model)
        assert result.coverage == 1.0
        assert len(result.stimuli) <= nand2_model.n_stimuli
        # selection covers every detectable equivalence class
        classes = nand2_model.equivalence()
        for eq_class in classes:
            row = np.array(eq_class.detection)
            if row.any():
                assert any(row[i] for i in result.stimuli)

    def test_compaction_effective(self, aoi21_model):
        result = select_patterns(aoi21_model)
        # a handful of patterns covers everything the exhaustive set does
        assert len(result.stimuli) < aoi21_model.n_stimuli / 2

    def test_budget_limits_patterns(self, nand2_model):
        limited = select_patterns(nand2_model, max_patterns=2)
        assert len(limited.stimuli) <= 2
        full = select_patterns(nand2_model)
        assert limited.coverage <= full.coverage

    def test_undetectable_reported(self, nand2_model):
        result = select_patterns(nand2_model)
        # bulk opens are logically benign -> undetectable classes exist
        assert result.undetectable

    def test_words_render(self, nand2_model):
        result = select_patterns(nand2_model)
        words = result.words(nand2_model)
        assert len(words) == len(result.stimuli)
        assert all(set(w) <= set("01RF") for w in words)

    def test_without_equivalence_collapse(self, nand2_model):
        raw = select_patterns(nand2_model, collapse_equivalent=False)
        assert raw.coverage == 1.0

    def test_greedy_order_is_by_gain(self, nand2_model):
        result = select_patterns(nand2_model)
        classes = nand2_model.equivalence()
        rows = np.array([c.detection for c in classes])
        detectable = rows[rows.any(axis=1)]
        first_gain = detectable[:, result.stimuli[0]].sum()
        assert first_gain == detectable.sum(axis=0).max()


class TestDiagnose:
    def test_exact_signature_identified(self, nand2_model):
        eq_class = next(
            c for c in nand2_model.equivalence() if any(c.detection)
        )
        observed = list(eq_class.detection)
        candidates = diagnose(nand2_model, observed)
        assert candidates[0].exact
        assert candidates[0].defect_names == eq_class.members
        assert candidates[0].score == 1.0

    def test_noisy_signature_still_ranked_first(self, nand2_model):
        eq_class = max(
            (c for c in nand2_model.equivalence()),
            key=lambda c: sum(c.detection),
        )
        observed = list(eq_class.detection)
        flip = next(i for i, v in enumerate(observed) if v == 0)
        observed[flip] = 1  # one spurious fail
        candidates = diagnose(nand2_model, observed, top=3)
        assert eq_class.members in [c.defect_names for c in candidates]

    def test_wrong_length_rejected(self, nand2_model):
        with pytest.raises(ValueError):
            diagnose(nand2_model, [0, 1])

    def test_top_limits_results(self, nand2_model):
        observed = [0] * nand2_model.n_stimuli
        observed[0] = 1
        assert len(diagnose(nand2_model, observed, top=2)) == 2

    def test_scores_sorted_descending(self, nand2_model):
        observed = [0] * nand2_model.n_stimuli
        observed[-1] = 1
        scores = [c.score for c in diagnose(nand2_model, observed, top=5)]
        assert scores == sorted(scores, reverse=True)
