"""The quick examples must run end to end (the slow cross-technology and
hybrid walkthroughs are exercised by the benchmark harness instead)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "predicted CA model" in out
        assert "agreement" in out

    def test_conventional_flow(self):
        out = _run("conventional_flow.py", "NAND2")
        assert "equivalence" in out
        assert "sequence-dependent defect" in out

    def test_test_and_diagnose(self):
        out = _run("test_and_diagnose.py")
        assert "compacted" in out
        assert "diagnosis" in out

    def test_library_artifacts(self, tmp_path):
        out = _run("library_artifacts.py", str(tmp_path))
        assert "wrote" in out
        assert (tmp_path / "soi28.lib").exists()
        assert (tmp_path / "S28_NAND2X1.udfm").exists()
        assert (tmp_path / "S28_NAND2X1_stuck_open.vcd").exists()
