"""Integration tests: the full pipeline across module boundaries."""

import numpy as np
import pytest

from repro.camatrix import inference_matrix, training_matrix
from repro.camodel import generate_ca_model, load_model, save_model
from repro.learning import (
    RandomForestClassifier,
    accuracy_score,
    build_samples,
    leave_one_out,
    sample_rows,
    stack_group,
)
from repro.library import C28, C40, SOI28, build_cell
from repro.spice import parse_cell, write_cell


class TestTextToPrediction:
    """SPICE text in -> predicted CA model out, across dialects."""

    def test_foreign_netlist_predicted_from_builder_cells(self):
        # train on builder-produced soi28 NAND2 flavors
        train_cells = [build_cell(SOI28, "NAND2", 1, f) for f in SOI28.flavors]
        samples = build_samples(
            [(c, generate_ca_model(c, params=SOI28.electrical)) for c in train_cells],
            SOI28.electrical,
        )
        X, y = stack_group(samples)
        clf = RandomForestClassifier(n_estimators=8, max_features=0.5, random_state=0)
        clf.fit(X, y)

        # round-trip a c28 NAND2 through its SPICE dialect text
        c28_cell = build_cell(C28, "NAND2", 1)
        text = write_cell(c28_cell, C28.dialect)
        parsed = parse_cell(text, technology="c28")
        matrix = inference_matrix(parsed, C28.electrical)
        predicted = clf.predict(matrix.features)
        model = matrix.to_model(predicted)

        reference = generate_ca_model(c28_cell, params=C28.electrical)
        # align rows by (defect, stimulus) since enumeration matches
        assert model.detection.shape == reference.detection.shape
        agreement = (model.detection == reference.detection).mean()
        assert agreement > 0.95

    def test_predicted_model_persists(self, tmp_path, nand2, nand2_model):
        matrix = training_matrix(nand2, nand2_model, SOI28.electrical)
        clf = RandomForestClassifier(n_estimators=4, max_features=0.5, random_state=1)
        clf.fit(matrix.features, matrix.labels)
        model = matrix.to_model(clf.predict(matrix.features))
        path = save_model(model, tmp_path / "predicted.json")
        back = load_model(path)
        assert (back.detection == model.detection).all()


class TestSelfPrediction:
    def test_forest_reproduces_own_training_model(self, nand2, nand2_model):
        # bootstrap off: on small noise-free data every row must be seen,
        # otherwise unsampled rare rows lose the vote
        matrix = training_matrix(nand2, nand2_model, SOI28.electrical)
        clf = RandomForestClassifier(
            n_estimators=8, max_features=0.5, bootstrap=False, random_state=0
        )
        clf.fit(matrix.features, matrix.labels)
        assert accuracy_score(matrix.labels, clf.predict(matrix.features)) == 1.0


class TestMiniTable4:
    @pytest.fixture(scope="class")
    def soi28_samples(self):
        cells = [
            build_cell(SOI28, fn, 1, flavor)
            for fn in ("NAND2", "NOR2", "AND2", "OR2")
            for flavor in SOI28.flavors
        ]
        return build_samples(
            [(c, generate_ca_model(c, params=SOI28.electrical)) for c in cells],
            SOI28.electrical,
        )

    def test_same_technology_high_accuracy(self, soi28_samples):
        report = leave_one_out(soi28_samples, kinds={"open"})
        assert report.mean_accuracy() > 0.98
        table = report.group_table()
        assert any(box["perfect"] > 0 for box in table.values())

    def test_cross_technology_shapes(self, soi28_samples):
        from repro.learning import cross_technology

        eval_cells = [
            build_cell(C40, "NAND2", 1),
            build_cell(C40, "AND2", 1),
            build_cell(C28, "NAND2", 1),
        ]
        for cell in eval_cells:
            tech = C40 if cell.technology == "c40" else C28
            eval_samples = build_samples(
                [(cell, generate_ca_model(cell, params=tech.electrical))],
                tech.electrical,
            )
            report = cross_technology(soi28_samples, eval_samples, kinds={"open"})
            assert report.evaluations[0].accuracy > 0.95


class TestShortsVsOpens:
    def test_short_prediction_with_structural_support(self):
        # shorts transfer when the group holds a same-structure cell
        cells = [build_cell(SOI28, "NAND2", 1, f) for f in SOI28.flavors]
        samples = build_samples(
            [(c, generate_ca_model(c, params=SOI28.electrical)) for c in cells],
            SOI28.electrical,
        )
        report = leave_one_out(samples, kinds={"short"})
        # a few short labels genuinely flip between sizing flavors (the
        # paper's "slight differences" across test conditions), so the
        # ceiling sits just below 100 %
        assert report.mean_accuracy() > 0.97

    def test_short_prediction_without_support_degrades(self, nand2, nand2_model, nor2, nor2_model):
        # the paper's "new transistor configuration" failure mode: a NOR2
        # cannot teach a NAND2 its short behaviour
        samples = build_samples(
            [(nand2, nand2_model), (nor2, nor2_model)], SOI28.electrical
        )
        report = leave_one_out(samples, kinds={"short"})
        assert report.mean_accuracy() < 0.9
