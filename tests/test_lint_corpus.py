"""Integration tests: `python -m repro lint` against the fixture corpus.

The corpus layout is documented in tests/lint_corpus/README.md:

- bad/        one fixture per rule family; golden.json pins the findings
- suppressed/ the same violations, silenced via every suppression form
- baseline/   a known-debt file, adopted through --write-baseline

These tests run the real CLI as a subprocess so exit codes, argument
parsing, and reporter plumbing are all exercised end to end.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CORPUS = Path("tests") / "lint_corpus"


def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_bad_corpus_matches_golden():
    proc = run_cli(str(CORPUS / "bad"), "--format", "json")
    assert proc.returncode == 1, proc.stderr
    got = json.loads(proc.stdout)
    golden = json.loads((REPO_ROOT / CORPUS / "golden.json").read_text())
    assert got == golden, (
        "lint output drifted from tests/lint_corpus/golden.json; if the "
        "change is intentional, regenerate it (see tests/lint_corpus/README.md)"
    )


def test_bad_corpus_covers_every_rule_family():
    golden = json.loads((REPO_ROOT / CORPUS / "golden.json").read_text())
    fired = {f["rule"] for f in golden["findings"]}
    for rule_id in (
        "RPL001", "RPL002", "RPL003", "RPL004",
        "RPL005", "RPL006", "RPL007", "RPL008",
    ):
        assert rule_id in fired, f"no bad-corpus fixture triggers {rule_id}"


def test_suppressed_corpus_is_clean():
    proc = run_cli(str(CORPUS / "suppressed"))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "found 0 problem(s)" in proc.stdout


def test_baseline_round_trip(tmp_path):
    target = str(CORPUS / "baseline")
    baseline = tmp_path / "baseline.json"

    # Without a baseline the known-debt file fails the lint.
    proc = run_cli(target)
    assert proc.returncode == 1

    proc = run_cli(target, "--write-baseline", str(baseline))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(baseline.read_text())["fingerprints"]

    # With the baseline applied, the same tree is clean...
    proc = run_cli(target, "--baseline", str(baseline))
    assert proc.returncode == 0, proc.stdout + proc.stderr

    # ...but new findings still surface through it.
    proc = run_cli(str(CORPUS / "bad"), "--baseline", str(baseline))
    assert proc.returncode == 1


def test_select_and_ignore_cli():
    proc = run_cli(str(CORPUS / "bad"), "--select", "RPL001", "--format", "json")
    assert proc.returncode == 1
    rules = {f["rule"] for f in json.loads(proc.stdout)["findings"]}
    assert rules == {"RPL001"}

    proc = run_cli(str(CORPUS / "bad"), "--select", "RPL999")
    assert proc.returncode == 2
    assert "RPL999" in proc.stderr


def test_list_rules_and_explain():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("RPL001", "RPL008"):
        assert rule_id in proc.stdout

    proc = run_cli("--explain", "RPL004")
    assert proc.returncode == 0
    assert "wall-clock" in proc.stdout.lower()


def test_src_tree_is_lint_clean():
    """The acceptance gate: the shipped source tree has zero findings."""
    proc = run_cli("src")
    assert proc.returncode == 0, (
        "`python -m repro lint src` must stay clean:\n" + proc.stdout + proc.stderr
    )


# ----------------------------------------------------------------------
# Whole-program pack (--program, RPL101..RPL106)
# ----------------------------------------------------------------------

PROGRAM_CORPUS = CORPUS / "program"


def test_program_corpus_matches_golden():
    proc = run_cli(
        str(PROGRAM_CORPUS / "bad"), "--program", "--no-cache",
        "--format", "json",
    )
    assert proc.returncode == 1, proc.stderr
    got = json.loads(proc.stdout)
    golden = json.loads(
        (REPO_ROOT / PROGRAM_CORPUS / "golden.json").read_text()
    )
    assert got == golden, (
        "program-lint output drifted from tests/lint_corpus/program/"
        "golden.json; if intentional, regenerate it (see README.md)"
    )


def test_program_corpus_covers_every_program_rule():
    golden = json.loads(
        (REPO_ROOT / PROGRAM_CORPUS / "golden.json").read_text()
    )
    fired = {f["rule"] for f in golden["findings"]}
    for rule_id in (
        "RPL101", "RPL102", "RPL103", "RPL104", "RPL105", "RPL106",
    ):
        assert rule_id in fired, f"no program fixture triggers {rule_id}"
    # the merged report carries per-file findings from the same run
    assert {"RPL002", "RPL005", "RPL008"} <= fired


def test_program_good_twins_stay_clean():
    """Each rule's good twin must not appear in the golden findings."""
    golden = json.loads(
        (REPO_ROOT / PROGRAM_CORPUS / "golden.json").read_text()
    )
    flagged_lines = {
        (f["path"], f["line"]) for f in golden["findings"]
    }
    bad_root = REPO_ROOT / PROGRAM_CORPUS / "bad"
    for twin in (
        "safe_key", "canonical_key", "summarize", "CleanWorkItem",
        "good_commit", "def settle", "def peek", "def careful",
    ):
        hits = [
            (path, i)
            for path in sorted(bad_root.rglob("*.py"))
            for i, line in enumerate(path.read_text().splitlines(), 1)
            if twin in line and line.lstrip().startswith(("def ", "class "))
        ]
        assert hits, f"good twin {twin} missing from the corpus"
        for path, line in hits:
            rel = path.relative_to(REPO_ROOT).as_posix()
            assert (rel, line) not in flagged_lines, (
                f"good twin {twin} at {rel}:{line} was flagged"
            )


def test_program_src_tree_is_clean():
    """Acceptance gate: `lint --program src` exits 0."""
    proc = run_cli("src", "--program", "--no-cache")
    assert proc.returncode == 0, (
        "`python -m repro lint src --program` must stay clean:\n"
        + proc.stdout + proc.stderr
    )


def test_program_cache_round_trip_and_corruption(tmp_path):
    cache = tmp_path / "cache"
    args = (
        str(PROGRAM_CORPUS / "bad"), "--program",
        "--cache-dir", str(cache), "--format", "json",
    )
    cold = run_cli(*args)
    assert cold.returncode == 1, cold.stderr
    warm = run_cli(*args)
    assert warm.returncode == 1
    assert json.loads(warm.stdout) == json.loads(cold.stdout)

    # corrupt every cache entry: the run must rebuild, not crash
    entries = list(cache.iterdir())
    assert entries, "cache directory is empty after a cold run"
    for entry in entries:
        entry.write_text("{ not json !")
    rebuilt = run_cli(*args)
    assert rebuilt.returncode == 1, rebuilt.stderr
    assert json.loads(rebuilt.stdout) == json.loads(cold.stdout)


def test_program_syntax_error_module_degrades_gracefully(tmp_path):
    """One unparsable module: RPL000 for it, full analysis of the rest."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "broken.py").write_text("def oops(:\n")
    (pkg / "clock.py").write_text(
        "import time\n\ndef stamp():\n    return time.time()\n"
    )
    (pkg / "hasher.py").write_text(
        "import hashlib\n\nfrom pkg.clock import stamp\n\n\n"
        "def key(text):\n"
        "    return hashlib.sha256(f'{text}{stamp()}'.encode()).hexdigest()\n"
    )
    proc = run_cli(
        str(tmp_path), "--program", "--no-cache", "--format", "json",
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1, proc.stderr
    rules = {f["rule"] for f in json.loads(proc.stdout)["findings"]}
    assert "RPL000" in rules, "syntax error must surface as RPL000"
    assert "RPL101" in rules, "healthy modules must still be analyzed"


def test_program_jobs_matches_serial():
    serial = run_cli(
        str(PROGRAM_CORPUS / "bad"), "--program", "--no-cache",
        "--format", "json",
    )
    parallel = run_cli(
        str(PROGRAM_CORPUS / "bad"), "--program", "--no-cache",
        "--jobs", "2", "--format", "json",
    )
    assert parallel.returncode == serial.returncode == 1
    assert json.loads(parallel.stdout) == json.loads(serial.stdout)


def test_jobs_perfile_matches_serial():
    serial = run_cli(str(CORPUS / "bad"), "--format", "json")
    parallel = run_cli(str(CORPUS / "bad"), "--jobs", "2", "--format", "json")
    assert parallel.returncode == serial.returncode == 1
    assert json.loads(parallel.stdout) == json.loads(serial.stdout)


def test_program_rule_selection_and_explain():
    proc = run_cli(
        str(PROGRAM_CORPUS / "bad"), "--program", "--no-cache",
        "--select", "RPL104", "--format", "json",
    )
    assert proc.returncode == 1
    rules = {f["rule"] for f in json.loads(proc.stdout)["findings"]}
    assert rules == {"RPL104"}

    # a program rule id without --program is a usage error
    proc = run_cli(str(PROGRAM_CORPUS / "bad"), "--select", "RPL104")
    assert proc.returncode == 2
    assert "--program" in proc.stderr

    proc = run_cli("--explain", "RPL101")
    assert proc.returncode == 0
    assert "taint" in proc.stdout.lower()


def test_program_string_directive_fixture_still_flagged():
    """Satellite regression: directives inside strings do not suppress."""
    golden = json.loads((REPO_ROOT / CORPUS / "golden.json").read_text())
    flagged = {
        f["path"] for f in golden["findings"] if f["rule"] == "RPL001"
    }
    assert "tests/lint_corpus/bad/string_directive.py" in flagged
