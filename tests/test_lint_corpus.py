"""Integration tests: `python -m repro lint` against the fixture corpus.

The corpus layout is documented in tests/lint_corpus/README.md:

- bad/        one fixture per rule family; golden.json pins the findings
- suppressed/ the same violations, silenced via every suppression form
- baseline/   a known-debt file, adopted through --write-baseline

These tests run the real CLI as a subprocess so exit codes, argument
parsing, and reporter plumbing are all exercised end to end.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CORPUS = Path("tests") / "lint_corpus"


def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_bad_corpus_matches_golden():
    proc = run_cli(str(CORPUS / "bad"), "--format", "json")
    assert proc.returncode == 1, proc.stderr
    got = json.loads(proc.stdout)
    golden = json.loads((REPO_ROOT / CORPUS / "golden.json").read_text())
    assert got == golden, (
        "lint output drifted from tests/lint_corpus/golden.json; if the "
        "change is intentional, regenerate it (see tests/lint_corpus/README.md)"
    )


def test_bad_corpus_covers_every_rule_family():
    golden = json.loads((REPO_ROOT / CORPUS / "golden.json").read_text())
    fired = {f["rule"] for f in golden["findings"]}
    for rule_id in (
        "RPL001", "RPL002", "RPL003", "RPL004",
        "RPL005", "RPL006", "RPL007", "RPL008",
    ):
        assert rule_id in fired, f"no bad-corpus fixture triggers {rule_id}"


def test_suppressed_corpus_is_clean():
    proc = run_cli(str(CORPUS / "suppressed"))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "found 0 problem(s)" in proc.stdout


def test_baseline_round_trip(tmp_path):
    target = str(CORPUS / "baseline")
    baseline = tmp_path / "baseline.json"

    # Without a baseline the known-debt file fails the lint.
    proc = run_cli(target)
    assert proc.returncode == 1

    proc = run_cli(target, "--write-baseline", str(baseline))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(baseline.read_text())["fingerprints"]

    # With the baseline applied, the same tree is clean...
    proc = run_cli(target, "--baseline", str(baseline))
    assert proc.returncode == 0, proc.stdout + proc.stderr

    # ...but new findings still surface through it.
    proc = run_cli(str(CORPUS / "bad"), "--baseline", str(baseline))
    assert proc.returncode == 1


def test_select_and_ignore_cli():
    proc = run_cli(str(CORPUS / "bad"), "--select", "RPL001", "--format", "json")
    assert proc.returncode == 1
    rules = {f["rule"] for f in json.loads(proc.stdout)["findings"]}
    assert rules == {"RPL001"}

    proc = run_cli(str(CORPUS / "bad"), "--select", "RPL999")
    assert proc.returncode == 2
    assert "RPL999" in proc.stderr


def test_list_rules_and_explain():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("RPL001", "RPL008"):
        assert rule_id in proc.stdout

    proc = run_cli("--explain", "RPL004")
    assert proc.returncode == 0
    assert "wall-clock" in proc.stdout.lower()


def test_src_tree_is_lint_clean():
    """The acceptance gate: the shipped source tree has zero findings."""
    proc = run_cli("src")
    assert proc.returncode == 0, (
        "`python -m repro lint src` must stay clean:\n" + proc.stdout + proc.stderr
    )
