"""Shared fixtures: small cells and CA models, built once per session."""

import pytest

from repro.library import SOI28, C28, C40, build_cell
from repro.camodel import generate_ca_model
from repro.simulation import golden_simulator


@pytest.fixture(scope="session")
def nand2():
    return build_cell(SOI28, "NAND2", 1)


@pytest.fixture(scope="session")
def nor2():
    return build_cell(SOI28, "NOR2", 1)


@pytest.fixture(scope="session")
def aoi21():
    return build_cell(SOI28, "AOI21", 1)


@pytest.fixture(scope="session")
def and2():
    return build_cell(SOI28, "AND2", 1)


@pytest.fixture(scope="session")
def nand2_x2():
    return build_cell(SOI28, "NAND2", 2)


@pytest.fixture(scope="session")
def nand2_c40():
    return build_cell(C40, "NAND2", 1)


@pytest.fixture(scope="session")
def nand2_c28():
    return build_cell(C28, "NAND2", 1)


@pytest.fixture(scope="session")
def nand2_model(nand2):
    return generate_ca_model(nand2, params=SOI28.electrical)


@pytest.fixture(scope="session")
def nor2_model(nor2):
    return generate_ca_model(nor2, params=SOI28.electrical)


@pytest.fixture(scope="session")
def aoi21_model(aoi21):
    return generate_ca_model(aoi21, params=SOI28.electrical)


@pytest.fixture(scope="session")
def nand2_sim(nand2):
    return golden_simulator(nand2, SOI28.electrical)
