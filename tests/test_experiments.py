"""Smoke tests for the experiment regenerators (tables and figures)."""

import pytest

from repro.experiments import (
    fig4_partial_matrix,
    fig5_branch_equations,
    fig5_cell,
    fig6_equivalence_demo,
    format_accuracy_grid,
    format_summary,
    format_table,
    table1_training_rows,
    table2_activity,
    table3_defect_columns,
)


class TestReporting:
    def test_format_table(self):
        text = format_table(("a", "bb"), [(1, 2), (33, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "33" in text

    def test_format_accuracy_grid(self):
        table = {
            (2, 4): {"mean": 0.999, "max": 1.0, "cells": 3, "perfect": 1},
            (3, 6): {"mean": 0.95, "max": 0.96, "cells": 2, "perfect": 0},
        }
        grid = format_accuracy_grid(table, title="Table IV")
        assert "99.90*" in grid  # perfect marker
        assert "95.00" in grid and "95.00*" not in grid

    def test_format_accuracy_grid_empty(self):
        assert "(empty)" in format_accuracy_grid({})

    def test_format_summary(self):
        assert "metric" in format_summary({"x": 1})


class TestSmallTables:
    def test_table1(self):
        text = table1_training_rows(limit=6)
        assert "free" in text and "detect" in text

    def test_table2_matches_paper(self):
        text = table2_activity()
        # the paper's activity values for NAND2: 3, 5, 10, 12
        for value in ("3", "5", "10", "12"):
            assert value in text
        assert "N0" in text and "P1" in text

    def test_table3(self):
        text = table3_defect_columns()
        assert "source-drain short on P1" in text
        assert "net0 & P0-source short" in text

    def test_fig4(self):
        text = fig4_partial_matrix()
        assert "RESP" in text and "stimulus" in text

    def test_fig5_reproduces_paper_equation(self):
        cell = fig5_cell()
        assert cell.n_inputs == 4
        text = fig5_branch_equations()
        # the output inverter branch
        assert "(1n|1p)" in text
        # the paper's NMOS network contributes ((1n|1n)&1n)|1n
        assert "((1n|1n)&1n)" in text

    def test_fig6(self):
        text = fig6_equivalence_demo()
        assert "merged" in text and "split" in text
        lines = [l for l in text.splitlines() if l.startswith(("soi28", "c40"))]
        collapsed = {l.split()[-1] for l in lines}
        assert len(collapsed) == 1  # both collapse to the same form
