"""Additional edge-coverage tests across modules."""

import numpy as np
import pytest

from repro.camodel import expected_count, save_models, load_models
from repro.learning import (
    KNeighborsClassifier,
    LinearSVC,
    RandomForestClassifier,
    confusion_matrix,
)
from repro.library import SOI28, C40, build_cell
from repro.spice import Dialect, GENERIC, format_device, parse_cell, write_cell
from repro.spice.dialects import get as get_dialect


class TestDialects:
    def test_registry_lookup(self):
        assert get_dialect("generic") is GENERIC
        assert get_dialect("c40").device_prefix == "MM"
        with pytest.raises(KeyError):
            get_dialect("tsmc5")

    def test_model_for_and_back(self):
        dialect = get_dialect("soi28")
        assert dialect.model_for("nmos") == "nsvt28"
        assert dialect.ttype_for_model("NSVT28") == "nmos"
        with pytest.raises(KeyError):
            dialect.ttype_for_model("nch")

    def test_lowercase_params_dialect(self):
        cell = build_cell(C40, "INV", 1)
        text = write_cell(cell, C40.dialect)
        assert "w=" in text and "W=" not in text

    def test_format_device_with_index(self):
        cell = build_cell(SOI28, "INV", 1)
        line = format_device(cell.transistors[0], GENERIC, index=7)
        assert line.startswith("M7 ")

    def test_extra_params_emitted(self):
        dialect = Dialect(
            name="xp", models={"nmos": "nmos", "pmos": "pmos"},
            extra_params=("m=1", "nf=2"),
        )
        cell = build_cell(SOI28, "INV", 1)
        line = format_device(cell.transistors[0], dialect)
        assert line.endswith("m=1 nf=2")
        parsed = parse_cell(write_cell(cell, dialect))
        assert parsed.n_transistors == 2


class TestStimuliCounts:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_exhaustive_matches_paper_formula(self, n):
        # 2^n static + 2^n * (2^n - 1) dynamic = 4^n
        static = 2 ** n
        assert expected_count(n, "exhaustive") == static + static * (static - 1)


class TestModelLibraryIO:
    def test_empty_library_roundtrip(self, tmp_path):
        path = save_models([], tmp_path / "empty.json")
        assert load_models(path) == []

    def test_bad_library_format(self, tmp_path):
        (tmp_path / "bad.json").write_text('{"format": 7, "models": []}')
        with pytest.raises(ValueError):
            load_models(tmp_path / "bad.json")


class TestClassifiersEdge:
    def test_forest_handles_class_missing_from_bootstrap(self):
        # 1 positive among many rows: some bootstraps miss it entirely
        X = np.zeros((50, 3), dtype=np.int8)
        X[0] = 3
        y = np.zeros(50, dtype=int)
        y[0] = 1
        forest = RandomForestClassifier(
            n_estimators=10, max_samples=0.2, random_state=0
        ).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (50, 2)
        assert np.isfinite(proba).all()

    def test_knn_chunk_boundaries(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 3, size=(300, 4)).astype(np.int8)
        y = (X[:, 0] == 1).astype(int)
        knn = KNeighborsClassifier(n_neighbors=3, chunk_size=7).fit(X, y)
        pred = knn.predict(X[:50])
        assert pred.shape == (50,)

    def test_svm_multiclass(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 3))
        y = np.argmax(X, axis=1)  # 3 classes
        clf = LinearSVC(n_iterations=1500, random_state=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.8

    def test_multiclass_confusion(self):
        cm = confusion_matrix(np.array([0, 1, 2, 2]), np.array([0, 2, 2, 1]))
        assert cm.shape == (3, 3)
        assert cm.trace() == 2


class TestCAMatrixEdges:
    def test_universe_filter(self, nand2):
        from repro.camatrix import build_matrix
        from repro.defects import enumerate_opens

        universe = enumerate_opens(nand2)
        matrix = build_matrix(
            nand2, params=SOI28.electrical, universe=universe, policy="static"
        )
        assert len(matrix.defects) == len(universe)
        assert matrix.n_rows == (len(universe) + 1) * 4

    def test_rows_of_defect(self, nand2, nand2_model):
        from repro.camatrix import training_matrix

        matrix = training_matrix(nand2, nand2_model, SOI28.electrical)
        rows = matrix.rows_of_defect(0)
        assert len(rows) == nand2_model.n_stimuli
        assert (matrix.row_defect[rows] == 0).all()

    def test_bad_output_rejected(self, nand2):
        from repro.camatrix import build_matrix

        with pytest.raises(ValueError):
            build_matrix(nand2, params=SOI28.electrical, output="Q")


class TestCostModelEdges:
    def test_policy_affects_cost(self, aoi21):
        from repro.flow import CostModel

        cost = CostModel()
        exhaustive = cost.spice_seconds(aoi21, policy="exhaustive")
        adjacent = cost.spice_seconds(aoi21, policy="adjacent")
        assert exhaustive > adjacent

    def test_model_based_cost(self, nand2_model):
        from repro.flow import CostModel

        cost = CostModel(seconds_per_spice_simulation=3.0)
        assert cost.spice_seconds_for_model(nand2_model) == pytest.approx(
            3.0 * nand2_model.simulation_count
        )
