"""Integration tests for the durable run-telemetry store.

Exercises :mod:`repro.obs.store` against real
:func:`~repro.resilience.runner.run_library` runs: shard layout and
naming, the cross-process merged Chrome trace (export → load → re-export
must be byte-identical), failed workers' telemetry, and the
no-duplicate-shards / exact-reconciliation guarantees across a
killed-and-resumed run.
"""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.library import SOI28, build_cell
from repro.obs.store import (
    ObsStore,
    RunTelemetry,
    attempt_shard_name,
    load_chrome_spans,
    write_attempt_shard,
    write_chrome_spans,
)
from repro.resilience import FaultPlan, FaultRule, faults
from repro.resilience.runner import run_library

CELLS = ("NAND2", "NOR2", "AND2")
VICTIM = "S28_NOR2X1"


@pytest.fixture(scope="module")
def library_cells():
    return [build_cell(SOI28, function, 1) for function in CELLS]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    faults.deactivate()


def _run(run_dir, cells, **kwargs):
    kwargs.setdefault("retry_backoff", 0.0)
    kwargs.setdefault("processes", 2)
    return run_library(cells, run_dir=run_dir, **kwargs)


class TestShardLayout:
    def test_run_writes_one_shard_per_attempt_plus_session(
        self, tmp_path, library_cells
    ):
        result = _run(tmp_path, library_cells)
        assert result.complete
        tel = RunTelemetry.load(tmp_path)
        assert len(tel.attempts) == len(CELLS)
        assert {a["outcome"] for a in tel.attempts} == {"ok"}
        assert len(tel.sessions) == 1
        # shard names embed the ledger's content key and attempt index
        for name, record in tel.ledger.cells.items():
            expected = attempt_shard_name(name, str(record["key"]), 0)
            assert (tmp_path / "obs" / expected).exists()

    def test_persist_telemetry_false_writes_nothing(
        self, tmp_path, library_cells
    ):
        result = _run(tmp_path, library_cells, persist_telemetry=False)
        assert result.complete
        assert not (tmp_path / "obs").exists()

    def test_shard_counters_match_ledger_exactly(
        self, tmp_path, library_cells
    ):
        _run(tmp_path, library_cells)
        tel = RunTelemetry.load(tmp_path)
        assert tel.reconcile() == []
        summed = {}
        for counters in tel.counters_by_cell().values():
            for key, value in counters.items():
                summed[key] = summed.get(key, 0.0) + value
        assert summed == tel.ledger.metrics_total()

    def test_corrupt_shard_is_skipped_with_event(
        self, tmp_path, library_cells
    ):
        _run(tmp_path, library_cells)
        good = RunTelemetry.load(tmp_path)
        victim = sorted((tmp_path / "obs").glob("*.a000.json"))[0]
        victim.write_text('{"format": 1, "kind": "attem')
        sink = obs.ListSink()
        with obs.scoped(events=obs.EventLog(sink)):
            tel = RunTelemetry.load(tmp_path)
        assert len(tel.attempts) == len(good.attempts) - 1
        corrupt = sink.named("obs.shard_corrupt")
        assert len(corrupt) == 1
        assert corrupt[0].fields["path"] == str(victim)


class TestMergedChromeTrace:
    def test_pooled_packed_roundtrip_byte_identical(
        self, tmp_path, library_cells
    ):
        run_dir = tmp_path / "run"
        result = _run(
            run_dir, library_cells, parallelism=2, packed=True
        )
        assert result.complete
        tel = RunTelemetry.load(run_dir)
        first = tel.write_chrome(tmp_path / "first.json")
        spans = load_chrome_spans(first)
        assert spans == tel.merged_spans()
        second = write_chrome_spans(
            tmp_path / "second.json", spans, main_pid=tel.main_pid()
        )
        assert first.read_bytes() == second.read_bytes()

    def test_trace_spans_cover_every_process(self, tmp_path, library_cells):
        _run(tmp_path, library_cells)
        tel = RunTelemetry.load(tmp_path)
        spans = tel.merged_spans()
        pids = {span["pid"] for span in spans}
        worker_pids = {int(a["pid"]) for a in tel.attempts}
        assert tel.main_pid() in pids
        assert worker_pids <= pids
        assert len(pids) >= 2  # parent + at least one worker
        # parent session contributes the run-level span
        names = {span["name"] for span in spans}
        assert "resilience.run" in names
        assert "camodel.generate" in names
        # the viewer payload labels the parent track "main"
        payload = tel.chrome()
        labels = {
            e["pid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("ph") == "M"
        }
        assert labels[tel.main_pid()] == "main"

    def test_merged_spans_form_one_tree_per_worker(
        self, tmp_path, library_cells
    ):
        _run(tmp_path, library_cells)
        tel = RunTelemetry.load(tmp_path)
        spans = tel.merged_spans()
        ids = {span["span_id"] for span in spans}
        # every referenced parent either exists in the merge or is a
        # worker root (absorbed re-parenting happens in the live parent
        # tracer; shards keep the worker-local view)
        for span in spans:
            parent = span["parent_id"]
            assert parent is None or parent in ids


class TestFailureTelemetry:
    def test_failed_worker_spans_are_persisted(self, tmp_path, library_cells):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="raise")])
        result = _run(
            tmp_path, library_cells, fault_plan=plan, retries=1
        )
        assert VICTIM in result.quarantined
        tel = RunTelemetry.load(tmp_path)
        failed = [a for a in tel.failed_attempts() if a["cell"] == VICTIM]
        assert [int(a["attempt"]) for a in failed] == [0, 1]
        for shard in failed:
            assert shard["outcome"] == "exception"
            assert "InjectedFault" in shard["error"]
            # the dying attempt's partial trace is part of the record
            assert any(
                s["name"] == "camodel.generate" for s in shard["spans"]
            )
        # failed spans are part of the merged whole-run trace
        merged_ids = {s["span_id"] for s in tel.merged_spans()}
        assert {s["span_id"] for s in failed[0]["spans"]} <= merged_ids

    def test_crashed_worker_gets_parent_side_shard(
        self, tmp_path, library_cells
    ):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="crash", attempts=(0,))])
        result = _run(tmp_path, library_cells, fault_plan=plan, retries=1)
        assert result.complete  # retry succeeded
        tel = RunTelemetry.load(tmp_path)
        by_attempt = {
            int(a["attempt"]): a for a in tel.attempts_for(VICTIM)
        }
        assert set(by_attempt) == {0, 1}
        assert by_attempt[0]["outcome"] == "crash"
        assert by_attempt[1]["outcome"] == "ok"
        # the winning attempt is the retry, not the crash
        assert int(tel.winning_attempts()[VICTIM]["attempt"]) == 1


class TestResume:
    def test_killed_then_resumed_run_has_no_duplicate_shards(
        self, tmp_path, library_cells
    ):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="midwrite-kill")])
        first = _run(tmp_path, library_cells, fault_plan=plan, retries=1)
        assert VICTIM in first.quarantined
        second = _run(tmp_path, library_cells, resume=True, retries=1)
        assert second.complete
        tel = RunTelemetry.load(tmp_path)
        # lifetime attempt indexing across sessions: no name collides
        keys = [(a["cell"], a["attempt"]) for a in tel.attempts]
        assert len(keys) == len(set(keys))
        # victim: 2 failed attempts from session one, 1 ok from session two
        victim = tel.attempts_for(VICTIM)
        assert [int(a["attempt"]) for a in victim] == [0, 1, 2]
        assert [a["outcome"] for a in victim] == ["crash", "crash", "ok"]
        assert len(tel.sessions) == 2
        assert tel.reconcile() == []
        # resumed cells kept their session-one shard; nothing re-ran them
        for name in tel.ledger.cells:
            if name != VICTIM:
                assert len(tel.attempts_for(name)) == 1

    def test_resumed_counters_still_reconcile_exactly(
        self, tmp_path, library_cells
    ):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="crash")])
        _run(tmp_path, library_cells, fault_plan=plan, retries=0)
        _run(tmp_path, library_cells, resume=True, retries=0)
        tel = RunTelemetry.load(tmp_path)
        summed = {}
        for counters in tel.counters_by_cell().values():
            for key, value in counters.items():
                summed[key] = summed.get(key, 0.0) + value
        assert summed == tel.ledger.metrics_total()
        assert tel.reconcile() == []


class TestStorePrimitives:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = ObsStore(tmp_path)
        write_attempt_shard(
            store.attempt_shard_path("CELL", "abcd", 0),
            cell="CELL",
            key="abcd",
            attempt=0,
            outcome="ok",
            pid=123,
            started=0.0,
            seconds=1.0,
            counters={"camodel.sim.solves": 2.0},
            spans=[],
            events=[],
        )
        assert store.has_attempt("CELL", "abcd", 0)
        assert list(store.obs_dir.glob(".*tmp*")) == []
        data = json.loads(store.attempt_shard_path("CELL", "abcd", 0).read_text())
        assert data["kind"] == "attempt" and data["outcome"] == "ok"

    def test_session_paths_number_onward(self, tmp_path):
        store = ObsStore(tmp_path)
        assert store.next_session_path().name == "session-000.json"
        store.write_session(
            pid=1, started=0.0, seconds=0.5, root_span_id=None,
            counters={}, spans=[], events=[],
        )
        assert store.next_session_path().name == "session-001.json"

    def test_shard_writes_count_into_metrics(self, tmp_path):
        store = ObsStore(tmp_path)
        with obs.scoped(metrics=obs.Metrics()) as state:
            write_attempt_shard(
                store.attempt_shard_path("C", "k", 0),
                cell="C", key="k", attempt=0, outcome="ok", pid=1,
                started=0.0, seconds=0.0, counters={}, spans=[], events=[],
            )
            assert state.metrics.get("obs.shards_written") == 1
