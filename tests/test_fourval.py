"""Unit tests for the four-valued algebra."""

import pytest

from repro.logic import (
    V4,
    V4_CODE,
    final_phase,
    initial_phase,
    is_static_word,
    parse_word,
    word_from_phases,
    word_to_string,
)


class TestSymbols:
    def test_static_classification(self):
        assert V4.ZERO.is_static and V4.ONE.is_static
        assert not V4.RISE.is_static and not V4.FALL.is_static
        assert not V4.X.is_static

    def test_dynamic_classification(self):
        assert V4.RISE.is_dynamic and V4.FALL.is_dynamic
        assert not V4.ZERO.is_dynamic and not V4.X.is_dynamic

    def test_known(self):
        assert all(v.is_known for v in (V4.ZERO, V4.ONE, V4.RISE, V4.FALL))
        assert not V4.X.is_known

    def test_phases(self):
        assert (V4.RISE.initial, V4.RISE.final) == (0, 1)
        assert (V4.FALL.initial, V4.FALL.final) == (1, 0)
        assert (V4.ZERO.initial, V4.ZERO.final) == (0, 0)
        assert (V4.X.initial, V4.X.final) == (-1, -1)

    def test_from_phases_roundtrip(self):
        for v in (V4.ZERO, V4.ONE, V4.RISE, V4.FALL):
            assert V4.from_phases(v.initial, v.final) is v

    def test_from_phases_unknown(self):
        assert V4.from_phases(-1, 1) is V4.X
        assert V4.from_phases(0, -1) is V4.X

    def test_inversion(self):
        assert V4.RISE.inverted is V4.FALL
        assert V4.FALL.inverted is V4.RISE
        assert V4.ZERO.inverted is V4.ONE
        assert V4.X.inverted is V4.X

    def test_double_inversion_is_identity(self):
        for v in V4:
            assert v.inverted.inverted is v

    def test_from_string(self):
        assert V4.from_string("r") is V4.RISE
        assert V4.from_string("0") is V4.ZERO
        with pytest.raises(ValueError):
            V4.from_string("q")

    def test_codes_distinct(self):
        assert len(set(V4_CODE.values())) == len(V4_CODE)


class TestWords:
    def test_parse_roundtrip(self):
        word = parse_word("0R1F")
        assert word_to_string(word) == "0R1F"

    def test_static_word(self):
        assert is_static_word(parse_word("0101"))
        assert not is_static_word(parse_word("01R1"))

    def test_phase_projection(self):
        word = parse_word("RF01")
        assert initial_phase(word) == (0, 1, 0, 1)
        assert final_phase(word) == (1, 0, 0, 1)

    def test_word_from_phases(self):
        word = word_from_phases((0, 1, 0), (1, 1, 0))
        assert word_to_string(word) == "R10"

    def test_word_from_phases_length_mismatch(self):
        with pytest.raises(ValueError):
            word_from_phases((0, 1), (1,))
