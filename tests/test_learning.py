"""Unit tests for the from-scratch estimators and metrics."""

import numpy as np
import pytest

from repro.learning import (
    DecisionTreeClassifier,
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    RandomForestClassifier,
    RidgeClassifier,
    accuracy_score,
    classification_report,
    confusion_matrix,
    precision_recall_f1,
)


def _separable(n=600, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 4, size=(n, 10)).astype(np.int8)
    y = ((X[:, 0] >= 2) ^ (X[:, 3] == 1)).astype(int)
    return X, y


def _linear(n=600, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = (X @ np.array([1.0, -2.0, 0.5, 0, 0, 1.0]) > 0.2).astype(int)
    return X, y


class TestDecisionTree:
    def test_fits_exactly_on_consistent_data(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        assert accuracy_score(y, tree.predict(X)) == 1.0

    def test_generalizes(self):
        X, y = _separable(1200)
        tree = DecisionTreeClassifier().fit(X[:800], y[:800])
        assert accuracy_score(y[800:], tree.predict(X[800:])) > 0.95

    def test_max_depth_limits(self):
        X, y = _separable()
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert stump.depth() <= 1

    def test_min_samples_leaf(self):
        X, y = _separable(100)
        tree = DecisionTreeClassifier(min_samples_leaf=40).fit(X, y)
        assert tree.node_count < 7

    def test_predict_proba_rows_sum_to_one(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X[:50])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_single_class(self):
        X = np.zeros((10, 3), dtype=np.int8)
        y = np.ones(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == 1).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 3)), np.zeros(0))

    def test_depth_on_degenerate_chain(self):
        """depth() must survive trees far deeper than the recursion limit.

        ``fit`` cannot grow such a tree in-process (``_grow`` itself
        recurses), so build the node list directly: a left-descending
        chain with one leaf hanging off every internal node, the shape a
        pathological ``max_depth=None`` fit degenerates to.
        """
        import sys

        from repro.learning.tree import _Node

        chain = sys.getrecursionlimit() * 3
        tree = DecisionTreeClassifier()
        counts = np.array([1.0, 1.0])
        nodes = []
        for level in range(chain):
            # internal node at 2*level: right leaf at 2*level+1, left
            # child at 2*level+2 (the next internal node, or the final
            # leaf after the loop).
            nodes.append(
                _Node(
                    feature=0,
                    threshold=0.5,
                    left=2 * level + 2,
                    right=2 * level + 1,
                    counts=counts,
                )
            )
            nodes.append(_Node(counts=counts))
        nodes.append(_Node(counts=counts))  # final left leaf
        tree._nodes = nodes
        assert tree.depth() == chain

    def test_depth_matches_fitted_shape(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        depth = tree.depth()
        assert 1 <= depth <= 4
        # Node count bounds the depth from below for a binary tree.
        assert tree.node_count >= 2 * depth + 1

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 3)), np.zeros(4))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 3)))

    def test_multiclass(self):
        rng = np.random.default_rng(2)
        X = rng.integers(0, 3, size=(300, 4))
        y = X[:, 0]
        tree = DecisionTreeClassifier().fit(X, y)
        assert accuracy_score(y, tree.predict(X)) == 1.0


class TestRandomForest:
    def test_beats_noise(self):
        rng = np.random.default_rng(3)
        X, y = _separable(2000, seed=3)
        flip = rng.random(len(y)) < 0.05
        noisy = np.where(flip, 1 - y, y)
        forest = RandomForestClassifier(
            n_estimators=10, max_features=0.6, random_state=0
        ).fit(X[:1500], noisy[:1500])
        assert accuracy_score(y[1500:], forest.predict(X[1500:])) > 0.93

    def test_deterministic_given_seed(self):
        X, y = _separable()
        a = RandomForestClassifier(n_estimators=5, random_state=42).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=42).fit(X, y)
        assert (a.predict(X) == b.predict(X)).all()

    def test_score(self):
        X, y = _separable()
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert forest.score(X, y) > 0.98

    def test_max_samples(self):
        X, y = _separable()
        forest = RandomForestClassifier(
            n_estimators=3, max_samples=0.1, random_state=0
        ).fit(X, y)
        assert forest.predict(X[:5]).shape == (5,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))

    def test_loop_path_matches_packed_default(self):
        X, y = _separable()
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert np.array_equal(
            forest.predict_proba(X[:100]),
            forest.predict_proba(X[:100], packed=False),
        )

    def test_engine_knob_forwarded_to_trees(self):
        X, y = _separable(200)
        forest = RandomForestClassifier(
            n_estimators=2, random_state=0, engine="recursive"
        ).fit(X, y)
        assert all(t.engine == "recursive" for t in forest.estimators_)

    def test_dispersion_shape(self):
        X, y = _separable(200)
        forest = RandomForestClassifier(n_estimators=4, random_state=0).fit(X, y)
        labels, dispersion = forest.predict_with_dispersion(X[:17])
        assert labels.shape == dispersion.shape == (17,)


class TestKindRowMask:
    def _matrix(self, seed=0, n_defects=9):
        """A minimal stand-in exposing the fields kind_row_mask reads."""
        from types import SimpleNamespace

        from repro.camatrix.matrix import FREE_ROW

        rng = np.random.default_rng(seed)
        defects = [
            SimpleNamespace(kind=rng.choice(["open", "short"]))
            for _ in range(n_defects)
        ]
        row_defect = rng.integers(-1, n_defects, size=40)
        row_defect[row_defect == -1] = FREE_ROW
        return SimpleNamespace(
            n_rows=40, defects=defects, row_defect=row_defect
        )

    @pytest.mark.parametrize("kinds", [None, {"open"}, {"short"}, set()])
    def test_matches_scalar_reference(self, kinds):
        from repro.camatrix.matrix import FREE_ROW
        from repro.learning import kind_row_mask

        matrix = self._matrix()
        mask = kind_row_mask(matrix, kinds)
        for row in range(matrix.n_rows):
            d = matrix.row_defect[row]
            if kinds is None or d == FREE_ROW:
                assert mask[row]
            else:
                assert mask[row] == (matrix.defects[d].kind in kinds)

    def test_no_defects(self):
        from repro.learning import kind_row_mask

        matrix = self._matrix(n_defects=0)
        matrix.row_defect[:] = -1
        assert kind_row_mask(matrix, {"open"}).all()


class TestKNN:
    def test_memorizes_training_data(self):
        X, y = _separable(200)
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert accuracy_score(y, knn.predict(X)) == 1.0

    def test_euclidean_metric(self):
        X, y = _linear(300)
        knn = KNeighborsClassifier(n_neighbors=5, metric="euclidean").fit(
            X[:200], y[:200]
        )
        assert accuracy_score(y[200:], knn.predict(X[200:])) > 0.8

    def test_bad_metric(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(metric="cosine")

    def test_k_clamped_to_train_size(self):
        X, y = _separable(3)
        knn = KNeighborsClassifier(n_neighbors=10).fit(X, y)
        assert knn.predict(X).shape == (3,)


class TestLinearModels:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RidgeClassifier(alpha=0.1),
            lambda: LogisticRegression(n_iterations=400),
            lambda: LinearSVC(random_state=0),
        ],
        ids=["ridge", "logreg", "svm"],
    )
    def test_solves_linear_problem(self, factory):
        X, y = _linear(800)
        clf = factory().fit(X[:600], y[:600])
        assert accuracy_score(y[600:], clf.predict(X[600:])) > 0.9

    def test_logreg_proba(self):
        X, y = _linear(200)
        clf = LogisticRegression().fit(X, y)
        proba = clf.predict_proba(X[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        for clf in (RidgeClassifier(), LogisticRegression(), LinearSVC()):
            with pytest.raises(RuntimeError):
                clf.decision_function(np.zeros((1, 2)))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([1]), np.array([1, 0]))

    def test_accuracy_empty(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))

    def test_confusion(self):
        cm = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]))
        assert cm.tolist() == [[1, 1], [0, 2]]

    def test_precision_recall_f1(self):
        p, r, f1 = precision_recall_f1(np.array([1, 1, 0, 0]), np.array([1, 0, 1, 0]))
        assert p == 0.5 and r == 0.5 and f1 == 0.5

    def test_degenerate_no_positives(self):
        p, r, f1 = precision_recall_f1(np.array([0, 0]), np.array([0, 0]))
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_report_keys(self):
        report = classification_report(np.array([1, 0]), np.array([1, 0]))
        assert set(report) == {"accuracy", "precision", "recall", "f1"}
        assert report["accuracy"] == 1.0
