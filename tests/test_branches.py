"""Unit tests for branch extraction, equations and descriptors."""

import pytest

from repro.camatrix import (
    EqLeaf,
    EqParallel,
    EqSeries,
    extract_branches,
    path_expression,
    sp_reduce,
)
from repro.camatrix.branches import leaf_descriptors, min_conduction_path
from repro.camatrix.activity import activity_values
from repro.experiments import fig5_cell
from repro.library import SOI28, build_cell
from repro.spice import Transistor


def _t(name, ttype, d, g, s):
    return Transistor(name, ttype, d, g, s, "VSS" if ttype == "nmos" else "VDD")


class TestSPReduce:
    def test_single_device(self):
        devices = [_t("M0", "nmos", "Z", "A", "VSS")]
        eq = sp_reduce(devices, "Z", "VSS")
        assert eq is not None and eq.anon() == "1n"

    def test_series(self):
        devices = [
            _t("M0", "nmos", "Z", "A", "n1"),
            _t("M1", "nmos", "n1", "B", "VSS"),
        ]
        eq = sp_reduce(devices, "Z", "VSS")
        assert eq.anon() == "(1n&1n)"

    def test_parallel(self):
        devices = [
            _t("M0", "nmos", "Z", "A", "VSS"),
            _t("M1", "nmos", "Z", "B", "VSS"),
        ]
        eq = sp_reduce(devices, "Z", "VSS")
        assert eq.anon() == "(1n|1n)"

    def test_fig5_nmos_network(self):
        # ((N0 & (N1|N2)) | N3), the paper's example
        devices = [
            _t("N0", "nmos", "Y", "A", "n1"),
            _t("N1", "nmos", "n1", "B", "VSS"),
            _t("N2", "nmos", "n1", "C", "VSS"),
            _t("N3", "nmos", "Y", "D", "VSS"),
        ]
        eq = sp_reduce(devices, "Y", "VSS")
        assert eq.anon() == "(((1n|1n)&1n)|1n)"

    def test_non_sp_returns_none(self):
        # wheatstone-bridge topology is not series-parallel
        devices = [
            _t("M0", "nmos", "Z", "A", "n1"),
            _t("M1", "nmos", "Z", "B", "n2"),
            _t("M2", "nmos", "n1", "C", "n2"),
            _t("M3", "nmos", "n1", "D", "VSS"),
            _t("M4", "nmos", "n2", "E", "VSS"),
        ]
        assert sp_reduce(devices, "Z", "VSS") is None

    def test_path_expression_fallback(self):
        devices = [
            _t("M0", "nmos", "Z", "A", "n1"),
            _t("M1", "nmos", "Z", "B", "n2"),
            _t("M2", "nmos", "n1", "C", "n2"),
            _t("M3", "nmos", "n1", "D", "VSS"),
            _t("M4", "nmos", "n2", "E", "VSS"),
        ]
        eq = path_expression(devices, "Z", "VSS")
        assert eq is not None
        # 4 simple paths through the bridge
        assert eq.anon().count("&") >= 3

    def test_path_expression_unreachable(self):
        devices = [_t("M0", "nmos", "Z", "A", "n1")]
        assert path_expression(devices, "Z", "VSS") is None


class TestEquationNodes:
    def test_anon_sorts_operands(self):
        a = EqLeaf(_t("M0", "nmos", "Z", "A", "VSS"))
        b = EqLeaf(_t("M1", "pmos", "Z", "A", "VDD"))
        assert EqParallel(a, b).anon() == EqParallel(b, a).anon()

    def test_canonical_ties_broken_by_activity(self):
        a = EqLeaf(_t("M0", "nmos", "Z", "A", "VSS"))
        b = EqLeaf(_t("M1", "nmos", "Z", "B", "VSS"))
        activity = {"M0": 5, "M1": 3}
        ordered = EqParallel(a, b).canonical(activity)
        assert [t.name for t in ordered.devices()] == ["M1", "M0"]

    def test_flattening(self):
        a, b, c = (
            EqLeaf(_t(f"M{i}", "nmos", "Z", "A", "VSS")) for i in range(3)
        )
        nested = EqParallel(EqParallel(a, b), c)
        assert len(nested.children) == 3

    def test_named_rendering(self):
        a = EqLeaf(_t("M0", "nmos", "Z", "A", "n1"))
        b = EqLeaf(_t("M1", "nmos", "n1", "B", "VSS"))
        eq = EqSeries(a, b)
        assert eq.named({"M0": "N0", "M1": "N1"}) == "(N0&N1)"


class TestExtractBranches:
    def test_nand2_single_branch(self, nand2):
        activity = activity_values(nand2, params=SOI28.electrical)
        branches = extract_branches(nand2, activity)
        assert len(branches) == 1
        assert branches[0].exit_net == "Z"
        assert branches[0].level == 1
        assert branches[0].anon == "((1n&1n)|1p|1p)"

    def test_and2_two_branches_levels(self, and2):
        activity = activity_values(and2, params=SOI28.electrical)
        branches = extract_branches(and2, activity)
        assert len(branches) == 2
        assert branches[0].level == 1 and branches[0].anon == "(1n|1p)"
        assert branches[1].level == 2

    def test_sorting_by_level_then_size(self):
        cell = fig5_cell()
        activity = activity_values(cell)
        branches = extract_branches(cell, activity)
        keys = [(b.level, b.n_devices, b.anon) for b in branches]
        assert keys == sorted(keys)
        assert branches[0].anon == "(1n|1p)"  # the output inverter

    def test_indices_assigned(self, aoi21):
        activity = activity_values(aoi21, params=SOI28.electrical)
        branches = extract_branches(aoi21, activity)
        assert [b.index for b in branches] == list(range(len(branches)))


class TestDescriptors:
    def test_min_conduction_path(self):
        a = EqLeaf(_t("M0", "nmos", "Z", "A", "n1"))
        b = EqLeaf(_t("M1", "nmos", "n1", "B", "VSS"))
        c = EqLeaf(_t("M2", "nmos", "Z", "C", "VSS"))
        assert min_conduction_path(EqSeries(a, b)) == 2
        assert min_conduction_path(EqParallel(EqSeries(a, b), c)) == 1

    def test_nand2_vs_nor2_distinct(self, nand2, nor2):
        from repro.camatrix import rename_transistors

        rn = rename_transistors(nand2, SOI28.electrical)
        rr = rename_transistors(nor2, SOI28.electrical)
        assert rn.structure["N0"] != rr.structure["N0"]

    def test_merged_split_identical(self):
        from repro.camatrix import rename_transistors
        from repro.library import C40

        merged = rename_transistors(build_cell(SOI28, "NAND2", 2), SOI28.electrical)
        split = rename_transistors(build_cell(C40, "NAND2", 2), C40.electrical)
        assert merged.structure == split.structure
