"""Unit tests for the netlist object model."""

import pytest

from repro.spice import CellNetlist, NetlistError, Transistor, bulk_rail


def _inv(name="INV"):
    return CellNetlist(
        name=name,
        inputs=["A"],
        outputs=["Z"],
        transistors=[
            Transistor("M0", "nmos", "Z", "A", "VSS", "VSS"),
            Transistor("M1", "pmos", "Z", "A", "VDD", "VDD"),
        ],
    )


class TestTransistor:
    def test_terminal_access(self):
        t = Transistor("M0", "nmos", "d", "g", "s", "b")
        assert t.terminal("D") == "d"
        assert t.terminal("G") == "g"
        assert t.terminal("S") == "s"
        assert t.terminal("B") == "b"

    def test_bad_terminal(self):
        t = Transistor("M0", "nmos", "d", "g", "s", "b")
        with pytest.raises(NetlistError):
            t.terminal("Q")

    def test_bad_type(self):
        with pytest.raises(NetlistError):
            Transistor("M0", "npn", "d", "g", "s", "b")

    def test_bad_geometry(self):
        with pytest.raises(NetlistError):
            Transistor("M0", "nmos", "d", "g", "s", "b", w=0.0)

    def test_renamed(self):
        t = Transistor("M0", "nmos", "d", "g", "s", "b")
        t2 = t.renamed("N0")
        assert t2.name == "N0" and t2.drain == "d" and t.name == "M0"

    def test_channel_nets(self):
        t = Transistor("M0", "pmos", "Z", "A", "VDD", "VDD")
        assert t.channel_nets() == ("Z", "VDD")

    def test_polarity_flags(self):
        assert Transistor("M0", "nmos", "d", "g", "s", "b").is_nmos
        assert Transistor("M1", "pmos", "d", "g", "s", "b").is_pmos


class TestCellNetlist:
    def test_nets_and_internal(self):
        cell = _inv()
        assert cell.nets() == {"A", "Z", "VDD", "VSS"}
        assert cell.internal_nets() == set()

    def test_group_key(self):
        cell = _inv()
        assert cell.group_key == (1, 2)

    def test_lookup(self):
        cell = _inv()
        assert cell.transistor("M0").is_nmos
        with pytest.raises(NetlistError):
            cell.transistor("MX")

    def test_duplicate_names_rejected(self):
        with pytest.raises(NetlistError):
            CellNetlist(
                name="BAD",
                inputs=["A"],
                outputs=["Z"],
                transistors=[
                    Transistor("M0", "nmos", "Z", "A", "VSS", "VSS"),
                    Transistor("M0", "pmos", "Z", "A", "VDD", "VDD"),
                ],
            )

    def test_no_output_rejected(self):
        with pytest.raises(NetlistError):
            CellNetlist(name="BAD", inputs=["A"], outputs=[])

    def test_port_overlap_rejected(self):
        with pytest.raises(NetlistError):
            CellNetlist(name="BAD", inputs=["Z"], outputs=["Z"])

    def test_rail_collision_rejected(self):
        with pytest.raises(NetlistError):
            CellNetlist(
                name="BAD", inputs=["A"], outputs=["Z"], power="VDD", ground="VDD"
            )

    def test_renamed_nets(self):
        cell = _inv().renamed_nets({"A": "IN", "Z": "OUT"})
        assert cell.inputs == ["IN"] and cell.outputs == ["OUT"]
        assert cell.transistor("M0").gate == "IN"

    def test_with_transistors(self):
        cell = _inv()
        smaller = cell.with_transistors(cell.transistors[:1])
        assert smaller.n_transistors == 1
        assert cell.n_transistors == 2

    def test_gate_loads_and_channel_neighbors(self):
        cell = _inv()
        assert len(cell.gate_loads("A")) == 2
        assert len(cell.channel_neighbors("Z")) == 2

    def test_check_connected_flags_dangling_input(self):
        cell = CellNetlist(
            name="DANGLE",
            inputs=["A", "B"],
            outputs=["Z"],
            transistors=[
                Transistor("M0", "nmos", "Z", "A", "VSS", "VSS"),
                Transistor("M1", "pmos", "Z", "A", "VDD", "VDD"),
            ],
        )
        warnings = cell.check_connected()
        assert any("B" in w for w in warnings)

    def test_bulk_rail(self):
        assert bulk_rail("nmos") == "VSS"
        assert bulk_rail("pmos") == "VDD"
