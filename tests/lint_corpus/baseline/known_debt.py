"""Baseline fixture: one known finding, adopted via --write-baseline."""


def legacy_report(cell_name):
    print(f"legacy output for {cell_name}")
    return cell_name
