"""RPL003 fixture: module-global RNG and unseeded generators."""

import random

import numpy as np


def sample_cells(cells):
    random.shuffle(cells)
    rng = np.random.default_rng()
    return rng.choice(cells)


def jitter():
    return np.random.uniform(0.0, 1.0)
