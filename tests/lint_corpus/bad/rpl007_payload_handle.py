"""RPL007 fixture: an open handle riding a worker payload."""

from dataclasses import dataclass
from typing import TextIO


@dataclass
class CellWorkPayload:
    name: str
    log_handle: TextIO
