"""Regression fixture: directives inside string literals do not count.

Both violating lines below *contain* the suppression-directive text —
but only inside a string, not in a comment.  The tokenize-based scan
must still flag them; a regex scan over raw line text used to treat
them as suppressed.
"""

DOC = """
To silence a finding, append  # reprolint: disable=RPL001  to the line.
"""


def helper():
    print("silence me with '# reprolint: disable=RPL001' if you dare")
    return "# reprolint: disable=all", print("still flagged")
