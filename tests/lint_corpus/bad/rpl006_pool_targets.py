"""RPL006 fixture: unpicklable pool entry points."""

import multiprocessing


def run_all(items):
    def worker(item):
        return item * 2

    with multiprocessing.Pool() as pool:
        doubled = pool.map(worker, items)
        bumped = pool.map(lambda x: x + 1, items)
    return doubled + bumped


class Runner:
    def step(self, item):
        return item

    def go(self, pool, items):
        return pool.map(self.step, items)
