"""RPL008 fixture: broad handlers that swallow the failure."""


def load(path):
    try:
        return path.read_text()
    except Exception:
        return None


def tick(callback):
    try:
        callback()
    except:  # noqa: E722 - the bare-except shape is the fixture
        pass
