"""RPL001 fixture: bare print() in library code."""


def report(cell_name):
    print(f"done with {cell_name}")
    return cell_name
