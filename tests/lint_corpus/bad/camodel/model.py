"""RPL004 fixture: wall-clock reads in a canonical-artifact module.

The file name mirrors ``camodel/model.py`` so the default
``wallclock_paths`` scope applies.  There is no site allowlist any
more: every read in a scoped module is flagged (reviewed timing sites
live outside the scope and are policed by the whole-program RPL101).
"""

import time


def stamp_artifact(record):
    record["written_at"] = time.time()
    return record
