"""RPL005 fixture: direct writes under a run-dir/artifact path."""

import json


def checkpoint(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)


def note(path, text):
    path.write_text(text)
