"""RPL004 fixture: wall-clock reads in a canonical-artifact module.

The file name mirrors ``resilience/ledger.py`` so the default
``wallclock_paths`` scope applies.  ``RunLedger.open`` is the
allowlisted site — its read must NOT be flagged; the artifact-level
stamp must.
"""

import time


class RunLedger:
    def open(self):
        # allowlisted timing site (config: wallclock_allowed)
        self.created = time.time()
        return self


def stamp_artifact(record):
    record["written_at"] = time.time()
    return record
