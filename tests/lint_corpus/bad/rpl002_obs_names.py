"""RPL002 fixture: typo'd metric and event names.

One typo inside a registered namespace (caught against the catalog,
with a did-you-mean hint) and one typo *in the namespace itself*.
"""

from repro import obs

M_SOLVES_TYPO = "camodel.sim.sovles"


def account(registry):
    registry.inc(M_SOLVES_TYPO)
    obs.metrics().inc("camodel.sim.cache_hist")
    obs.events().info("resilence.retry", cell="NAND2")
