"""RPL103 fixtures: worker payloads must be picklable all the way down.

``CellPayload.config`` (bad) reaches a ``TextIO`` two annotation hops
deep — invisible to per-file RPL007, which only checks the payload's
own annotation surface.  ``CleanPayload`` (good twin) nests a
handle-free dataclass and must stay clean.
"""

from dataclasses import dataclass
from typing import TextIO


@dataclass
class InnerConfig:
    log: TextIO


@dataclass
class CleanConfig:
    seed: int
    tag: str


@dataclass
class CellPayload:
    name: str
    config: InnerConfig


@dataclass
class CleanWorkItem:
    name: str
    config: CleanConfig
