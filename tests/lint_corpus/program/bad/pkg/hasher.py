"""RPL101 fixtures: nondeterminism taint reaching a content hash.

``content_key`` is the bad path (wall-clock via two call hops);
``entropy_key`` taints through OS entropy.  The two good twins must
stay clean: ``safe_key`` never touches a nondeterministic source, and
``canonical_key`` routes the tainted dict through the registered
sanitizer before hashing.
"""

import hashlib
import json
import os

from pkg.timeutil import indirect


def canonical_model_dict(data):
    clean = dict(data)
    clean.pop("at", None)
    return clean


def content_key(cell_text):
    data = {"cell": cell_text, "at": indirect()}
    blob = json.dumps(data)
    return hashlib.sha256(blob.encode()).hexdigest()


def entropy_key(cell_text):
    salt = os.urandom(8)
    return hashlib.sha256(salt + cell_text.encode()).hexdigest()


def safe_key(cell_text):
    blob = json.dumps({"cell": cell_text})
    return hashlib.sha256(blob.encode()).hexdigest()


def canonical_key(cell_text):
    data = {"cell": cell_text, "at": indirect()}
    blob = json.dumps(canonical_model_dict(data))
    return hashlib.sha256(blob.encode()).hexdigest()
