"""RPL101 source: a wall-clock read laundered through a helper.

Per-file RPL004 never sees this module (it is not in wallclock_paths);
only reachability analysis can connect ``indirect()`` to the hash sink
in ``pkg.hasher``.
"""

import time


def stamp():
    return time.time()


def indirect():
    return stamp()
