"""RPL106 liveness evidence: names emitted through module constants.

``svc.used`` / ``svc.event`` are referenced here, keeping them alive in
``pkg.lint.catalog``; ``svc.dead`` has no emitter anywhere and must be
flagged.  (The ``svc.`` namespace is unregistered on purpose — the
per-file RPL002 findings below pin the merged two-layer report.)
"""

M_USED = "svc.used"
E_EVT = "svc.event"


def go(obs):
    obs.metrics().inc(M_USED)
    obs.events().emit(E_EVT)
