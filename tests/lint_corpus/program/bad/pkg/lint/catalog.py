"""RPL106 fixture: a catalog with one dead registration.

``svc.dead`` is registered but never emitted by any module in the
analyzed tree; the finding anchors on its own entry line.
"""

METRIC_NAMES = frozenset(
    {
        "svc.used",
        "svc.dead",
    }
)

EVENT_NAMES = frozenset(
    {
        "svc.event",
    }
)
