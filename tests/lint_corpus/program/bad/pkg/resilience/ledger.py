"""The run ledger: the single-writer party of the lease protocol.

``ledger_writer_paths`` covers ``*/resilience/*``, so the mutations
here are legal; RPL104 cares about mutation *outside* these paths
(see ``pkg.service.rogue_ledger``).
"""


class RunLedger:
    @classmethod
    def load(cls, path) -> "RunLedger":
        return cls()

    def mark_done(self, cell):
        pass

    def cell_state(self, cell):
        return "done"
