"""RPL102 fixture: a scoped module reaching an unscoped raw write.

``checkpoint`` (bad) funnels run-dir data into ``pkg.writer.spill``,
which writes without the temp-file + os.replace discipline.
``summarize`` (good twin) calls into the same unscoped module but the
callee never writes, so it must stay clean.
"""

from pkg.writer import spill, tidy


def checkpoint(path, data):
    spill(path, data)


def summarize(path, data):
    return tidy(path, data)
