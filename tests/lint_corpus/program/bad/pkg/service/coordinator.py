"""RPL104 good twin: the coordinator *is* allowed to mutate the ledger.

``*/service/coordinator.py`` is in ``ledger_writer_paths``, so this
module must stay clean under the same analysis that flags
``pkg.service.rogue_ledger``.
"""

from pkg.resilience.ledger import RunLedger


def settle(path, cell):
    ledger = RunLedger.load(path)
    ledger.mark_done(cell)
