"""RPL104(a) fixture: ledger mutation outside the coordinator.

Workers must treat the ledger as read-only; ``report`` (bad) calls a
mutator from a module not in ``ledger_writer_paths``.  ``peek`` (good
twin) only reads and must stay clean.
"""

from pkg.resilience.ledger import RunLedger


def report(path, cell):
    ledger = RunLedger.load(path)
    ledger.mark_done(cell)


def peek(path, cell):
    ledger = RunLedger.load(path)
    return ledger.cell_state(cell)
