"""Artifact-path derivation used by the RPL104 direct-write fixture."""


def artifact_path(run_dir, cell):
    return run_dir / cell
