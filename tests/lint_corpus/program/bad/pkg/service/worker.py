"""RPL104(b)/(c) fixtures: the commit rendezvous discipline.

* ``rogue_write`` (bad, c): writes an artifact-path-derived target
  directly instead of going through ``commit_artifact``.
* ``rogue_commit`` (bad, b): commits with no lease claim in scope.
* ``good_commit`` (good twin): same commit with the lease threaded
  through — must stay clean.
"""

from pkg.service.paths import artifact_path


def commit_artifact(run_dir, artifact, data):
    return True


def rogue_write(run_dir, cell, data):
    artifact = artifact_path(run_dir, cell)
    artifact.write_text(data)


def rogue_commit(run_dir, cell, data):
    artifact = artifact_path(run_dir, cell)
    commit_artifact(run_dir, artifact, data)


def good_commit(run_dir, cell, data, lease):
    artifact = artifact_path(run_dir, cell)
    commit_artifact(run_dir, artifact, data)
