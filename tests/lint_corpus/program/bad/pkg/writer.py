"""RPL102 terminal site: a raw (non-atomic) write helper.

This module is *outside* every atomic_paths scope, so per-file RPL005
never flags it.  The violation is the call edge from the scoped
``pkg.resilience.store`` into ``spill`` — only visible to the
whole-program pack.
"""


def spill(path, data):
    with open(path, "w") as fh:
        fh.write(data)


def tidy(path, data):
    text = data.strip()
    return len(text)
