"""RPL105 fixtures: broad handlers that swallow telemetry-drop paths.

``risky`` (bad) wraps a call chain that ends in a shard writer and
discards the failure with no event — dropped telemetry leaves no
evidence.  ``careful`` (good twin) guards the same chain but emits
through the events log before continuing, so it must stay clean.
"""


def write_attempt_shard(path, data):
    pass


def persist(path, data):
    write_attempt_shard(path, data)


def risky(path, data):
    try:
        persist(path, data)
    except Exception:
        pass


def careful(path, data, events):
    try:
        persist(path, data)
    except Exception as exc:
        events.warning("obs.shard_corrupt", error=str(exc))
