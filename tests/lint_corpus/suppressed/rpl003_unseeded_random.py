"""RPL003 suppression fixture."""

import random


def sample_cells(cells):
    random.shuffle(cells)  # reprolint: disable=RPL003
    return cells
