"""RPL007 suppression fixture."""

from dataclasses import dataclass
from typing import TextIO


@dataclass
class CellWorkPayload:
    name: str
    log_handle: TextIO  # reprolint: disable=RPL007
