"""RPL006 suppression fixture."""

import multiprocessing


def run_all(items):
    def worker(item):
        return item * 2

    with multiprocessing.Pool() as pool:
        return pool.map(worker, items)  # reprolint: disable=RPL006
