"""RPL008 suppression fixture: disable=all also works."""


def load(path):
    try:
        return path.read_text()
    except Exception:  # reprolint: disable=all
        return None
