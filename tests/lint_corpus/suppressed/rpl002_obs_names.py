"""RPL002 suppression fixture: disable-next-line form."""

from repro import obs


def account():
    # reprolint: disable-next-line=RPL002
    obs.metrics().inc("camodel.sim.cache_hist")
