"""RPL004 suppression fixture (scoped path, inline disable)."""

import time


def stamp_artifact(record):
    record["written_at"] = time.time()  # reprolint: disable=RPL004
    return record
