"""RPL005 suppression fixture: file-level disable."""

# reprolint: disable-file=RPL005

import json


def checkpoint(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)


def note(path, text):
    path.write_text(text)
