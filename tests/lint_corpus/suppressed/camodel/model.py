"""Suppressed twin of ``bad/camodel/model.py``."""

import time


def stamp_artifact(record):
    record["written_at"] = time.time()  # reprolint: disable=RPL004
    return record
