"""RPL001 suppression fixture: same violation, inline disable."""


def report(cell_name):
    print(f"done with {cell_name}")  # reprolint: disable=RPL001
    return cell_name
