"""Tests for multi-output cells (half/full adders) and per-output CA."""

import numpy as np
import pytest

from repro.camodel import generate_ca_model, generate_multi
from repro.library import SOI28, build_cell
from repro.library.catalog import CATALOG
from repro.simulation import golden_simulator, logic_check
from repro.logic import parse_word


@pytest.fixture(scope="module")
def ha1():
    return build_cell(SOI28, "HA1", 1)


class TestAdderCells:
    @pytest.mark.parametrize("name", ["HA1", "FA1"])
    def test_all_outputs_implement_formulas(self, name):
        cell = build_cell(SOI28, name, 1)
        for port, expr in CATALOG[name].exprs(cell.inputs).items():
            assert not logic_check(cell, expr, SOI28.electrical, output=port)

    def test_ha1_ports(self, ha1):
        assert ha1.outputs == ["Z", "CO"]
        assert ha1.n_inputs == 2

    def test_output_response_per_port(self, ha1):
        sim = golden_simulator(ha1, SOI28.electrical)
        word = parse_word("11")
        assert str(sim.output_response(word, output="Z")) == "0"   # 1^1
        assert str(sim.output_response(word, output="CO")) == "1"  # 1&1

    def test_transitions_per_port(self, ha1):
        sim = golden_simulator(ha1, SOI28.electrical)
        word = parse_word("R1")
        assert str(sim.output_response(word, output="Z")) == "F"
        assert str(sim.output_response(word, output="CO")) == "R"

    def test_widened_adder_still_correct(self):
        cell = build_cell(SOI28, "HA1", 2)
        for port, expr in CATALOG["HA1"].exprs(cell.inputs).items():
            assert not logic_check(cell, expr, SOI28.electrical, output=port)


class TestPerOutputGeneration:
    def test_generate_multi_covers_all_outputs(self, ha1):
        models = generate_multi(ha1, SOI28.electrical)
        assert set(models) == {"Z", "CO"}
        for port, model in models.items():
            assert model.output == port
            assert model.n_defects == 10 * ha1.n_transistors

    def test_outputs_observe_different_defects(self, ha1):
        models = generate_multi(ha1, SOI28.electrical)
        assert not (models["Z"].detection == models["CO"].detection).all()
        union = models["Z"].detection | models["CO"].detection
        covered_union = float(union.any(axis=1).mean())
        assert covered_union > models["Z"].coverage()
        assert covered_union > models["CO"].coverage()

    def test_single_sweep_matches_per_port_runs(self, ha1):
        """One golden pass + one defect loop must serve every port.

        The per-port tables have to match dedicated single-output runs,
        and the shared sweep must not pay the O(outputs) simulation
        cost: both returned models describe the *same* run, so their
        solve counts are equal to each other and well below the summed
        per-port cost.
        """
        models = generate_multi(ha1, SOI28.electrical, keep_responses=True)
        per_port = {
            port: generate_ca_model(
                ha1, SOI28.electrical, output=port, keep_responses=True
            )
            for port in ("Z", "CO")
        }
        for port, model in models.items():
            assert model.golden == per_port[port].golden
            assert (model.detection == per_port[port].detection).all()
            assert model.responses == per_port[port].responses
        solves = {m.stats.solves for m in models.values()}
        assert len(solves) == 1  # one shared sweep, not one per output
        total_dedicated = sum(m.stats.solves for m in per_port.values())
        assert models["Z"].stats.solves < total_dedicated

    def test_bad_output_rejected(self, ha1):
        with pytest.raises(ValueError):
            generate_ca_model(ha1, params=SOI28.electrical, output="Q")

    def test_matrix_per_output(self, ha1):
        from repro.camatrix import training_matrix

        models = generate_multi(ha1, SOI28.electrical, policy="static")
        for port, model in models.items():
            matrix = training_matrix(ha1, model, SOI28.electrical)
            assert matrix.labels is not None
            rebuilt = matrix.to_model()
            assert (rebuilt.detection == model.detection).all()
