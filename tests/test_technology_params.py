"""Tests for electrical parameters and technology-dependent behaviour."""

import dataclasses

import pytest

from repro.camodel import generate_ca_model
from repro.library import C28, C40, SOI28
from repro.library.technology import ElectricalParams
from repro.library import build_cell
from repro.simulation import SwitchGraph


class TestElectricalParams:
    def test_defaults_consistent(self):
        params = ElectricalParams()
        assert params.vil < params.vih
        assert params.short_resistance > 0

    def test_ron_scales_with_width(self):
        cell_narrow = build_cell(C28, "INV", 1)
        cell_wide = build_cell(C40, "INV", 1)
        g_narrow = SwitchGraph(cell_narrow, C28.electrical).devices[0].g_on
        g_wide = SwitchGraph(cell_wide, C40.electrical).devices[0].g_on
        # C40 devices are wider -> more conductive
        assert g_wide > g_narrow

    def test_technologies_have_distinct_sizing(self):
        widths = {
            tech.name: (tech.wn, tech.wp, tech.length)
            for tech in (SOI28, C40, C28)
        }
        assert len(set(widths.values())) == 3
        # C40 is the older node: longest channel, widest devices
        assert C40.length > SOI28.length
        assert C40.wn > SOI28.wn


class TestTechnologyDependentDetection:
    def test_labels_mostly_agree_across_technologies(self):
        """Sizing perturbs only marginal short detections (the paper's
        test-condition observation)."""
        import numpy as np

        from repro.camatrix import training_matrix

        results = {}
        for tech in (SOI28, C40):
            cell = build_cell(tech, "NAND2", 1)
            model = generate_ca_model(cell, params=tech.electrical)
            matrix = training_matrix(cell, model, tech.electrical)
            rows = {}
            for features, label in zip(
                map(tuple, matrix.features.tolist()), matrix.labels
            ):
                rows.setdefault(features, []).append(int(label))
            results[tech.name] = rows
        agree = total = 0
        for features, labels in results["soi28"].items():
            other = results["c40"].get(features, [])
            for a, b in zip(sorted(labels), sorted(other)):
                agree += a == b
                total += 1
        assert total > 0
        assert agree / total > 0.9

    def test_same_cell_same_params_identical_models(self):
        cell = build_cell(SOI28, "AOI21", 1)
        a = generate_ca_model(cell, params=SOI28.electrical)
        b = generate_ca_model(cell, params=SOI28.electrical)
        assert (a.detection == b.detection).all()

    def test_threshold_band_affects_x(self):
        cell = build_cell(SOI28, "INV", 1)
        nmos = next(t for t in cell.transistors if t.is_nmos)
        ron = SOI28.electrical.rsq_nmos * nmos.l / nmos.w
        from repro.simulation import CellSimulator, DefectEffect
        from repro.logic import parse_word

        # a short at Ron/3 puts the divider at 0.75: inside a wide X band,
        # above the threshold of the standard band
        standard = dataclasses.replace(SOI28.electrical, vil=0.35, vih=0.65)
        wide = dataclasses.replace(SOI28.electrical, vil=0.2, vih=0.8)
        effect = DefectEffect(bridges=(("Z", "VDD", ron / 3),))
        standard_sim = CellSimulator(cell, standard, effect)
        wide_sim = CellSimulator(cell, wide, effect)
        word = parse_word("1")
        assert str(wide_sim.output_response(word)) == "X"
        assert str(standard_sim.output_response(word)) == "1"
