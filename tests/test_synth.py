"""Unit tests for series-parallel synthesis and drive widening."""

import itertools

import pytest

from repro.library import (
    CellSpec,
    Leaf,
    Parallel,
    Series,
    StageSpec,
    SynthesisOptions,
    parallel,
    series,
    synthesize,
    widen_spec,
)
from repro.simulation import logic_check
from repro.logic import parse_expr


def nand2_spec():
    return CellSpec(
        function="NAND2",
        inputs=("A", "B"),
        output="Z",
        stages=(StageSpec(out="Z", pulldown=series(Leaf("A"), Leaf("B"))),),
    )


class TestSP:
    def test_leaves(self):
        sp = series(Leaf("A"), parallel(Leaf("B"), Leaf("C")))
        assert sp.leaves() == ["A", "B", "C"]
        assert sp.n_devices() == 3

    def test_dual_swaps(self):
        sp = series(Leaf("A"), Leaf("B"))
        dual = sp.dual()
        assert isinstance(dual, Parallel)
        assert dual.leaves() == ["A", "B"]

    def test_dual_involution(self):
        sp = parallel(series(Leaf("A"), Leaf("B")), Leaf("C"))
        assert str(sp.dual().dual()) == str(sp)

    def test_render(self):
        sp = parallel(series(Leaf("A"), Leaf("B")), Leaf("C"))
        assert str(sp) == "(A&B)|C"

    def test_group_needs_two(self):
        with pytest.raises(ValueError):
            Series(Leaf("A"))

    def test_single_item_helpers(self):
        assert isinstance(series(Leaf("A")), Leaf)
        assert isinstance(parallel(Leaf("A")), Leaf)


class TestSynthesize:
    def test_nand2_structure(self):
        cell = synthesize(nand2_spec(), "ND2")
        assert cell.n_transistors == 4
        assert sum(t.is_nmos for t in cell.transistors) == 2
        assert not logic_check(cell, parse_expr("!(A&B)"))

    def test_internal_net_style(self):
        cell = synthesize(
            nand2_spec(), "ND2", SynthesisOptions(net_style="int_{}")
        )
        assert any(net.startswith("int_") for net in cell.internal_nets())

    def test_shuffle_changes_order_not_function(self):
        base = synthesize(nand2_spec(), "ND2")
        shuffled = synthesize(
            nand2_spec(), "ND2", SynthesisOptions(shuffle_seed=1234)
        )
        assert not logic_check(shuffled, parse_expr("!(A&B)"))
        base_order = [(t.ttype, t.gate) for t in base.transistors]
        shuf_order = [(t.ttype, t.gate) for t in shuffled.transistors]
        assert sorted(base_order) == sorted(shuf_order)

    def test_shuffle_deterministic(self):
        a = synthesize(nand2_spec(), "ND2", SynthesisOptions(shuffle_seed=7))
        b = synthesize(nand2_spec(), "ND2", SynthesisOptions(shuffle_seed=7))
        assert [t.name for t in a.transistors] == [t.name for t in b.transistors]
        assert [t.gate for t in a.transistors] == [t.gate for t in b.transistors]

    def test_two_stage(self):
        spec = CellSpec(
            function="AND2",
            inputs=("A", "B"),
            output="Z",
            stages=(
                StageSpec(out="mid", pulldown=series(Leaf("A"), Leaf("B"))),
                StageSpec(out="Z", pulldown=Leaf("mid")),
            ),
        )
        cell = synthesize(spec, "AND2")
        assert cell.n_transistors == 6
        assert not logic_check(cell, parse_expr("A&B"))


class TestWiden:
    @pytest.mark.parametrize("style", ["merged", "split"])
    @pytest.mark.parametrize("drive", [2, 4])
    def test_widened_preserves_function_and_count(self, style, drive):
        spec = widen_spec(nand2_spec(), drive, style)
        cell = synthesize(spec, f"ND2X{drive}")
        assert cell.n_transistors == 4 * drive
        assert not logic_check(cell, parse_expr("!(A&B)"))

    def test_merged_shares_internal_nets(self):
        merged = synthesize(widen_spec(nand2_spec(), 2, "merged"), "M")
        split = synthesize(widen_spec(nand2_spec(), 2, "split"), "S")
        # split duplicates the series stack's internal net; merged shares it
        assert len(split.internal_nets()) > len(merged.internal_nets())

    def test_drive_one_is_identity(self):
        assert widen_spec(nand2_spec(), 1, "merged") is nand2_spec() or (
            widen_spec(nand2_spec(), 1, "merged").stages == nand2_spec().stages
        )

    def test_bad_style(self):
        with pytest.raises(ValueError):
            widen_spec(nand2_spec(), 2, "twisted")

    def test_bad_drive(self):
        with pytest.raises(ValueError):
            widen_spec(nand2_spec(), 0, "merged")

    def test_pullup_widened_in_parallel(self):
        # merged widening must parallel the PMOS network too (not leave the
        # dual as series pairs)
        spec = widen_spec(nand2_spec(), 2, "merged")
        pullup = spec.stages[0].pullup_network
        # NAND2 pull-up is A|B; merged x2 must have 4 parallel devices
        assert str(pullup).count("|") == 3
