"""Unit tests for the repro.lint framework (engine, rules, reporters).

The fixture-corpus integration tests live in tests/test_lint_corpus.py;
these tests exercise the framework mechanics on inline snippets.
"""

import json
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    LintConfig,
    all_rules,
    apply_baseline,
    check_unit,
    get_rule,
    load_baseline,
    render_json,
    render_sarif,
    run_lint,
    select_rules,
    write_baseline,
)
from repro.lint.engine import ModuleUnit


def lint_snippet(source, rule_ids=None, path="pkg/mod.py", config=None):
    unit = ModuleUnit(Path(path), path, source)
    rules = select_rules(rule_ids) if rule_ids else all_rules()
    return check_unit(unit, rules, config or LintConfig())


# ----------------------------------------------------------------------
# Registry / selection
# ----------------------------------------------------------------------

def test_registry_has_all_rule_families():
    ids = [rule.id for rule in all_rules()]
    assert ids == sorted(ids), "rules must come back ordered by id"
    for expected in (
        "RPL001", "RPL002", "RPL003", "RPL004",
        "RPL005", "RPL006", "RPL007", "RPL008",
    ):
        assert expected in ids
    for rule in all_rules():
        assert rule.summary and rule.rationale, rule.id


def test_select_and_ignore():
    assert [r.id for r in select_rules(["RPL001"])] == ["RPL001"]
    remaining = {r.id for r in select_rules(None, ["RPL001", "RPL008"])}
    assert "RPL001" not in remaining and "RPL008" not in remaining
    with pytest.raises(ValueError):
        select_rules(["RPL999"])
    with pytest.raises(ValueError):
        select_rules(None, ["nope"])


def test_get_rule_and_parse_error(tmp_path):
    assert get_rule("RPL001") is not None
    assert get_rule("RPL999") is None
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = run_lint([bad])
    assert [f.rule_id for f in findings] == ["RPL000"]
    assert "does not parse" in findings[0].message


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def test_inline_suppression_same_line():
    src = "print('x')  # reprolint: disable=RPL001\n"
    assert lint_snippet(src, ["RPL001"]) == []


def test_suppression_next_line_and_multiple_ids():
    src = (
        "# reprolint: disable-next-line=RPL001, RPL003\n"
        "print('x')\n"
        "print('y')\n"
    )
    findings = lint_snippet(src, ["RPL001"])
    assert [f.line for f in findings] == [3]


def test_file_level_suppression_and_all():
    src = "# reprolint: disable-file=RPL001\nprint('x')\n"
    assert lint_snippet(src, ["RPL001"]) == []
    src_all = "print('x')  # reprolint: disable=all\n"
    assert lint_snippet(src_all, ["RPL001"]) == []


def test_suppression_of_other_rule_does_not_mask():
    src = "print('x')  # reprolint: disable=RPL005\n"
    findings = lint_snippet(src, ["RPL001"])
    assert [f.rule_id for f in findings] == ["RPL001"]


# ----------------------------------------------------------------------
# Individual rules: negatives that must NOT fire
# ----------------------------------------------------------------------

def test_rpl001_allows_sanctioned_sinks():
    src = "print('cli output')\n"
    assert lint_snippet(src, ["RPL001"], path="src/repro/cli.py") == []
    assert lint_snippet(src, ["RPL001"], path="x/mod.py")


def test_rpl002_registered_and_dynamic_names_pass():
    src = (
        "from repro import obs\n"
        "def f(name):\n"
        "    obs.metrics().inc('camodel.sim.solves')\n"
        "    obs.events().warning('cache.unreadable', path='p')\n"
        "    obs.metrics().inc(name)  # dynamic: out of scope\n"
    )
    assert lint_snippet(src, ["RPL002"]) == []


def test_rpl002_resolves_module_constants():
    src = (
        "from repro import obs\n"
        "M_TYPO = 'camodel.sim.sovles'\n"
        "def f():\n"
        "    obs.metrics().inc(M_TYPO)\n"
    )
    findings = lint_snippet(src, ["RPL002"])
    assert len(findings) == 1 and "did you mean" in findings[0].message


def test_rpl002_extra_names_config():
    src = "from repro import obs\nobs.events().info('cache.custom')\n"
    assert lint_snippet(src, ["RPL002"])
    cfg = LintConfig().with_extra_names("cache.custom")
    assert lint_snippet(src, ["RPL002"], config=cfg) == []


def test_rpl002_ignores_unrelated_methods():
    # .info()/.error() on arbitrary objects is not an obs emission
    src = "def f(logger):\n    logger.info('not.a.registered.name')\n"
    assert lint_snippet(src, ["RPL002"]) == []


def test_rpl003_seeded_generators_pass():
    src = (
        "import random\n"
        "import numpy as np\n"
        "def f(seed):\n"
        "    a = random.Random(seed).random()\n"
        "    b = np.random.default_rng(seed).random()\n"
        "    c = np.random.default_rng(seed=seed)\n"
        "    return a, b, c\n"
    )
    assert lint_snippet(src, ["RPL003"]) == []


def test_rpl003_explicit_none_seed_still_flagged():
    src = "import numpy as np\nrng = np.random.default_rng(None)\n"
    assert lint_snippet(src, ["RPL003"])


def test_rpl004_only_in_scoped_paths():
    src = "import time\ndef f():\n    return time.time()\n"
    assert lint_snippet(src, ["RPL004"], path="x/utils.py") == []
    assert lint_snippet(src, ["RPL004"], path="x/camodel/io.py")


def test_rpl004_from_import_datetime():
    src = (
        "from datetime import datetime\n"
        "def f():\n    return datetime.now()\n"
    )
    assert lint_snippet(src, ["RPL004"], path="x/camodel/io.py")


def test_rpl005_reads_and_fdopen_pass():
    src = (
        "import os, json\n"
        "def read(path):\n"
        "    with open(path) as handle:\n"
        "        return json.load(handle)\n"
        "def via_fd(fd, payload):\n"
        "    with os.fdopen(fd, 'w') as handle:\n"
        "        json.dump(payload, handle)\n"
    )
    assert lint_snippet(src, ["RPL005"], path="x/resilience/mod.py") == []


def test_rpl005_allowlisted_writer_qualname():
    src = (
        "def _write_json_atomic(path, payload):\n"
        "    with open(path, 'w') as handle:\n"
        "        handle.write(payload)\n"
    )
    cfg = LintConfig(
        atomic_paths=("*/pkg/*",),
        atomic_writers=("*/pkg/mod.py::_write_json_atomic",),
    )
    assert lint_snippet(src, ["RPL005"], config=cfg) == []


def test_rpl006_module_level_functions_pass():
    src = (
        "import multiprocessing\n"
        "import helpers\n"
        "def worker(x):\n    return x\n"
        "def run(items):\n"
        "    with multiprocessing.Pool() as pool:\n"
        "        a = pool.map(worker, items)\n"
        "        b = pool.imap_unordered(helpers.work, items)\n"
        "    return a, b\n"
    )
    assert lint_snippet(src, ["RPL006"]) == []


def test_rpl007_plain_payloads_pass():
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class CellWorkPayload:\n"
        "    name: str\n"
        "    options: dict\n"
    )
    assert lint_snippet(src, ["RPL007"]) == []


def test_rpl008_specific_exceptions_out_of_scope():
    src = (
        "def f(path):\n"
        "    try:\n        path.unlink()\n"
        "    except OSError:\n        pass\n"
    )
    assert lint_snippet(src, ["RPL008"]) == []


def test_rpl008_classifying_handlers_pass():
    reraise = (
        "def f():\n    try:\n        g()\n"
        "    except Exception:\n        raise RuntimeError('ctx')\n"
    )
    classify = (
        "def f():\n    try:\n        g()\n"
        "    except Exception as exc:\n"
        "        return {'kind': 'exception', 'error': str(exc)}\n"
    )
    emit = (
        "from repro import obs\n"
        "def f():\n    try:\n        g()\n"
        "    except Exception:\n"
        "        obs.events().warning('cache.unreadable')\n"
        "        return False\n"
    )
    for src in (reraise, classify, emit):
        assert lint_snippet(src, ["RPL008"]) == [], src


# ----------------------------------------------------------------------
# Reporters / baseline
# ----------------------------------------------------------------------

def _sample_findings():
    return [
        Finding(
            rule_id="RPL001",
            rule_name="no-print",
            path="pkg/mod.py",
            line=3,
            col=5,
            message="bare print()",
            line_text="print('x')",
        )
    ]


def test_json_reporter_contract():
    data = json.loads(render_json(_sample_findings()))
    assert data["format"] == 1
    (finding,) = data["findings"]
    assert finding["rule"] == "RPL001"
    assert finding["path"] == "pkg/mod.py"
    assert finding["line"] == 3
    assert finding["fingerprint"]


def test_sarif_reporter_contract():
    sarif = json.loads(render_sarif(_sample_findings(), all_rules()))
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "RPL001" in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "RPL001"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "pkg/mod.py"
    assert location["region"]["startLine"] == 3


def test_baseline_round_trip(tmp_path):
    findings = _sample_findings()
    path = write_baseline(tmp_path / "baseline.json", findings)
    fingerprints = load_baseline(path)
    fresh, suppressed = apply_baseline(findings, fingerprints)
    assert fresh == [] and suppressed == 1


def test_fingerprint_survives_line_shift(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("print('x')\n")
    (before,) = run_lint([mod], select_rules(["RPL001"]))
    mod.write_text("import sys\n\n\nprint('x')\n")
    (after,) = run_lint([mod], select_rules(["RPL001"]))
    assert before.line != after.line
    assert before.fingerprint == after.fingerprint


def test_fingerprint_distinguishes_identical_lines(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("print('x')\nprint('x')\n")
    findings = run_lint([mod], select_rules(["RPL001"]))
    assert len(findings) == 2
    assert findings[0].fingerprint != findings[1].fingerprint


def test_fingerprint_survives_file_move(tmp_path):
    """Renaming/relocating a module must not churn the baseline."""
    before_dir = tmp_path / "before"
    before_dir.mkdir()
    (before_dir / "mod.py").write_text("print('x')\nprint('x')\n")
    before = run_lint([before_dir], select_rules(["RPL001"]))

    after_dir = tmp_path / "after" / "deep" / "nested"
    after_dir.mkdir(parents=True)
    (after_dir / "renamed.py").write_text("print('x')\nprint('x')\n")
    after = run_lint([after_dir], select_rules(["RPL001"]))

    assert {f.fingerprint for f in before} == {f.fingerprint for f in after}


def test_suppression_directive_inside_string_does_not_suppress(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        'print("use \'# reprolint: disable=RPL001\' to silence")\n'
        "print('y')  # reprolint: disable=RPL001\n"
    )
    findings = run_lint([mod], select_rules(["RPL001"]))
    # line 1's directive lives inside a string literal: still flagged;
    # line 2's is a real comment: suppressed
    assert [f.line for f in findings] == [1]


# ----------------------------------------------------------------------
# Catalog rot guards
# ----------------------------------------------------------------------

def test_catalog_matches_defining_modules():
    import repro.camodel.planstore as planstore
    import repro.camodel.stats as stats
    import repro.camodel.throughput as throughput
    import repro.learning.engine as learning_engine
    import repro.lint.program.driver as lint_program_driver
    import repro.obs.inspect as obs_inspect
    import repro.obs.store as obs_store
    import repro.obs.trace as obs_trace
    import repro.resilience.runner as runner
    import repro.service.api as service_api
    import repro.service.coordinator as service_coordinator
    import repro.service.lease as service_lease
    import repro.service.worker as service_worker
    import repro.simulation.engine as engine
    import repro.simulation.packed as packed
    import repro.simulation.phasecache as phasecache
    from repro.lint.catalog import EVENT_NAMES, METRIC_NAMES

    modules = (
        stats, runner, engine, phasecache, planstore, throughput,
        packed, obs_store, obs_inspect, obs_trace, learning_engine,
        service_api, service_coordinator, service_lease, service_worker,
        lint_program_driver,
    )
    for module in modules:
        for attr in dir(module):
            if attr.startswith("M_"):
                value = getattr(module, attr)
                assert value in METRIC_NAMES, (
                    f"{module.__name__}.{attr} = {value!r} missing from "
                    "repro.lint.catalog.METRIC_NAMES"
                )
            elif attr.startswith("E_"):
                value = getattr(module, attr)
                assert value in EVENT_NAMES, (
                    f"{module.__name__}.{attr} = {value!r} missing from "
                    "repro.lint.catalog.EVENT_NAMES"
                )


def test_catalog_names_live_in_registered_namespaces():
    from repro.lint.catalog import NAMESPACES, REGISTERED_NAMES

    for name in REGISTERED_NAMES:
        assert "." in name, name
        assert name.split(".", 1)[0] in NAMESPACES, name
