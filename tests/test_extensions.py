"""Tests for the production extensions: model comparison, defect weights,
classifier persistence, parallel generation and VCD tracing."""

import numpy as np
import pytest

from repro.camodel import generate_ca_model
from repro.camodel.batch import generate_library
from repro.camodel.compare import ComparisonError, LibraryDiff, compare_models
from repro.defects import default_universe
from repro.defects.weights import WeightModel, defect_weights, weighted_coverage
from repro.learning import RandomForestClassifier, accuracy_score
from repro.learning.persistence import (
    forest_from_dict,
    forest_to_dict,
    load_classifier,
    save_classifier,
)
from repro.library import SOI28, build_cell
from repro.simulation import CellSimulator, golden_simulator
from repro.simulation.trace import capture, dump_vcd, to_vcd


class TestCompareModels:
    def test_identical_models_perfect(self, nand2_model):
        diff = compare_models(nand2_model, nand2_model)
        assert diff.bit_accuracy == 1.0
        assert diff.escape_rate == 0.0
        assert diff.overkill_rate == 0.0
        assert diff.exact_fraction == 1.0
        assert not diff.lost_defects
        assert diff.pattern_coverage == 1.0

    def test_escapes_counted(self, nand2, nand2_model):
        import copy

        degraded = copy.deepcopy(nand2_model)
        # wipe the first detectable defect's row -> escapes + lost defect
        row = next(
            i for i in range(degraded.n_defects) if degraded.detection[i].any()
        )
        lost_name = degraded.defects[row].name
        degraded.detection[row] = 0
        diff = compare_models(nand2_model, degraded)
        assert diff.escape_rate > 0.0
        assert lost_name in diff.lost_defects
        # patterns chosen for surviving defects may still cover the lost
        # one, so pattern coverage is bounded but not necessarily reduced
        assert diff.pattern_coverage <= 1.0

    def test_pattern_coverage_drops_when_prediction_empty(self, nand2_model):
        import copy

        empty = copy.deepcopy(nand2_model)
        empty.detection = np.zeros_like(empty.detection)
        diff = compare_models(nand2_model, empty)
        assert diff.pattern_coverage == 0.0
        assert diff.escape_rate == 1.0

    def test_overkill_counted(self, nand2_model):
        import copy

        inflated = copy.deepcopy(nand2_model)
        inflated.detection[0] = 1
        diff = compare_models(nand2_model, inflated)
        assert diff.overkill_rate > 0.0
        # overkill cannot cause escapes
        assert diff.escape_rate == 0.0

    def test_shape_mismatch_rejected(self, nand2_model, aoi21_model):
        with pytest.raises(ComparisonError):
            compare_models(nand2_model, aoi21_model)

    def test_library_diff_summary(self, nand2_model):
        lib = LibraryDiff()
        lib.add(compare_models(nand2_model, nand2_model))
        summary = lib.summary()
        assert summary["cells"] == 1
        assert summary["mean_escape_rate"] == 0.0
        assert LibraryDiff().summary() == {}


class TestDefectWeights:
    def test_weights_align_and_normalize(self, nand2):
        universe = default_universe(nand2)
        weights = defect_weights(nand2, universe)
        assert len(weights) == len(universe)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()

    def test_bulk_defects_downweighted(self, nand2):
        universe = default_universe(nand2)
        weights = defect_weights(nand2, universe, normalize=False)
        bulk_open = next(
            i for i, d in enumerate(universe)
            if d.kind == "open" and d.location[1] == "B"
        )
        drain_open = next(
            i for i, d in enumerate(universe)
            if d.kind == "open" and d.location[1] == "D"
            and d.location[0] == universe[bulk_open].location[0]
        )
        assert weights[bulk_open] < weights[drain_open]

    def test_wider_devices_weigh_more(self):
        narrow = build_cell(SOI28, "INV", 1)
        wide = build_cell(SOI28, "INV", 1, SOI28.flavors[1])  # LVT: 1.15x
        wn = defect_weights(narrow, default_universe(narrow), normalize=False)
        ww = defect_weights(wide, default_universe(wide), normalize=False)
        assert ww.sum() > wn.sum()

    def test_weighted_coverage(self, nand2_model, nand2):
        weights = defect_weights(nand2, nand2_model.defects)
        full = weighted_coverage(nand2_model.detection, weights)
        assert 0.0 < full < 1.0
        none = weighted_coverage(nand2_model.detection, weights, stimulus_subset=[])
        assert none == 0.0

    def test_weighted_vs_raw_coverage_differ(self, nand2_model, nand2):
        weights = defect_weights(nand2, nand2_model.defects)
        weighted = weighted_coverage(nand2_model.detection, weights)
        raw = nand2_model.coverage()
        assert weighted != pytest.approx(raw, abs=1e-6)

    def test_mismatched_lengths_rejected(self, nand2_model):
        with pytest.raises(ValueError):
            weighted_coverage(nand2_model.detection, np.ones(3))


class TestPersistence:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 4, size=(2000, 12)).astype(np.int8)
        y = ((X[:, 1] > 1) ^ (X[:, 7] == 0)).astype(int)
        forest = RandomForestClassifier(
            n_estimators=5, max_features=0.5, random_state=0
        ).fit(X, y)
        return forest, X, y

    def test_roundtrip_predictions_identical(self, fitted, tmp_path):
        forest, X, y = fitted
        path = save_classifier(forest, tmp_path / "forest.json")
        loaded = load_classifier(path)
        assert (loaded.predict(X) == forest.predict(X)).all()
        assert np.allclose(loaded.predict_proba(X), forest.predict_proba(X))

    def test_dict_roundtrip(self, fitted):
        forest, X, _y = fitted
        clone = forest_from_dict(forest_to_dict(forest))
        assert (clone.predict(X[:50]) == forest.predict(X[:50])).all()

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            forest_to_dict(RandomForestClassifier())

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError):
            forest_from_dict({"kind": "svm"})


class TestBatchGeneration:
    def test_inline_matches_direct(self, nand2):
        inline = generate_library([nand2], processes=1)
        direct = generate_ca_model(nand2)
        assert (inline[nand2.name].detection == direct.detection).all()

    def test_parallel_matches_inline(self):
        cells = [build_cell(SOI28, fn, 1) for fn in ("INV", "NAND2", "NOR2")]
        inline = generate_library(cells, processes=1)
        parallel = generate_library(cells, processes=2)
        assert set(parallel) == set(inline)
        for name in inline:
            assert (parallel[name].detection == inline[name].detection).all()


class TestTrace:
    def test_capture_states(self, nand2):
        sim = golden_simulator(nand2, SOI28.electrical)
        trace = capture(sim, [(0, 1), (1, 1), (0, 1)])
        assert len(trace) == 3
        assert trace.of("Z") == [1, 0, 1]
        assert trace.changes("Z") == [1, 2]

    def test_vcd_structure(self, nand2):
        sim = golden_simulator(nand2, SOI28.electrical)
        trace = capture(sim, [(0, 1), (1, 1)])
        vcd = to_vcd(trace)
        assert "$enddefinitions $end" in vcd
        assert "$var wire 1" in vcd
        assert "#0" in vcd and "#10" in vcd

    def test_vcd_x_for_floating(self, nand2):
        from repro.simulation import DefectEffect

        bottom = next(
            t for t in nand2.transistors if t.is_nmos and t.source == "VSS"
        )
        sim = CellSimulator(
            nand2, SOI28.electrical, DefectEffect(removed=frozenset({bottom.name}))
        )
        trace = capture(sim, [(1, 1)])
        assert trace.of("Z") == [-1]
        assert "x" in to_vcd(trace)

    def test_dump_vcd(self, nand2, tmp_path):
        sim = golden_simulator(nand2, SOI28.electrical)
        trace = capture(sim, [(0, 0), (1, 1)])
        path = dump_vcd(trace, tmp_path / "t.vcd")
        assert path.exists()
        assert path.read_text().startswith("$comment")
