"""Unit tests for the relaxed structural matcher (Section V.C extension)."""

import pytest

from repro.camatrix import rename_transistors
from repro.camodel import generate_ca_model
from repro.flow import (
    RELAXED,
    HybridFlow,
    SimilarityIndex,
    structural_similarity,
)
from repro.learning import build_samples
from repro.library import C28, C40, SOI28, build_cell


def _renamed(tech, function, drive=1):
    return rename_transistors(build_cell(tech, function, drive), tech.electrical)


class TestSimilarityScore:
    def test_identical_structures_score_one(self):
        a = _renamed(SOI28, "NAND2")
        b = _renamed(C28, "NAND2")
        assert structural_similarity(a, b) == pytest.approx(1.0)

    def test_merged_split_score_one(self):
        merged = _renamed(SOI28, "NAND2", 2)
        split = _renamed(C40, "NAND2", 2)
        assert structural_similarity(merged, split) == pytest.approx(1.0)

    def test_symmetry(self):
        a = _renamed(SOI28, "NAND2")
        b = _renamed(SOI28, "NOR2")
        assert structural_similarity(a, b) == pytest.approx(
            structural_similarity(b, a)
        )

    def test_related_structures_partial_score(self):
        nand = _renamed(SOI28, "NAND2")
        nor = _renamed(SOI28, "NOR2")
        score = structural_similarity(nand, nor)
        assert 0.0 < score < 1.0

    def test_unrelated_structures_low_score(self):
        inv = _renamed(SOI28, "INV")
        aoi = _renamed(SOI28, "AOI222")
        assert structural_similarity(inv, aoi) < structural_similarity(
            _renamed(SOI28, "AOI221"), aoi
        )

    def test_b_gate_similar_to_buffered_gate(self):
        # NAND2B and AND2 share both stage shapes (at swapped levels)
        nand2b = _renamed(C40, "NAND2B")
        and2 = _renamed(SOI28, "AND2")
        assert structural_similarity(nand2b, and2) > 0.4


class TestSimilarityIndex:
    def test_best_match_within_group_only(self):
        index = SimilarityIndex()
        index.add(_renamed(SOI28, "NAND2"))
        score, name = index.best_match(_renamed(C40, "NAND2"))
        assert score == pytest.approx(1.0)
        assert name == "S28_NAND2X1"
        # different group: no candidates
        score, name = index.best_match(_renamed(C40, "NAND2", 2))
        assert score == 0.0 and name is None

    def test_admits_threshold(self):
        index = SimilarityIndex()
        index.add(_renamed(SOI28, "NAND2"))
        nor = _renamed(C28, "NOR2")
        assert index.admits(nor, threshold=0.2)
        assert not index.admits(nor, threshold=0.99)


class TestRelaxedRouting:
    @pytest.fixture(scope="class")
    def train(self):
        cells = [
            build_cell(SOI28, fn, 1, flavor)
            for fn in ("AND2", "OR2")
            for flavor in SOI28.flavors
        ]
        return build_samples(
            [(c, generate_ca_model(c, params=SOI28.electrical)) for c in cells],
            SOI28.electrical,
        )

    def test_strict_simulates_b_gates(self, train):
        flow = HybridFlow(train, params=C40.electrical, router="strict")
        decision = flow.generate(build_cell(C40, "NAND2B", 1))
        assert decision.route == "simulate"

    def test_relaxed_admits_b_gates(self, train):
        flow = HybridFlow(
            train, params=C40.electrical, router="relaxed",
            similarity_threshold=0.4,
        )
        decision = flow.generate(build_cell(C40, "NAND2B", 1))
        assert decision.match == RELAXED
        assert decision.route == "ml"

    def test_relaxed_still_rejects_aliens(self, train):
        flow = HybridFlow(
            train, params=C28.electrical, router="relaxed",
            similarity_threshold=0.8,
        )
        decision = flow.generate(build_cell(C28, "XOR2", 1))
        assert decision.route == "simulate"

    def test_bad_router_rejected(self, train):
        with pytest.raises(ValueError):
            HybridFlow(train, router="psychic")
