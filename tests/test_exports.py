"""Tests for the UDFM and Liberty exporters."""

import pytest

from repro.camodel.udfm import parse_udfm, save_udfm, to_udfm
from repro.library import SOI28, build_library, build_cell
from repro.library.liberty import cell_to_liberty, library_to_liberty, save_liberty
from repro.logic import parse_expr, truth_table


class TestUDFM:
    def test_structure(self, nand2_model):
        text = to_udfm(nand2_model)
        assert text.startswith("UDFM {")
        assert f'cell("{nand2_model.cell_name}")' in text
        assert "fault(" in text and "test {" in text

    def test_static_and_transition_tests(self, nand2_model):
        text = to_udfm(nand2_model)
        assert "statics:" in text
        assert "transitions:" in text

    def test_max_tests_cap(self, nand2_model):
        capped = to_udfm(nand2_model, max_tests_per_fault=1)
        parsed = parse_udfm(capped)
        for fault, tests in parsed[nand2_model.cell_name].items():
            assert len(tests) <= 1

    def test_parse_roundtrip_consistency(self, nand2_model):
        parsed = parse_udfm(to_udfm(nand2_model, max_tests_per_fault=100))
        faults = parsed[nand2_model.cell_name]
        classes = {c.representative: c for c in nand2_model.equivalence()}
        # every detectable class appears with its detecting-stimuli count
        for representative, eq_class in classes.items():
            n_detecting = sum(eq_class.detection)
            if n_detecting:
                assert len(faults[representative]) == n_detecting
            else:
                assert representative not in faults

    def test_test_conditions_detect(self, nand2, nand2_model):
        """Every exported test condition must actually detect its fault."""
        from repro.camodel import detect
        from repro.logic import V4
        from repro.simulation import CellSimulator

        parsed = parse_udfm(to_udfm(nand2_model, max_tests_per_fault=2))
        faults = parsed[nand2_model.cell_name]
        word_index = {
            tuple(w): i for i, w in enumerate(nand2_model.stimuli)
        }
        for fault, tests in list(faults.items())[:6]:
            for conditions in tests:
                word = tuple(
                    V4.from_string(conditions[pin]) for pin in nand2_model.inputs
                )
                index = word_index[word]
                assert nand2_model.detection[
                    nand2_model.defect_index(fault), index
                ] == 1

    def test_include_undetected(self, nand2_model):
        without = parse_udfm(to_udfm(nand2_model))
        with_undetected = parse_udfm(to_udfm(nand2_model, include_undetected=True))
        assert len(with_undetected[nand2_model.cell_name]) > len(
            without[nand2_model.cell_name]
        )

    def test_save(self, nand2_model, tmp_path):
        path = save_udfm(nand2_model, tmp_path / "m.udfm")
        assert path.read_text().startswith("UDFM")


class TestLiberty:
    @pytest.fixture(scope="class")
    def library(self):
        return build_library(
            SOI28, functions=("INV", "NAND2", "AOI21", "HA1"), drives=(1,),
            flavors=SOI28.flavors[:1],
        )

    def test_library_structure(self, library):
        text = library_to_liberty(library)
        assert text.startswith('library ("soi28_func") {')
        assert text.count("cell (") == len(library)
        assert text.strip().endswith("}")

    def test_pin_directions(self, library):
        text = cell_to_liberty(library.cell("S28_NAND2X1"))
        assert text.count("direction : input;") == 2
        assert text.count("direction : output;") == 1

    def test_function_attribute_consistent(self, library):
        """The Liberty function must equal the catalog truth table."""
        cell = library.cell("S28_AOI21X1")
        text = cell_to_liberty(cell)
        func_line = next(l for l in text.splitlines() if "function" in l)
        liberty_expr = func_line.split('"')[1]
        from repro.library.catalog import get as get_function

        reference = get_function("AOI21").expr(cell.inputs)
        assert truth_table(parse_expr(liberty_expr), cell.inputs) == truth_table(
            reference, cell.inputs
        )

    def test_multi_output_cell(self, library):
        text = cell_to_liberty(library.cell("S28_HA1X1"))
        assert text.count("direction : output;") == 2
        assert text.count("function :") == 2

    def test_save(self, library, tmp_path):
        path = save_liberty(library, tmp_path / "lib.lib")
        assert path.exists()
