"""Chaos suite for the resilient run layer.

Every :class:`~repro.resilience.faults.FaultPlan` mode is injected into a
real :func:`~repro.resilience.runner.run_library` run; the suite asserts
the run survives, quarantines exactly the faulted cells with structured
error records, and a subsequent ``resume`` converges to a library
byte-identical to an uninterrupted run.

The quarantine scenario's failure report is copied to
``CHAOS_failure_report.json`` at the repo root (the same machine-readable
artifact idiom as ``BENCH_generation.json``) so CI can upload it, and its
merged run telemetry (attempt shards + span/counter rollup from the
``obs/`` store) to ``CHAOS_run_telemetry.json``.
"""

import json
from pathlib import Path

import pytest

from repro.camodel import LibraryGenerationError, generate_library
from repro.flow import HybridFlow
from repro.library import SOI28, build_cell
from repro.resilience import FaultPlan, FaultRule, InjectedFault, faults
from repro.resilience.ledger import (
    DONE,
    QUARANTINED,
    RunLedger,
    quarantined_cells,
)
from repro.resilience.runner import run_library

ROOT = Path(__file__).resolve().parents[1]

CELLS = ("NAND2", "NOR2", "AND2")
VICTIM = "S28_NOR2X1"


@pytest.fixture(scope="module")
def library_cells():
    return [build_cell(SOI28, function, 1) for function in CELLS]


@pytest.fixture(scope="module")
def baseline(tmp_path_factory, library_cells):
    """Uninterrupted reference run; its library bytes anchor every test."""
    run_dir = tmp_path_factory.mktemp("baseline")
    output = run_dir / "library.json"
    result = run_library(
        library_cells,
        run_dir=run_dir,
        processes=2,
        retry_backoff=0.0,
        output=output,
    )
    assert result.complete and len(result.models) == len(CELLS)
    return output.read_bytes()


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    faults.deactivate()


def _run(run_dir, cells, **kwargs):
    kwargs.setdefault("retry_backoff", 0.0)
    kwargs.setdefault("processes", 2)
    return run_library(
        cells, run_dir=run_dir, output=Path(run_dir) / "library.json", **kwargs
    )


class TestCrash:
    def test_crash_is_retried_and_run_survives(
        self, tmp_path, library_cells, baseline
    ):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="crash", attempts=(0,))])
        result = _run(
            tmp_path / "run", cells=library_cells, retries=1, fault_plan=plan
        )
        assert result.complete
        assert (tmp_path / "run" / "library.json").read_bytes() == baseline
        record = RunLedger.load(tmp_path / "run").cells[VICTIM]
        assert record["attempts"] == 2
        assert record["errors"][0]["kind"] == "crash"
        assert "injected crash" in record["errors"][0]["error"]

    def test_exhausted_retries_quarantine_only_the_faulted_cell(
        self, tmp_path, library_cells, baseline
    ):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="crash")])
        result = _run(
            tmp_path / "run", cells=library_cells, retries=1, fault_plan=plan
        )
        assert set(result.quarantined) == {VICTIM}
        assert set(result.models) == {
            c.name for c in library_cells if c.name != VICTIM
        }
        report = json.loads((tmp_path / "run" / "failures.json").read_text())
        assert [q["cell"] for q in report["quarantined"]] == [VICTIM]
        assert report["counts"][QUARANTINED] == 1
        assert all(e["kind"] == "crash" for e in report["quarantined"][0]["errors"])
        # publish the machine-readable report for the CI artifact upload
        (ROOT / "CHAOS_failure_report.json").write_text(
            json.dumps(report, indent=2) + "\n"
        )

        resumed = _run(
            tmp_path / "run", cells=library_cells, resume=True, retries=1
        )
        assert resumed.complete
        assert sorted(resumed.resumed) == sorted(
            c.name for c in library_cells if c.name != VICTIM
        )
        assert (tmp_path / "run" / "library.json").read_bytes() == baseline

        # publish the merged run telemetry of the chaos run for the CI
        # artifact upload (same idiom as CHAOS_failure_report.json above)
        from repro.obs.store import RunTelemetry

        tel = RunTelemetry.load(tmp_path / "run")
        assert tel.reconcile() == []
        (ROOT / "CHAOS_run_telemetry.json").write_text(
            json.dumps(
                {
                    "attempts": tel.attempts,
                    "sessions": len(tel.sessions),
                    "spans": len(tel.merged_spans()),
                    "counters_by_cell": tel.counters_by_cell(),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )


class TestHangTimeout:
    def test_hang_times_out_quarantines_and_resumes_identically(
        self, tmp_path, library_cells, baseline
    ):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="hang")])
        result = _run(
            tmp_path / "run",
            cells=library_cells,
            retries=0,
            cell_timeout=1.0,
            fault_plan=plan,
        )
        assert set(result.quarantined) == {VICTIM}
        assert result.quarantined[VICTIM][-1]["kind"] == "timeout"
        assert "cell-timeout" in result.quarantined[VICTIM][-1]["error"]

        resumed = _run(
            tmp_path / "run", cells=library_cells, resume=True, cell_timeout=5.0
        )
        assert resumed.complete
        assert (tmp_path / "run" / "library.json").read_bytes() == baseline

    def test_hang_retry_recovers_within_one_run(
        self, tmp_path, library_cells, baseline
    ):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="hang", attempts=(0,))])
        result = _run(
            tmp_path / "run",
            cells=library_cells,
            retries=1,
            cell_timeout=1.0,
            fault_plan=plan,
        )
        assert result.complete
        assert (tmp_path / "run" / "library.json").read_bytes() == baseline


class TestMidWriteKill:
    def test_kill_during_artifact_write_leaves_no_torn_checkpoint(
        self, tmp_path, library_cells, baseline
    ):
        plan = FaultPlan(
            [FaultRule(cell=VICTIM, mode="midwrite-kill", attempts=(0,))]
        )
        result = _run(
            tmp_path / "run", cells=library_cells, retries=1, fault_plan=plan
        )
        assert result.complete
        assert (tmp_path / "run" / "library.json").read_bytes() == baseline
        record = RunLedger.load(tmp_path / "run").cells[VICTIM]
        assert record["errors"][0]["kind"] == "crash"
        # the interrupted write's temp file must not survive the run
        models_dir = tmp_path / "run" / "models"
        assert not list(models_dir.glob(".*.tmp*"))

    def test_quarantined_midwrite_then_resume_byte_identical(
        self, tmp_path, library_cells, baseline
    ):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="midwrite-kill")])
        result = _run(
            tmp_path / "run", cells=library_cells, retries=0, fault_plan=plan
        )
        assert set(result.quarantined) == {VICTIM}
        resumed = _run(tmp_path / "run", cells=library_cells, resume=True)
        assert resumed.complete
        assert (tmp_path / "run" / "library.json").read_bytes() == baseline


class TestCorruptCheckpoint:
    def test_corrupt_artifact_is_detected_and_regenerated(
        self, tmp_path, library_cells, baseline
    ):
        plan = FaultPlan(
            [FaultRule(cell=VICTIM, mode="corrupt-artifact", attempts=(0,))]
        )
        result = _run(
            tmp_path / "run", cells=library_cells, retries=1, fault_plan=plan
        )
        assert result.complete
        assert (tmp_path / "run" / "library.json").read_bytes() == baseline
        record = RunLedger.load(tmp_path / "run").cells[VICTIM]
        assert record["errors"][0]["kind"] == "corrupt-artifact"

    def test_corrupt_checkpoint_on_disk_is_not_trusted_on_resume(
        self, tmp_path, library_cells, baseline
    ):
        """Corrupting a done cell's checkpoint between sessions forces a
        clean regeneration instead of a poisoned library."""
        run_dir = tmp_path / "run"
        _run(run_dir, cells=library_cells)
        ledger = RunLedger.load(run_dir)
        artifact = ledger.artifact_path(VICTIM)
        artifact.write_text('{"format": 1, "cell": "' + VICTIM)
        # mark the cell non-done so recover() revalidates the artifact
        # (simulates a session killed right around the done transition)
        ledger.cells[VICTIM]["state"] = "running"
        ledger.save()
        resumed = _run(run_dir, cells=library_cells, resume=True)
        assert resumed.complete
        assert (run_dir / "library.json").read_bytes() == baseline


class TestRaiseInSolver:
    def test_exception_carries_traceback_and_retry_recovers(
        self, tmp_path, library_cells, baseline
    ):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="raise", attempts=(0,))])
        result = _run(
            tmp_path / "run", cells=library_cells, retries=1, fault_plan=plan
        )
        assert result.complete
        assert (tmp_path / "run" / "library.json").read_bytes() == baseline
        record = RunLedger.load(tmp_path / "run").cells[VICTIM]
        error = record["errors"][0]
        assert error["kind"] == "exception"
        assert "InjectedFault" in error["error"]
        assert "generate_ca_model" in error["traceback"]


class TestOptionsSafety:
    def test_resume_with_different_options_is_refused(
        self, tmp_path, library_cells
    ):
        from repro.resilience import RunDirError

        _run(tmp_path / "run", cells=library_cells)
        with pytest.raises(RunDirError, match="different"):
            run_library(
                library_cells,
                run_dir=tmp_path / "run",
                resume=True,
                policy="static",
            )

    def test_fresh_dir_reuse_without_resume_is_refused(
        self, tmp_path, library_cells
    ):
        from repro.resilience import RunDirError

        _run(tmp_path / "run", cells=library_cells)
        with pytest.raises(RunDirError, match="resume"):
            run_library(library_cells, run_dir=tmp_path / "run")


class TestObsIntegration:
    def test_retry_and_quarantine_metrics_and_events(
        self, tmp_path, library_cells
    ):
        from repro import obs

        sink = obs.ListSink()
        with obs.scoped(metrics=obs.Metrics(), events=obs.EventLog(sink)):
            plan = FaultPlan([FaultRule(cell=VICTIM, mode="raise")])
            _run(
                tmp_path / "run",
                cells=library_cells,
                retries=1,
                fault_plan=plan,
            )
            counters = obs.metrics().counters
        assert counters["resilience.retries"] == 1
        assert counters["resilience.quarantined"] == 1
        assert counters["resilience.exceptions"] == 2
        assert counters["resilience.cells_done"] == len(CELLS) - 1
        names = [event.name for event in sink.events]
        assert "resilience.retry" in names
        assert "resilience.quarantine" in names

    def test_worker_metrics_merge_exactly_once(self, tmp_path, library_cells):
        from repro import obs
        from repro.camodel.stats import M_SOLVES

        with obs.scoped(metrics=obs.Metrics()):
            result = _run(tmp_path / "run", cells=library_cells)
            merged = obs.metrics().counters.get(M_SOLVES, 0)
        # the registry's solves equal the per-cell ledger totals (merged
        # at the done transition, once per cell)
        assert merged == result.metrics[M_SOLVES]
        assert merged == sum(
            model.stats.solves for model in result.models.values()
        )

        # a resumed session reuses every cell and merges nothing again
        with obs.scoped(metrics=obs.Metrics()):
            resumed = _run(tmp_path / "run", cells=library_cells, resume=True)
            assert obs.metrics().counters.get(M_SOLVES, 0) == 0
        assert resumed.metrics[M_SOLVES] == result.metrics[M_SOLVES]


class TestHybridQuarantineRouting:
    def test_quarantined_cells_take_the_simulation_lane(
        self, tmp_path, library_cells
    ):
        from repro.camatrix import training_matrix
        from repro.learning.datasets import CellSample

        plan = FaultPlan([FaultRule(cell=VICTIM, mode="raise")])
        result = _run(
            tmp_path / "run", cells=library_cells, retries=0, fault_plan=plan
        )
        quarantine = quarantined_cells(tmp_path / "run")
        assert quarantine == [VICTIM]

        # train on the partial library: the NOR2 flavors would normally
        # route 'ml' via an identical structural match
        samples = [
            CellSample(
                cell=cell,
                model=result.models[cell.name],
                matrix=training_matrix(cell, result.models[cell.name]),
            )
            for cell in library_cells
            if cell.name in result.models
        ]
        victim_cell = next(c for c in library_cells if c.name == VICTIM)
        flow = HybridFlow(samples, params=SOI28.electrical)
        ml_decision = flow.generate(victim_cell)
        assert ml_decision.route == "simulate"  # nothing similar trained

        # seed the index with an identical cell: ML would now match...
        flow2 = HybridFlow(
            samples
            + [
                CellSample(
                    cell=victim_cell,
                    model=ml_decision.model,
                    matrix=training_matrix(victim_cell, ml_decision.model),
                )
            ],
            params=SOI28.electrical,
        )
        assert flow2.generate(victim_cell).route == "ml"
        # ...but the quarantine verdict forces the simulation lane
        report = flow2.run(
            [victim_cell], policy="auto", quarantined=quarantine
        )
        decision = report.decisions[-1]
        assert decision.route == "simulate"
        assert decision.model is not None


class TestGenerateLibraryFailureCollection:
    """The pre-ledger satellite fix: completed siblings survive a failure."""

    def test_pool_path_attaches_completed_models(self, library_cells):
        plan = FaultPlan([FaultRule(cell=VICTIM, mode="raise")])
        payload = plan.to_dict()

        # arm the plan inside each pool worker via an initializer-free
        # trick: activate in the parent; fork propagates it
        faults.activate(FaultPlan.from_dict(payload), cell="", attempt=0)
        try:
            with pytest.raises(LibraryGenerationError) as excinfo:
                generate_library(
                    library_cells, params=SOI28.electrical, processes=2
                )
        finally:
            faults.deactivate()
        error = excinfo.value
        assert sorted(error.completed) == sorted(
            c.name for c in library_cells if c.name != VICTIM
        )
        assert [f["cell"] for f in error.failures] == [VICTIM]
        assert "InjectedFault" in error.failures[0]["traceback"]

    def test_inline_path_attaches_completed_models(self, library_cells):
        faults.activate(
            FaultPlan([FaultRule(cell=VICTIM, mode="raise")]),
            cell="",
            attempt=0,
        )
        try:
            with pytest.raises(LibraryGenerationError) as excinfo:
                generate_library(library_cells, params=SOI28.electrical)
        finally:
            faults.deactivate()
        error = excinfo.value
        assert sorted(error.completed) == sorted(
            c.name for c in library_cells if c.name != VICTIM
        )
        assert str(VICTIM) in str(error)

    def test_direct_raise_in_solver(self, nand2):
        from repro.camodel import generate_ca_model

        faults.activate(
            FaultPlan([FaultRule(cell=nand2.name, mode="raise")]),
            cell=nand2.name,
            attempt=0,
        )
        try:
            with pytest.raises(InjectedFault):
                generate_ca_model(nand2, params=SOI28.electrical)
        finally:
            faults.deactivate()


class TestLedgerStates:
    def test_done_states_and_canonical_artifacts(self, tmp_path, library_cells):
        result = _run(tmp_path / "run", cells=library_cells)
        ledger = RunLedger.load(tmp_path / "run")
        assert set(ledger.names_in(DONE)) == set(result.models)
        for name in result.models:
            data = json.loads(ledger.artifact_path(name).read_text())
            assert data["generation_seconds"] == 0.0
            assert data["stats"]["total_seconds"] == 0.0
            # the real wall time lives in the ledger instead
            assert ledger.cells[name]["seconds"] > 0.0
