"""Unit tests for stimuli, CA model generation and file IO."""

import numpy as np
import pytest

from repro.camodel import (
    CAModel,
    DYNAMIC,
    STATIC,
    UNDETECTED,
    detect,
    expected_count,
    generate_ca_model,
    is_dynamic_word,
    load_model,
    load_models,
    model_from_dict,
    model_to_dict,
    resolve_policy,
    save_model,
    save_models,
    stimuli,
)
from repro.library import SOI28, build_cell
from repro.logic import V4, parse_word, word_to_string


class TestStimuli:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    @pytest.mark.parametrize("policy", ["static", "adjacent", "exhaustive"])
    def test_counts_match_formula(self, n, policy):
        assert len(stimuli(n, policy)) == expected_count(n, policy)

    def test_exhaustive_is_4_to_the_n(self):
        assert expected_count(3, "exhaustive") == 64

    def test_static_first_ascending(self):
        words = stimuli(2, "exhaustive")
        assert [word_to_string(w) for w in words[:4]] == ["00", "01", "10", "11"]

    def test_no_duplicates(self):
        words = stimuli(3, "exhaustive")
        assert len({word_to_string(w) for w in words}) == len(words)

    def test_adjacent_single_transition(self):
        for word in stimuli(3, "adjacent"):
            dynamic = sum(1 for v in word if v.is_dynamic)
            assert dynamic in (0, 1)

    def test_dynamic_words_have_transition(self):
        for word in stimuli(2, "exhaustive")[4:]:
            assert is_dynamic_word(word)

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            stimuli(2, "random")
        with pytest.raises(ValueError):
            expected_count(2, "random")

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            stimuli(0)

    def test_resolve_policy(self):
        assert resolve_policy(3, "auto") == "exhaustive"
        assert resolve_policy(6, "auto") == "adjacent"
        assert resolve_policy(6, "exhaustive") == "exhaustive"


class TestDetectRule:
    def test_mismatch_detected(self):
        assert detect(V4.ZERO, V4.ONE) == 1
        assert detect(V4.RISE, V4.ONE) == 1

    def test_match_undetected(self):
        assert detect(V4.FALL, V4.FALL) == 0

    def test_x_never_detects(self):
        assert detect(V4.ONE, V4.X) == 0


class TestGeneration:
    def test_shape_and_metadata(self, nand2, nand2_model):
        assert nand2_model.cell_name == nand2.name
        assert nand2_model.detection.shape == (40, 16)
        assert nand2_model.n_defects == 40
        assert len(nand2_model.golden) == 16
        assert nand2_model.simulation_count > 0

    def test_golden_never_x(self, nand2_model):
        assert all(v.is_known for v in nand2_model.golden)

    def test_defect_types_partition(self, nand2_model):
        counts = nand2_model.type_counts()
        assert counts[STATIC] + counts[DYNAMIC] + counts[UNDETECTED] == 40
        assert counts[STATIC] > 0 and counts[DYNAMIC] > 0

    def test_dynamic_defects_exist(self, nand2_model):
        # stuck-open family: detected only by two-pattern stimuli
        dynamic = [
            d.name
            for d in nand2_model.defects
            if nand2_model.defect_type(d.name) == DYNAMIC
        ]
        assert dynamic

    def test_coverage_between_0_and_1(self, nand2_model):
        assert 0.0 < nand2_model.coverage() < 1.0

    def test_bulk_opens_undetected(self, nand2, nand2_model):
        for d in nand2_model.defects:
            if d.kind == "open" and d.location[1] == "B":
                assert not nand2_model.detection_row(d.name).any()

    def test_policy_static_smaller(self, nand2):
        model = generate_ca_model(nand2, params=SOI28.electrical, policy="static")
        assert model.n_stimuli == 4

    def test_keep_responses(self, nand2):
        model = generate_ca_model(
            nand2, params=SOI28.electrical, policy="static", keep_responses=True
        )
        assert model.responses is not None
        assert len(model.responses) == model.n_defects

    def test_delay_detection_adds_detections(self):
        cell = build_cell(SOI28, "INV", 2)
        with_delay = generate_ca_model(cell, params=SOI28.electrical)
        without = generate_ca_model(
            cell, params=SOI28.electrical, delay_detection=False
        )
        assert with_delay.detection.sum() > without.detection.sum()

    def test_progress_callback(self, nand2):
        seen = []
        generate_ca_model(
            nand2,
            params=SOI28.electrical,
            policy="static",
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (40, 40)

    def test_summary_keys(self, nand2_model):
        summary = nand2_model.summary()
        for key in ("cell", "defects", "coverage", "equivalence_classes"):
            assert key in summary

    def test_detection_row_unknown_defect(self, nand2_model):
        with pytest.raises(KeyError):
            nand2_model.detection_row("D999")

    def test_determinism(self, nand2):
        a = generate_ca_model(nand2, params=SOI28.electrical)
        b = generate_ca_model(nand2, params=SOI28.electrical)
        assert (a.detection == b.detection).all()
        assert a.golden == b.golden


class TestIO:
    def test_roundtrip(self, nand2_model, tmp_path):
        path = save_model(nand2_model, tmp_path / "m.json")
        back = load_model(path)
        assert back.cell_name == nand2_model.cell_name
        assert (back.detection == nand2_model.detection).all()
        assert back.stimuli == nand2_model.stimuli
        assert back.golden == nand2_model.golden
        assert [d.location for d in back.defects] == [
            d.location for d in nand2_model.defects
        ]

    def test_library_roundtrip(self, nand2_model, nor2_model, tmp_path):
        path = save_models([nand2_model, nor2_model], tmp_path / "lib.json")
        back = load_models(path)
        assert [m.cell_name for m in back] == [
            nand2_model.cell_name,
            nor2_model.cell_name,
        ]

    def test_dict_version_check(self, nand2_model):
        data = model_to_dict(nand2_model)
        data["format"] = 99
        with pytest.raises(ValueError):
            model_from_dict(data)

    def test_model_validation(self, nand2_model):
        with pytest.raises(ValueError):
            CAModel(
                cell_name="x",
                technology="",
                inputs=("A",),
                output="Z",
                stimuli=list(nand2_model.stimuli),
                golden=list(nand2_model.golden),
                defects=list(nand2_model.defects),
                detection=np.zeros((1, 1), dtype=np.int8),
            )
