"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.camatrix import rename_transistors
from repro.defects import equivalence_classes
from repro.learning import DecisionTreeClassifier, accuracy_score
from repro.library import SOI28, get_function
from repro.library.synth import SynthesisOptions, synthesize
from repro.logic import (
    V4,
    final_phase,
    initial_phase,
    parse_word,
    word_from_phases,
    word_to_string,
)
from repro.simulation import logic_check

SYMBOLS = st.sampled_from("01RF")
WORDS = st.text(alphabet="01RF", min_size=1, max_size=6)


class TestFourValueProperties:
    @given(WORDS)
    def test_word_roundtrip(self, text):
        assert word_to_string(parse_word(text)) == text

    @given(WORDS)
    def test_phase_recombination(self, text):
        word = parse_word(text)
        assert word_from_phases(initial_phase(word), final_phase(word)) == word

    @given(SYMBOLS)
    def test_inversion_flips_phases(self, ch):
        v = V4.from_string(ch)
        assert v.inverted.initial == 1 - v.initial
        assert v.inverted.final == 1 - v.final


class TestEquivalenceProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40)
    def test_classes_partition_defects(self, n_defects, n_stimuli, seed):
        rng = np.random.default_rng(seed)
        detection = rng.integers(0, 2, size=(n_defects, n_stimuli)).astype(np.int8)
        names = [f"D{i}" for i in range(n_defects)]
        classes = equivalence_classes(detection, names)
        members = [m for c in classes for m in c.members]
        assert sorted(members) == sorted(names)
        # all members of a class share the representative's row
        for c in classes:
            rep = detection[names.index(c.representative)]
            for m in c.members:
                assert (detection[names.index(m)] == rep).all()

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25)
    def test_distinct_rows_distinct_classes(self, n_defects, n_stimuli, seed):
        rng = np.random.default_rng(seed)
        detection = rng.integers(0, 2, size=(n_defects, n_stimuli)).astype(np.int8)
        classes = equivalence_classes(detection, [f"D{i}" for i in range(n_defects)])
        rows = {c.detection for c in classes}
        assert len(rows) == len(classes)


class TestRenamingProperties:
    @given(
        st.sampled_from(["NAND2", "NOR2", "AOI21", "OAI21", "AND2", "XOR2"]),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_shuffle_invariant_canonicalization(self, function, seed):
        """The canonical form must not depend on source netlist ordering."""
        fdef = get_function(function)
        pins = [chr(ord("A") + i) for i in range(fdef.n_inputs)]
        spec = fdef.spec(pins, "Z")
        reference = synthesize(spec, function, SynthesisOptions(shuffle_seed=None))
        shuffled = synthesize(spec, function, SynthesisOptions(shuffle_seed=seed))
        ra = rename_transistors(reference)
        rb = rename_transistors(shuffled)
        assert ra.signature == rb.signature
        assert sorted(ra.activity.items()) == sorted(rb.activity.items())
        assert ra.structure == rb.structure
        gates_a = {
            new: reference.transistor(old).gate for old, new in ra.mapping.items()
        }
        gates_b = {
            new: shuffled.transistor(old).gate for old, new in rb.mapping.items()
        }
        assert gates_a == gates_b

    @given(st.sampled_from(["NAND2", "NOR3", "AOI21", "AND2"]))
    @settings(max_examples=8, deadline=None)
    def test_synthesized_cells_match_formula(self, function):
        fdef = get_function(function)
        pins = [chr(ord("A") + i) for i in range(fdef.n_inputs)]
        cell = synthesize(fdef.spec(pins, "Z"), function)
        assert not logic_check(cell, fdef.expr(pins))


class TestTreeProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_tree_fits_consistent_labels_exactly(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, 3, size=(120, 5)).astype(np.int8)
        y = ((X[:, 0] + X[:, 2]) % 2).astype(int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert accuracy_score(y, tree.predict(X)) == 1.0

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_leaf_distribution_valid(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, 4, size=(60, 4)).astype(np.int8)
        y = rng.integers(0, 2, size=60)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert (proba >= 0).all() and np.allclose(proba.sum(axis=1), 1.0)
