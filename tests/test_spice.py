"""Unit tests for the SPICE parser, writer and dialects."""

import pytest

from repro.library import SOI28, C28, C40, build_cell
from repro.spice import (
    GENERIC,
    SpiceSyntaxError,
    classify_model,
    parse_cell,
    parse_library,
    parse_value,
    write_cell,
    write_library,
)


class TestParseValue:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1.5", 1.5),
            ("0.3u", 0.3e-6),
            ("30n", 30e-9),
            ("2meg", 2e6),
            ("1.2e-6", 1.2e-6),
            ("4k", 4000.0),
        ],
    )
    def test_values(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_bad_value(self):
        with pytest.raises(SpiceSyntaxError):
            parse_value("abc")


NAND2_TEXT = """
* a NAND2 in a foreign dialect
.SUBCKT ND2 A B Z VDD GND
MN0 Z A n1 GND nch W=0.6u L=0.04u
+ m=1
MN1 n1 B GND GND nch W=0.6u L=0.04u
MP0 Z A VDD VDD pch W=1.1u L=0.04u  $ pull-up
MP1 Z B VDD VDD pch W=1.1u L=0.04u
.ENDS
"""


class TestParser:
    def test_parse_nand2(self):
        cell = parse_cell(NAND2_TEXT)
        assert cell.name == "ND2"
        assert cell.inputs == ["A", "B"]
        assert cell.outputs == ["Z"]
        assert cell.power == "VDD" and cell.ground == "GND"
        assert cell.n_transistors == 4
        assert cell.transistor("MN0").w == pytest.approx(0.6)
        assert cell.transistor("MP0").is_pmos

    def test_continuation_and_comments_stripped(self):
        cell = parse_cell(NAND2_TEXT)
        assert cell.transistor("MP0").l == pytest.approx(0.04)

    def test_parasitics_ignored(self):
        text = NAND2_TEXT.replace(
            ".ENDS", "R1 Z Zint 12.5\nC1 Z GND 0.1f\n.ENDS"
        )
        cell = parse_cell(text)
        assert cell.n_transistors == 4

    def test_multi_cell_library(self):
        cells = parse_library(NAND2_TEXT + "\n" + NAND2_TEXT.replace("ND2", "ND2B"))
        assert [c.name for c in cells] == ["ND2", "ND2B"]

    def test_unterminated_subckt(self):
        with pytest.raises(SpiceSyntaxError):
            parse_library(".SUBCKT X A Z VDD VSS\nM0 Z A VSS VSS nmos")

    def test_missing_rails(self):
        text = ".SUBCKT X A Z P G\nM0 Z A G G nmos\n.ENDS"
        with pytest.raises(SpiceSyntaxError):
            parse_cell(text)
        cell = parse_cell(text, power="P", ground="G")
        assert cell.power == "P"

    def test_unknown_element_rejected(self):
        with pytest.raises(SpiceSyntaxError):
            parse_cell(NAND2_TEXT.replace(".ENDS", "L1 Z A 1n\n.ENDS"))


class TestClassifyModel:
    @pytest.mark.parametrize(
        "model,expected",
        [
            ("nch", "nmos"),
            ("pch", "pmos"),
            ("nsvt28", "nmos"),
            ("psvt28", "pmos"),
            ("nfet", "nmos"),
            ("pfet_lvt", "pmos"),
        ],
    )
    def test_known_and_heuristic(self, model, expected):
        assert classify_model(model) == expected

    def test_unclassifiable(self):
        with pytest.raises(ValueError):
            classify_model("xyz123")


class TestWriterRoundtrip:
    @pytest.mark.parametrize("tech", [SOI28, C40, C28], ids=lambda t: t.name)
    @pytest.mark.parametrize("function", ["NAND2", "AOI21", "AND2"])
    def test_roundtrip_preserves_structure(self, tech, function):
        cell = build_cell(tech, function, 1)
        text = write_cell(cell, tech.dialect)
        back = parse_cell(text, technology=tech.name)
        assert back.inputs == cell.inputs
        assert back.outputs == cell.outputs
        assert back.n_transistors == cell.n_transistors
        by_name_src = {t.name for t in cell.transistors}
        # device names keep the dialect prefix
        assert all(
            t.name.upper().startswith(tech.dialect.device_prefix.upper())
            for t in back.transistors
        )
        assert len(by_name_src) == back.n_transistors

    def test_renumber(self):
        cell = build_cell(SOI28, "NAND2", 1)
        text = write_cell(cell, SOI28.dialect, renumber=True)
        back = parse_cell(text)
        assert sorted(t.name for t in back.transistors) == ["M0", "M1", "M2", "M3"]

    def test_write_library_title(self):
        cells = [build_cell(SOI28, "INV", 1), build_cell(SOI28, "NAND2", 1)]
        text = write_library(cells, SOI28.dialect, title="demo")
        assert text.startswith("* demo")
        assert len(parse_library(text)) == 2

    def test_generic_dialect(self):
        cell = build_cell(SOI28, "INV", 1)
        text = write_cell(cell, GENERIC)
        assert "nmos" in text and "pmos" in text
