"""Unit tests for structural analysis, cost model and the hybrid flow."""

import pytest

from repro.camatrix import rename_transistors
from repro.camodel import generate_ca_model
from repro.flow import (
    CostModel,
    EQUIVALENT,
    GenerationLedger,
    HybridFlow,
    IDENTICAL,
    NONE,
    StructuralIndex,
    collapse_parallel_duplicates,
    equivalent_signature,
    exact_signature,
)
from repro.learning import build_samples
from repro.library import C28, C40, SOI28, build_cell


@pytest.fixture(scope="module")
def train_samples():
    cells = [
        build_cell(SOI28, fn, drive, flavor)
        for fn in ("NAND2", "NOR2")
        for drive in (1, 2)
        for flavor in SOI28.flavors[:2]
    ]
    return build_samples(
        [(c, generate_ca_model(c, params=SOI28.electrical)) for c in cells],
        SOI28.electrical,
    )


class TestCollapse:
    def test_merged_and_split_coincide(self):
        merged = rename_transistors(build_cell(SOI28, "NAND2", 2), SOI28.electrical)
        split = rename_transistors(build_cell(C40, "NAND2", 2), C40.electrical)
        assert exact_signature(merged) != exact_signature(split)
        assert equivalent_signature(merged) == equivalent_signature(split)

    def test_collapse_is_idempotent(self):
        renamed = rename_transistors(build_cell(SOI28, "AOI22", 4), SOI28.electrical)
        once = collapse_parallel_duplicates(renamed.branches[0].equation)
        twice = collapse_parallel_duplicates(once)
        assert once.anon() == twice.anon()

    def test_x1_unchanged_by_collapse(self):
        renamed = rename_transistors(build_cell(SOI28, "AOI21", 1), SOI28.electrical)
        collapsed = collapse_parallel_duplicates(renamed.branches[0].equation)
        # AOI21 X1 has two parallel PMOS in series-dual -> still collapses
        # nothing structural away beyond duplicate '1p' leaves
        assert "1n" in collapsed.anon()


class TestStructuralIndex:
    def test_identical_match(self, train_samples):
        index = StructuralIndex()
        index.add_all(s.matrix.renamed for s in train_samples)
        same = rename_transistors(build_cell(C28, "NAND2", 1), C28.electrical)
        assert index.match(same) == IDENTICAL

    def test_equivalent_match(self, train_samples):
        index = StructuralIndex()
        index.add_all(s.matrix.renamed for s in train_samples)
        split_x2 = rename_transistors(build_cell(C40, "NAND2", 2), C40.electrical)
        assert index.match(split_x2) == EQUIVALENT

    def test_none_match(self, train_samples):
        index = StructuralIndex()
        index.add_all(s.matrix.renamed for s in train_samples)
        alien = rename_transistors(build_cell(C28, "MAJI3", 1), C28.electrical)
        assert index.match(alien) == NONE

    def test_stage_order_not_aliased(self):
        # regression: AND2 (INV driving output, NAND behind) must not be
        # "equivalent" to NAND2B (NAND driving output, INV behind); the
        # collapsed equation *sets* coincide but the levels differ
        index = StructuralIndex()
        index.add(rename_transistors(build_cell(SOI28, "AND2", 1), SOI28.electrical))
        b_gate = rename_transistors(build_cell(C40, "NAND2B", 1), C40.electrical)
        assert index.match(b_gate) == NONE

    def test_group_key_guard(self, train_samples):
        # identical collapsed equation but different transistor count must
        # not be treated as equivalent (different group)
        index = StructuralIndex()
        index.add_all(s.matrix.renamed for s in train_samples)
        x4 = rename_transistors(build_cell(SOI28, "NAND2", 4), SOI28.electrical)
        assert index.match(x4) == NONE


class TestCostModel:
    def test_simulation_count(self, nand2):
        cost = CostModel()
        # (1 golden + 40 defects) * 16 exhaustive stimuli
        assert cost.cell_simulation_count(nand2) == 41 * 16

    def test_spice_seconds_scale(self, nand2):
        assert CostModel(seconds_per_spice_simulation=2.0).spice_seconds(
            nand2
        ) == pytest.approx(2.0 * 41 * 16)

    def test_ledger_reductions(self):
        ledger = GenerationLedger()
        ledger.record_simulated(1000.0)
        ledger.record_predicted(ml_seconds=10.0, avoided_spice_seconds=1000.0)
        assert ledger.ml_side_reduction == pytest.approx(0.99)
        assert ledger.total_reduction == pytest.approx(1 - 1010 / 2000)

    def test_ledger_empty(self):
        ledger = GenerationLedger()
        assert ledger.ml_side_reduction == 0.0
        assert ledger.total_reduction == 0.0

    def test_summary_keys(self):
        ledger = GenerationLedger()
        ledger.record_simulated(100.0)
        summary = ledger.summary()
        for key in ("spice_days", "ml_hours", "total_reduction"):
            assert key in summary


class TestHybridFlow:
    def test_routing(self, train_samples):
        flow = HybridFlow(train_samples, params=C40.electrical)
        identical = build_cell(C40, "NAND2", 1)
        equivalent = build_cell(C40, "NAND2", 2)
        alien = build_cell(C40, "XOR2", 1)
        report = flow.run([identical, equivalent, alien])
        routes = {d.cell_name: (d.match, d.route) for d in report.decisions}
        assert routes["C40_NAND2X1"] == (IDENTICAL, "ml")
        assert routes["C40_NAND2X2"] == (EQUIVALENT, "ml")
        assert routes["C40_XOR2X1"] == (NONE, "simulate")

    def test_ml_path_produces_model(self, train_samples):
        flow = HybridFlow(train_samples, params=C40.electrical)
        cell = build_cell(C40, "NAND2", 1)
        decision = flow.generate(cell)
        assert decision.model is not None
        assert decision.model.cell_name == cell.name
        assert decision.model.detection.shape[0] == 40

    def test_ml_accuracy_against_reference(self, train_samples):
        flow = HybridFlow(train_samples, params=C40.electrical)
        cell = build_cell(C40, "NAND2", 1)
        reference = generate_ca_model(cell, params=C40.electrical)
        decision = flow.generate(cell, reference=reference)
        assert decision.accuracy is not None and decision.accuracy > 0.9

    def test_feedback_enables_future_match(self, train_samples):
        flow = HybridFlow(train_samples, params=C28.electrical)
        first = build_cell(C28, "MAJI3", 1)
        second = build_cell(C28, "MAJI3", 1, C28.flavors[1])
        report = flow.run([first, second])
        assert report.decisions[0].route == "simulate"
        assert report.decisions[1].route == "ml"  # learned from feedback

    def test_ledger_populated(self, train_samples):
        flow = HybridFlow(train_samples, params=C40.electrical)
        report = flow.run([build_cell(C40, "NAND2", 1), build_cell(C40, "XOR2", 1)])
        assert report.ledger.n_predicted == 1
        assert report.ledger.n_simulated == 1
        assert report.ledger.avoided_spice_seconds > 0
        assert 0 < report.ledger.ml_side_reduction <= 1

    def test_fractions_and_summary(self, train_samples):
        flow = HybridFlow(train_samples, params=C40.electrical)
        report = flow.run([build_cell(C40, "NAND2", 1)])
        fractions = report.fractions()
        assert fractions[IDENTICAL] == 1.0
        summary = report.summary()
        assert summary["cells"] == 1

    def test_simulated_cells_have_no_accuracy(self, train_samples):
        """Regression: the simulation route used to report accuracy=1.0
        whenever a reference was given, inflating ml_mean_accuracy."""
        flow = HybridFlow(train_samples, params=C40.electrical)
        cell = build_cell(C40, "XOR2", 1)  # not in the training set
        reference = generate_ca_model(cell, params=C40.electrical)
        decision = flow.generate(cell, reference=reference)
        assert decision.route == "simulate"
        assert decision.accuracy is None
        # No ML-routed cell was scored, so the aggregate must be absent —
        # not a fake perfect 1.0.
        assert "ml_mean_accuracy" not in flow.report.summary()

    def test_ml_mean_accuracy_excludes_simulated_route(self, train_samples):
        flow = HybridFlow(train_samples, params=C40.electrical)
        ml_cell = build_cell(C40, "NAND2", 1)
        sim_cell = build_cell(C40, "XOR2", 1)
        references = {
            c.name: generate_ca_model(c, params=C40.electrical)
            for c in (ml_cell, sim_cell)
        }
        report = flow.run([ml_cell, sim_cell], references=references)
        by_route = {d.route: d for d in report.decisions}
        assert by_route["ml"].accuracy is not None
        assert by_route["simulate"].accuracy is None
        assert report.summary()["ml_mean_accuracy"] == round(
            by_route["ml"].accuracy, 4
        )
