"""Documentation consistency: the README's Python snippets must run."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def _python_blocks(markdown: str):
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_snippet_runs(self):
        readme = (ROOT / "README.md").read_text()
        blocks = _python_blocks(readme)
        assert blocks, "README lost its quickstart snippet"
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, "<README>", "exec"), namespace)
        # the snippet ends by printing a predicted model summary
        assert "ca_model" in namespace
        assert namespace["ca_model"].n_defects > 0

    def test_mentioned_paths_exist(self):
        readme = (ROOT / "README.md").read_text()
        for mention, path in (
            ("quickstart.py", "examples/quickstart.py"),
            ("conventional_flow.py", "examples/conventional_flow.py"),
            ("cross_technology.py", "examples/cross_technology.py"),
            ("hybrid_flow.py", "examples/hybrid_flow.py"),
            ("test_and_diagnose.py", "examples/test_and_diagnose.py"),
            ("test_bench_ablation.py", "benchmarks/test_bench_ablation.py"),
            ("DESIGN.md", "DESIGN.md"),
            ("EXPERIMENTS.md", "EXPERIMENTS.md"),
        ):
            assert mention in readme, mention
            assert (ROOT / path).exists(), path


class TestDesignDoc:
    def test_experiment_index_modules_exist(self):
        """Every module the DESIGN.md experiment index names must import."""
        import importlib

        for module in (
            "repro.camatrix.matrix",
            "repro.camatrix.activity",
            "repro.camatrix.rename",
            "repro.camatrix.branches",
            "repro.learning",
            "repro.flow.hybrid",
            "repro.flow.cost",
            "repro.flow.structure",
            "repro.experiments.table4",
            "repro.experiments.analysis",
            "repro.experiments.hybrid_study",
            "repro.camodel.generate",
        ):
            importlib.import_module(module)

    def test_docs_exist(self):
        for name in ("architecture.md", "paper_mapping.md", "tutorial.md"):
            assert (ROOT / "docs" / name).exists()
