"""End-to-end service integration through the real CLI.

One ``python -m repro serve RUN_DIR --netlist ... --workers 0``
coordinator subprocess owns the ledger while four external
``python -m repro worker RUN_DIR`` subprocesses — the multi-machine
deployment shape, minus the shared filesystem being remote — lease and
characterize the cells.  The assembled library must be byte-identical
to a sequential in-process run, every cell must have been committed by
exactly one worker, and the merged per-worker telemetry shards must
reconcile cleanly.
"""

import json
import os
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.cli import main
from repro.library import SOI28, build_cell
from repro.obs.store import RunTelemetry
from repro.resilience.runner import run_library
from repro.spice import parse_library, write_library

ROOT = Path(__file__).resolve().parents[1]

FUNCTIONS = ("NAND2", "NOR2", "AND2", "OR2", "AOI21", "OAI21")

N_WORKERS = 4


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


@pytest.fixture(scope="module")
def netlist_file(tmp_path_factory):
    built = [build_cell(SOI28, function, 1) for function in FUNCTIONS]
    path = tmp_path_factory.mktemp("netlist") / "catalog.sp"
    path.write_text(write_library(built, SOI28.dialect))
    return path


@pytest.fixture(scope="module")
def baseline_bytes(tmp_path_factory, netlist_file):
    cells = parse_library(netlist_file.read_text())
    run_dir = tmp_path_factory.mktemp("clean")
    output = run_dir / "library.json"
    result = run_library(
        cells, run_dir=run_dir, processes=2, retry_backoff=0.0, output=output
    )
    assert result.complete
    return output.read_bytes()


@pytest.fixture(scope="module")
def distributed_run(tmp_path_factory, netlist_file):
    """Coordinator + four external worker subprocesses, run to completion."""
    base = tmp_path_factory.mktemp("service")
    run_dir = base / "run"
    output = base / "library.json"
    coordinator = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(run_dir),
            "--netlist",
            str(netlist_file),
            "--workers",
            "0",
            "--lease-ttl",
            "5",
            "-o",
            str(output),
        ],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    workers = []
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if (run_dir / "job.json").exists():
                break
            if coordinator.poll() is not None:
                out, _ = coordinator.communicate()
                pytest.fail(f"coordinator exited before submitting: {out}")
            time.sleep(0.01)
        else:
            pytest.fail("job.json never appeared within 120s")
        workers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    str(run_dir),
                    "--owner",
                    f"ext{i}",
                ],
                env=_env(),
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for i in range(N_WORKERS)
        ]
        out, _ = coordinator.communicate(timeout=560)
    finally:
        for worker in workers:
            if worker.poll() is None:
                try:
                    worker.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    worker.kill()
                    worker.wait()
        if coordinator.poll() is None:
            coordinator.kill()
            coordinator.wait()
    assert coordinator.returncode == 0, out
    for worker in workers:
        assert worker.returncode == 0
    return {"run_dir": run_dir, "output": output, "stdout": out}


def test_external_workers_match_sequential_bytes(
    distributed_run, baseline_bytes
):
    output = distributed_run["output"]
    assert output.read_bytes() == baseline_bytes
    # the coordinator printed one summary line per cell plus the totals
    assert f"done {len(FUNCTIONS)}/{len(FUNCTIONS)}" in distributed_run["stdout"]


def test_every_cell_committed_by_exactly_one_worker(distributed_run):
    tel = RunTelemetry.load(distributed_run["run_dir"])
    owners = {shard["owner"] for shard in tel.workers}
    # all four external workers checked in and wrote their shard
    assert owners == {f"ext{i}" for i in range(N_WORKERS)}
    committed = Counter()
    for shard in tel.workers:
        committed.update(shard["cells"])
    names = {
        model["cell"]
        for model in json.loads(
            distributed_run["output"].read_text()
        )["models"]
    }
    assert set(committed) == names
    assert all(count == 1 for count in committed.values())
    # worker shards carry the fleet's lease traffic: every commit claims
    assert tel.worker_counters().get("lease.claims", 0) >= len(names)
    assert tel.worker_counters().get("service.cells", 0) == len(names)


def test_merged_worker_shards_reconcile(distributed_run):
    tel = RunTelemetry.load(distributed_run["run_dir"])
    assert tel.reconcile() == []
    # each done cell has exactly one winning attempt shard, written by
    # the worker that committed it (pid != 0: not coordinator-recovered)
    winning = tel.winning_attempts()
    assert set(winning) == set(tel.counters_by_cell())
    assert all(int(shard["pid"]) != 0 for shard in winning.values())


def test_inspect_workers_report(distributed_run, capsys):
    rc = main(["inspect", str(distributed_run["run_dir"]), "workers"])
    assert rc == 0
    out = capsys.readouterr().out
    for i in range(N_WORKERS):
        assert f"ext{i}" in out
    assert "lease" in out.lower()
