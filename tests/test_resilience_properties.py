"""Hypothesis properties of the resilient run layer.

Two layers are exercised:

* **Ledger interleavings** — random per-cell outcome scripts (fail,
  timeout, killed-after-artifact, succeed) are replayed against a real
  :class:`~repro.resilience.ledger.RunLedger` on disk across simulated
  sessions (the ledger is reopened between each, exactly as a resumed
  process would).  Invariants: a completed model is never lost, metrics
  are counted exactly once per done cell no matter how many resumes
  happen, and attempt counts are monotonic.
* **Real runner** — fault scripts whose failures stay within the retry
  budget never change the output library bytes.
"""

import json
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.camodel import generate_ca_model
from repro.library import SOI28, build_cell
from repro.resilience.faults import FaultPlan, FaultRule
from repro.resilience.ledger import (
    DONE,
    FAILED,
    PENDING,
    QUARANTINED,
    RunLedger,
)
from repro.resilience.runner import canonical_model_dict, run_library

# ----------------------------------------------------------------------
# Ledger interleaving property
# ----------------------------------------------------------------------

OPTIONS = {"policy": "exhaustive", "delay_detection": True}

#: outcomes a scripted attempt can take before the cell finally succeeds
FAIL = "fail"
TIMEOUT = "timeout"
KILLED_AFTER_ARTIFACT = "killed-after-artifact"

#: retry budget per simulated session (mirrors the runner's default of
#: ``retries=1`` → two attempts per session)
SESSION_ATTEMPTS = 2


@pytest.fixture(scope="module")
def model_dict():
    cell = build_cell(SOI28, "NAND2", 1)
    model = generate_ca_model(cell, params=SOI28.electrical)
    return canonical_model_dict(model)


def _artifact_for(model_dict, name):
    data = dict(model_dict)
    data["cell"] = name
    return data


outcome = st.sampled_from([FAIL, TIMEOUT, KILLED_AFTER_ARTIFACT])
scripts_strategy = st.dictionaries(
    keys=st.sampled_from(["C0", "C1", "C2", "C3"]),
    values=st.lists(outcome, max_size=3),
    min_size=1,
    max_size=4,
)


class _SessionKilled(Exception):
    """The simulated parent process died mid-session."""


def _simulate_session(run_dir, cells, scripts, cursor, model_dict, resume):
    """Replay one parent-process lifetime against the on-disk ledger."""
    ledger = RunLedger.open(run_dir, OPTIONS, cells, resume=resume)
    ledger.recover()
    if resume:
        ledger.requeue_quarantined()
    session_attempts = {name: 0 for name, _ in cells}
    try:
        for name, _ in cells:
            while ledger.state(name) in (PENDING, FAILED):
                if session_attempts[name] >= SESSION_ATTEMPTS:
                    ledger.mark_quarantined(name)
                    break
                attempt = ledger.mark_running(name)
                session_attempts[name] += 1
                script = scripts.get(name, [])
                step = cursor.get(name, 0)
                action = script[step] if step < len(script) else "ok"
                cursor[name] = step + 1
                if action == FAIL:
                    ledger.record_failure(
                        name, {"kind": "exception", "attempt": attempt}
                    )
                elif action == TIMEOUT:
                    ledger.record_failure(
                        name, {"kind": "timeout", "attempt": attempt}
                    )
                elif action == KILLED_AFTER_ARTIFACT:
                    # Worker finished and checkpointed; the parent died
                    # before it could record the done transition.
                    _write_artifact(ledger, name, model_dict)
                    raise _SessionKilled(name)
                else:
                    _write_artifact(ledger, name, model_dict)
                    ledger.mark_done(name, seconds=1.0, metrics={"work": 1.0})
    except _SessionKilled:
        return False
    return True


def _write_artifact(ledger, name, model_dict):
    artifact = _artifact_for(model_dict, name)
    ledger.artifact_path(name).write_text(json.dumps(artifact, indent=2))
    ledger.sidecar_path(name).write_text(
        json.dumps({"seconds": 1.0, "counters": {"work": 1.0}})
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(scripts=scripts_strategy)
def test_interleavings_never_lose_models_or_double_count(
    scripts, model_dict
):
    run_dir = Path(tempfile.mkdtemp(prefix="resilience-prop-"))
    try:
        names = sorted(scripts)
        cells = [(name, f"key-{name}") for name in names]
        cursor = {}
        ever_done = set()
        attempts_seen = {name: 0 for name in names}
        sessions = 0
        # Every session consumes at least one scripted outcome or
        # quarantines/completes a cell, so this terminates well inside
        # the bound.
        bound = sum(len(s) for s in scripts.values()) + len(names) + 4
        while sessions <= bound:
            finished = _simulate_session(
                run_dir, cells, scripts, cursor, model_dict,
                resume=sessions > 0,
            )
            sessions += 1
            ledger = RunLedger.load(run_dir)
            for name in names:
                record = ledger.cells[name]
                # attempts are monotonic across resumes
                assert int(record["attempts"]) >= attempts_seen[name]
                attempts_seen[name] = int(record["attempts"])
            # recovery promotes checkpointed-but-unrecorded cells, and
            # a model that ever completed is never lost afterwards
            probe = RunLedger.open(run_dir, OPTIONS, cells, resume=True)
            probe.recover()
            for name in names:
                if probe.state(name) == DONE:
                    ever_done.add(name)
                assert name not in ever_done or probe.state(name) == DONE
                if probe.state(name) == DONE:
                    assert probe.validate_artifact(name)
            if finished and not probe.names_in(PENDING, FAILED):
                break
        final = RunLedger.open(run_dir, OPTIONS, cells, resume=True)
        final.recover()
        done = set(final.names_in(DONE))
        quarantined = set(final.names_in(QUARANTINED))
        assert done | quarantined == set(names)
        # each done cell's counters are counted exactly once, no matter
        # how many sessions, retries, or recoveries happened
        totals = final.metrics_total()
        assert totals.get("work", 0.0) == float(len(done))
        # done artifacts are the canonical bytes a clean run would write
        for name in done:
            data = json.loads(final.artifact_path(name).read_text())
            assert data == _artifact_for(model_dict, name)
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)


# ----------------------------------------------------------------------
# Real-runner property: in-budget faults never change the output bytes
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def runner_cells():
    return [build_cell(SOI28, f, 1) for f in ("NAND2", "NOR2")]


@pytest.fixture(scope="module")
def runner_baseline(tmp_path_factory, runner_cells):
    run_dir = tmp_path_factory.mktemp("prop-clean")
    output = run_dir / "library.json"
    result = run_library(
        runner_cells, run_dir=run_dir, processes=2,
        retry_backoff=0.0, output=output,
    )
    assert result.complete
    return output.read_bytes()


failing_attempts = st.sets(st.integers(min_value=0, max_value=2), max_size=3)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    nand_fails=failing_attempts,
    nor_fails=failing_attempts,
)
def test_in_budget_faults_preserve_output_bytes(
    nand_fails, nor_fails, runner_cells, runner_baseline
):
    rules = []
    if nand_fails:
        rules.append(
            FaultRule(
                cell="S28_NAND2X1", mode="raise",
                attempts=tuple(sorted(nand_fails)),
            )
        )
    if nor_fails:
        rules.append(
            FaultRule(
                cell="S28_NOR2X1", mode="raise",
                attempts=tuple(sorted(nor_fails)),
            )
        )
    run_dir = Path(tempfile.mkdtemp(prefix="resilience-runner-prop-"))
    try:
        output = run_dir / "library.json"
        result = run_library(
            runner_cells,
            run_dir=run_dir / "run",
            processes=2,
            retries=3,  # 4 attempts/session > max 3 scripted failures
            retry_backoff=0.0,
            fault_plan=FaultPlan(rules=rules),
            output=output,
        )
        assert result.complete
        assert output.read_bytes() == runner_baseline
        ledger = RunLedger.load(run_dir / "run")
        for name, fails in (
            ("S28_NAND2X1", nand_fails),
            ("S28_NOR2X1", nor_fails),
        ):
            first_ok = min(i for i in range(4) if i not in fails)
            assert int(ledger.cells[name]["attempts"]) == first_ok + 1
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)
