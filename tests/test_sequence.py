"""Tests for multi-pattern sequence simulation (rolling state)."""

import pytest

from repro.library import SOI28, build_cell
from repro.simulation import CellSimulator, DefectEffect, SimulationError


class TestGoldenSequence:
    def test_transitions_reported(self, nand2, nand2_sim):
        responses = nand2_sim.simulate_sequence([(0, 1), (1, 1), (0, 1)])
        assert [str(v) for v in responses] == ["1", "F", "R"]

    def test_constant_sequence(self, nand2_sim):
        responses = nand2_sim.simulate_sequence([(1, 1)] * 3)
        assert [str(v) for v in responses] == ["0", "0", "0"]

    def test_matches_two_pattern_words(self, nand2_sim):
        from repro.logic import parse_word

        seq = nand2_sim.simulate_sequence([(0, 1), (1, 1)])
        word = nand2_sim.output_response(parse_word("R1"))
        assert seq[1] is word

    def test_wrong_arity(self, nand2_sim):
        with pytest.raises(SimulationError):
            nand2_sim.simulate_sequence([(1,)])

    def test_empty_sequence(self, nand2_sim):
        assert nand2_sim.simulate_sequence([]) == []


class TestDefectiveSequence:
    def test_stuck_open_retains_across_many_steps(self, nand2):
        bottom = next(
            t for t in nand2.transistors if t.is_nmos and t.source == "VSS"
        )
        sim = CellSimulator(
            nand2, SOI28.electrical, DefectEffect(removed=frozenset({bottom.name}))
        )
        responses = sim.simulate_sequence(
            [(0, 1), (1, 1), (1, 1), (0, 1), (1, 1)]
        )
        # the output can never fall: once initialized high it stays high
        assert [str(v) for v in responses] == ["1", "1", "1", "1", "1"]

    def test_rolling_state_differs_from_pairwise(self, nand2):
        """Step 3 must see step 2's *rolling* state, not a fresh solve."""
        bottom = next(
            t for t in nand2.transistors if t.is_nmos and t.source == "VSS"
        )
        sim = CellSimulator(
            nand2, SOI28.electrical, DefectEffect(removed=frozenset({bottom.name}))
        )
        # without history the floating 11-state would be X; with rolling
        # retention it keeps the initialized value
        cold = sim.simulate_sequence([(1, 1)])
        warm = sim.simulate_sequence([(0, 1), (1, 1), (1, 1)])
        assert str(cold[0]) == "X"
        assert str(warm[2]) == "1"

    def test_gate_open_lag_in_sequence(self, nand2):
        bottom = next(
            t for t in nand2.transistors if t.is_nmos and t.source == "VSS"
        )
        sim = CellSimulator(
            nand2, SOI28.electrical, DefectEffect(gate_open=frozenset({bottom.name}))
        )
        # B falls at step 2 but the gate-open device lags one pattern:
        # at step 2 it still conducts (prev B=1), so Z follows golden;
        # at step 3 it uses prev B=0 -> off
        responses = sim.simulate_sequence([(1, 1), (1, 0), (1, 1)])
        golden = CellSimulator(nand2, SOI28.electrical).simulate_sequence(
            [(1, 1), (1, 0), (1, 1)]
        )
        assert [str(v) for v in golden] == ["0", "R", "F"]
        assert str(responses[2]) != "F"  # the refall is lost or delayed
