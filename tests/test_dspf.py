"""Unit tests for DSPF-lite annotation and parasitic reduction."""

import pytest

from repro.library import SOI28, build_cell
from repro.library.catalog import CATALOG
from repro.simulation import logic_check
from repro.spice import SpiceSyntaxError
from repro.spice.dspf import annotate, reduce_parasitics


class TestAnnotate:
    def test_contains_parasitics(self, nand2):
        text = annotate(nand2)
        assert "R0" in text and "C" in text
        assert "__1" in text  # segmented nets

    def test_segment_count(self, nand2):
        text = annotate(nand2, segments_per_net=3)
        assert "__2" in text

    def test_ports_unsegmented(self, nand2):
        text = annotate(nand2)
        header = text.splitlines()[0]
        assert "__" not in header


class TestReduce:
    @pytest.mark.parametrize("function", ["NAND2", "AOI21", "AND2", "XOR2"])
    def test_roundtrip_preserves_behaviour(self, function):
        cell = build_cell(SOI28, function, 1)
        back = reduce_parasitics(annotate(cell))
        assert back.n_transistors == cell.n_transistors
        assert back.inputs == cell.inputs
        assert not logic_check(back, CATALOG[function].expr(back.inputs),
                               SOI28.electrical)

    def test_roundtrip_more_segments(self):
        cell = build_cell(SOI28, "OAI21", 1)
        back = reduce_parasitics(annotate(cell, segments_per_net=4))
        assert not logic_check(back, CATALOG["OAI21"].expr(back.inputs),
                               SOI28.electrical)

    def test_large_resistor_rejected(self, nand2):
        text = annotate(nand2, resistance=50_000.0)
        with pytest.raises(SpiceSyntaxError):
            reduce_parasitics(text)

    def test_threshold_configurable(self, nand2):
        text = annotate(nand2, resistance=50_000.0)
        back = reduce_parasitics(text, max_resistance=100_000.0)
        assert back.n_transistors == nand2.n_transistors

    def test_requires_subckt(self):
        with pytest.raises(SpiceSyntaxError):
            reduce_parasitics("M0 a b c d nmos\n")

    def test_unsupported_element(self, nand2):
        text = annotate(nand2).replace(".ENDS", "L1 Z VSS 1n\n.ENDS")
        with pytest.raises(SpiceSyntaxError):
            reduce_parasitics(text)

    def test_renaming_matches_clean_cell(self, nand2):
        """The canonical form must be identical whether the cell came in
        clean or through DSPF reduction (Fig. 1's input path)."""
        from repro.camatrix import rename_transistors

        clean = rename_transistors(nand2, SOI28.electrical)
        reduced = rename_transistors(
            reduce_parasitics(annotate(nand2)), SOI28.electrical
        )
        assert clean.signature == reduced.signature
        assert sorted(clean.activity.items()) == sorted(reduced.activity.items())
