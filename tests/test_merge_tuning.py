"""Tests for per-output model merging and hyper-parameter tuning."""

import numpy as np
import pytest

from repro.camodel import generate_multi
from repro.camodel.merge import MergeError, merge_models
from repro.learning.tuning import TuningResult, grid_search
from repro.library import SOI28, build_cell


@pytest.fixture(scope="module")
def ha1_models():
    cell = build_cell(SOI28, "HA1", 1)
    return cell, generate_multi(cell, SOI28.electrical, policy="static")


class TestMerge:
    def test_union_dominates(self, ha1_models):
        _cell, models = ha1_models
        merged = merge_models(models)
        for port, table in merged.per_output.items():
            assert (merged.detection >= table).all()
        for model in models.values():
            assert merged.coverage() >= model.coverage()

    def test_observing_outputs(self, ha1_models):
        _cell, models = ha1_models
        merged = merge_models(models)
        seen_ports = set()
        for name in merged.defect_names:
            seen_ports.update(merged.observing_outputs(name))
        assert seen_ports == {"Z", "CO"}

    def test_exclusive_defects_exist(self, ha1_models):
        """The carry chain has defects only the CO output exposes —
        the whole reason per-output characterization is mandatory."""
        _cell, models = ha1_models
        merged = merge_models(models)
        assert merged.exclusive_defects("CO")
        assert merged.exclusive_defects("Z")

    def test_mismatched_universe_rejected(self, ha1_models, nand2_model):
        _cell, models = ha1_models
        with pytest.raises(MergeError):
            merge_models({"Z": models["Z"], "CO": nand2_model})

    def test_empty_rejected(self):
        with pytest.raises(MergeError):
            merge_models({})


class TestGridSearch:
    @pytest.fixture(scope="class")
    def samples(self):
        from repro.camodel import generate_ca_model
        from repro.learning import build_samples

        cells = [build_cell(SOI28, "NAND2", 1, f) for f in SOI28.flavors]
        return build_samples(
            [(c, generate_ca_model(c, params=SOI28.electrical)) for c in cells],
            SOI28.electrical,
        )

    def test_ranking_sorted(self, samples):
        result = grid_search(
            samples,
            grid={"n_estimators": [2, 6], "max_features": ["sqrt", 0.5]},
        )
        scores = [score for _p, score in result.ranking]
        assert scores == sorted(scores, reverse=True)
        assert len(result.ranking) == 4

    def test_best_params_reasonable(self, samples):
        result = grid_search(
            samples,
            grid={"max_features": ["sqrt", 0.5]},
            base_params={"n_estimators": 6},
        )
        assert result.best_score > 0.95
        # the large feature fraction should win on this near-noiseless task
        assert result.best_params["max_features"] == 0.5

    def test_empty_result_raises(self):
        with pytest.raises(ValueError):
            TuningResult().best_params
