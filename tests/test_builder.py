"""Unit tests for technologies and library building."""

import pytest

from repro.library import (
    C28,
    C40,
    SOI28,
    TECHNOLOGIES,
    Flavor,
    build_cell,
    build_library,
    build_preset,
    get_technology,
)
from repro.library.technology import C28_EXCLUSIVE, C40_EXCLUSIVE, COMMON


class TestTechnology:
    def test_registry(self):
        assert set(TECHNOLOGIES) == {"soi28", "c40", "c28"}
        assert get_technology("c40") is C40
        with pytest.raises(KeyError):
            get_technology("c14")

    def test_pin_styles_differ(self):
        assert SOI28.pin_names(2) == ["A", "B"]
        assert C40.pin_names(2) == ["A1", "A2"]
        assert C28.pin_names(2) == ["IN1", "IN2"]

    def test_cell_names(self):
        assert SOI28.cell_name("NAND2", 2, SOI28.flavors[0]) == "S28_NAND2X2"
        assert SOI28.cell_name("NAND2", 1, SOI28.flavors[1]) == "S28_NAND2X1_LVT"

    def test_shuffle_seed_deterministic_and_distinct(self):
        a = SOI28.shuffle_seed("S28_NAND2X1")
        assert a == SOI28.shuffle_seed("S28_NAND2X1")
        assert a != C40.shuffle_seed("S28_NAND2X1")

    def test_function_partition(self):
        assert set(C28_EXCLUSIVE).isdisjoint(SOI28.functions)
        assert set(C40_EXCLUSIVE).isdisjoint(SOI28.functions)
        assert set(COMMON) <= set(SOI28.functions)
        assert set(COMMON) <= set(C40.functions)
        assert set(COMMON) <= set(C28.functions)

    def test_drive_styles(self):
        assert SOI28.drive_style == "merged"
        assert C40.drive_style == "split"


class TestBuildCell:
    def test_names_and_metadata(self):
        cell = build_cell(C40, "NAND2", 2)
        assert cell.name == "C40_NAND2X2"
        assert cell.technology == "c40"
        assert cell.function == "NAND2"
        assert cell.inputs == ["A1", "A2"]
        assert cell.power == "VDD" and cell.ground == "GND"

    def test_flavor_scales_width(self):
        std = build_cell(SOI28, "INV", 1, SOI28.flavors[0])
        lvt = build_cell(SOI28, "INV", 1, SOI28.flavors[1])
        assert lvt.transistors[0].w > std.transistors[0].w

    def test_transistor_order_differs_across_technologies(self):
        a = build_cell(SOI28, "AOI21", 1)
        b = build_cell(C28, "AOI21", 1)
        type_order_a = [t.ttype for t in a.transistors]
        type_order_b = [t.ttype for t in b.transistors]
        # same multiset of devices, but (generally) different ordering
        assert sorted(type_order_a) == sorted(type_order_b)


class TestBuildLibrary:
    def test_filters(self):
        lib = build_library(SOI28, functions=("INV", "NAND2"), drives=(1,),
                            flavors=(Flavor("STD"),))
        assert len(lib) == 2
        assert lib.functions() == ["INV", "NAND2"]

    def test_max_inputs(self):
        lib = build_library(SOI28, drives=(1,), flavors=(Flavor("STD"),),
                            max_inputs=2)
        assert all(c.n_inputs <= 2 for c in lib)

    def test_group_keys(self):
        lib = build_preset("soi28", "tiny")
        for key, cells in lib.by_group().items():
            for cell in cells:
                assert cell.group_key == key

    def test_cell_lookup(self):
        lib = build_preset("soi28", "tiny")
        name = lib.cells[0].name
        assert lib.cell(name).name == name
        with pytest.raises(KeyError):
            lib.cell("NOPE")

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            build_preset("soi28", "giga")

    def test_composition_ratios(self):
        sizes = {t: len(build_preset(t, "default")) for t in ("soi28", "c40", "c28")}
        # 28SOI is the big training library, the other two roughly half
        assert sizes["soi28"] > sizes["c40"] > 0
        assert sizes["soi28"] > sizes["c28"] > 0
        assert sizes["c40"] + sizes["c28"] > sizes["soi28"]
