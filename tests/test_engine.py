"""Unit tests for the cell simulation engine (responses, dynamics, caching)."""

import pytest

from repro.library import SOI28, build_cell
from repro.logic import V4, parse_word
from repro.simulation import CellSimulator, DefectEffect, SimulationError, golden_simulator


class TestGoldenResponses:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("00", "1"),
            ("01", "1"),
            ("10", "1"),
            ("11", "0"),
            ("R1", "F"),
            ("1R", "F"),
            ("F1", "R"),
            ("RF", "1"),
            ("RR", "F"),
            ("R0", "1"),
        ],
    )
    def test_nand2(self, nand2_sim, word, expected):
        assert str(nand2_sim.output_response(parse_word(word))) == expected

    def test_waveforms_include_all_nets(self, nand2, nand2_sim):
        waves = nand2_sim.net_waveforms(parse_word("R1"))
        assert set(waves) == nand2.nets()
        assert waves["A"] is V4.RISE
        assert waves["B"] is V4.ONE

    def test_static_net_codes(self, nand2, nand2_sim):
        codes = nand2_sim.static_net_codes((1, 1))
        assert codes[nand2.outputs[0]] == 0
        assert codes[nand2.power] == 1

    def test_wrong_arity_raises(self, nand2_sim):
        with pytest.raises(SimulationError):
            nand2_sim.output_response(parse_word("111"))

    def test_x_stimulus_rejected(self, nand2_sim):
        with pytest.raises(SimulationError):
            nand2_sim.output_response((V4.X, V4.ONE))


class TestCaching:
    def test_memoryless_cache_bounds_solves(self, nand2):
        sim = golden_simulator(nand2, SOI28.electrical)
        from repro.camodel import stimuli

        for word in stimuli(2, "exhaustive"):
            sim.output_response(word)
        # golden: nothing floats -> only the 4 static phases are solved
        assert sim.solve_count == 4

    def test_defective_cache_reuses_pairs(self, nand2):
        nmos = next(t for t in nand2.transistors if t.is_nmos and t.source == "VSS")
        sim = CellSimulator(
            nand2, SOI28.electrical, DefectEffect(removed=frozenset({nmos.name}))
        )
        from repro.camodel import stimuli

        words = stimuli(2, "exhaustive")
        for word in words:
            sim.output_response(word)
        first = sim.solve_count
        for word in words:
            sim.output_response(word)
        assert sim.solve_count == first  # fully cached


class TestDefectBehaviour:
    def test_stuck_open_two_pattern_detection(self, nand2, nand2_sim):
        nmos = next(t for t in nand2.transistors if t.is_nmos and t.source == "VSS")
        defective = CellSimulator(
            nand2, SOI28.electrical, DefectEffect(removed=frozenset({nmos.name}))
        )
        word = parse_word("R1")
        assert str(nand2_sim.output_response(word)) == "F"
        assert str(defective.output_response(word)) == "1"  # retained high

    def test_stuck_open_static_gives_x(self, nand2):
        nmos = next(t for t in nand2.transistors if t.is_nmos and t.source == "VSS")
        defective = CellSimulator(
            nand2, SOI28.electrical, DefectEffect(removed=frozenset({nmos.name}))
        )
        assert str(defective.output_response(parse_word("11"))) == "X"

    def test_short_flips_static_output(self, nand2, nand2_sim):
        pmos = next(t for t in nand2.transistors if t.is_pmos)
        defective = CellSimulator(
            nand2,
            SOI28.electrical,
            DefectEffect(
                bridges=((pmos.drain, pmos.source, SOI28.electrical.short_resistance),)
            ),
        )
        word = parse_word("11")
        assert str(nand2_sim.output_response(word)) == "0"
        assert str(defective.output_response(word)) == "1"

    def test_benign_effect_equals_golden(self, nand2, nand2_sim):
        same = CellSimulator(nand2, SOI28.electrical, DefectEffect())
        for text in ("00", "11", "R1", "F0"):
            word = parse_word(text)
            assert same.output_response(word) is nand2_sim.output_response(word)


class TestDriveResistance:
    def test_golden_resistance_positive_finite(self, nand2_sim):
        r = nand2_sim.output_drive_resistance(parse_word("1R"))
        assert 0 < r < 1e9

    def test_static_word_measures_holding_path(self, nand2_sim):
        r = nand2_sim.output_drive_resistance(parse_word("11"))
        assert 0 < r < 1e9

    def test_floating_output_is_infinite(self, nand2):
        nmos = next(t for t in nand2.transistors if t.is_nmos and t.source == "VSS")
        defective = CellSimulator(
            nand2, SOI28.electrical, DefectEffect(removed=frozenset({nmos.name}))
        )
        assert defective.output_drive_resistance(parse_word("11")) == float("inf")

    def test_lost_finger_raises_resistance(self):
        cell = build_cell(SOI28, "INV", 2)  # two parallel fingers
        golden = golden_simulator(cell, SOI28.electrical)
        nmos = next(t for t in cell.transistors if t.is_nmos)
        defective = CellSimulator(
            cell, SOI28.electrical, DefectEffect(removed=frozenset({nmos.name}))
        )
        word = parse_word("R")  # output falls through the NMOS side
        r_gold = golden.output_drive_resistance(word)
        r_def = defective.output_drive_resistance(word)
        assert r_def == pytest.approx(2 * r_gold, rel=0.01)

    def test_logic_value_unchanged_by_lost_finger(self):
        cell = build_cell(SOI28, "INV", 2)
        nmos = next(t for t in cell.transistors if t.is_nmos)
        defective = CellSimulator(
            cell, SOI28.electrical, DefectEffect(removed=frozenset({nmos.name}))
        )
        assert str(defective.output_response(parse_word("R"))) == "F"


class TestDriveCacheKeying:
    """The drive cache must key on stimulus vectors, never on id() of the
    solved code lists (recycled ids of freed lists silently alias)."""

    def test_distinct_words_get_distinct_entries(self):
        cell = build_cell(SOI28, "INV", 1)
        sim = golden_simulator(cell, SOI28.electrical)
        # NMOS and PMOS on-resistances differ, so the two transitions must
        # never share a cache entry.
        r_fall = sim.output_drive_resistance(parse_word("R"))
        r_rise = sim.output_drive_resistance(parse_word("F"))
        assert r_fall != r_rise
        assert len(sim._drive_cache) == 2
        for key in sim._drive_cache:
            first, second, out = key
            assert isinstance(first, tuple) and isinstance(second, tuple)
            assert isinstance(out, int)

    def test_repeated_queries_are_stable_across_gc_churn(self):
        import gc

        cell = build_cell(SOI28, "NAND2", 1)
        sim = golden_simulator(cell, SOI28.electrical)
        words = [parse_word(t) for t in ("1R", "R1", "11", "F1", "1F")]
        expected = {t: sim.output_drive_resistance(w) for t, w in zip(
            ("1R", "R1", "11", "F1", "1F"), words
        )}
        # Churn the allocator so freed list ids get recycled, then re-query
        # in a different order; an id()-keyed cache aliases here.
        for _ in range(50):
            gc.collect()
            [list(range(64)) for _ in range(64)]
        for text, word in reversed(list(zip(expected, words))):
            assert sim.output_drive_resistance(word) == expected[text]

    def test_cache_hit_counted(self, nand2):
        sim = golden_simulator(nand2, SOI28.electrical)
        word = parse_word("1R")
        sim.output_drive_resistance(word)
        before = sim.cache_hit_count
        sim.output_drive_resistance(word)
        assert sim.cache_hit_count > before
