"""Integration tests: obs instrumentation across generation, flow, stats.

Pins down the subsystem's load-bearing guarantees:

* a 2-worker parallel generation produces one coherent span tree (chunk
  spans from every worker, no orphaned parents) and byte-identical
  detection output with tracing on vs. off;
* ``GenerationStats`` is a view over the metrics registry (same numbers,
  single source of truth);
* the hybrid flow's ledger ML seconds equal the per-cell span windows;
* ``GenerationStats.from_dict`` names unknown keys in a structured
  warning event and still round-trips.
"""

import pytest

from repro import obs
from repro.camodel import generate_ca_model, generate_library
from repro.camodel.stats import (
    GenerationStats,
    M_CACHE_HITS,
    M_DEFECT_SECONDS,
    M_GOLDEN_SECONDS,
    M_SIMULATED,
    M_SKIPPED,
    M_SOLVES,
    M_TOTAL_SECONDS,
)
from repro.flow import HybridFlow
from repro.learning import build_samples
from repro.library import C28, SOI28, build_cell


def traced_state():
    """Fresh enabled scope for one test."""
    return dict(
        tracer=obs.Tracer(enabled=True),
        metrics=obs.Metrics(),
        events=obs.EventLog(obs.ListSink()),
    )


class TestParallelTraceMerge:
    def test_two_worker_trace_is_one_coherent_tree(self, nand2):
        with obs.scoped(**traced_state()) as state:
            traced = generate_ca_model(
                nand2, params=SOI28.electrical, parallelism=2
            )
            spans = state.tracer.export()
        plain = generate_ca_model(nand2, params=SOI28.electrical, parallelism=2)

        # tracing must not change the result: byte-identical detection
        assert traced.detection.tobytes() == plain.detection.tobytes()

        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["camodel.generate"]) == 1
        assert len(by_name["generate.defects"]) == 1
        assert len(by_name["generate.chunk"]) == 2
        assert len(by_name["generate.merge"]) == 1
        # golden pass: once in the parent, once per worker
        assert len(by_name["generate.golden"]) == 3

        # all chunk spans hang under the defects span, from worker PIDs
        defects_span = by_name["generate.defects"][0]
        chunk_pids = set()
        for chunk in by_name["generate.chunk"]:
            assert chunk["parent_id"] == defects_span["span_id"]
            chunk_pids.add(chunk["pid"])
        assert defects_span["pid"] not in chunk_pids
        assert {c["attrs"]["chunk"] for c in by_name["generate.chunk"]} == {0, 1}

        # no span references a parent that is not in the merged buffer
        assert obs.orphan_parents(spans) == []

        # chunk wall times stay inside the defect-loop window and cover it:
        # every chunk fits in the window, and summed busy time accounts for
        # (at least a worker-count-normalized share of) defect_seconds.
        defect_seconds = traced.stats.defect_seconds
        durations = [c["duration"] for c in by_name["generate.chunk"]]
        slack = 0.25
        for duration in durations:
            assert duration <= defect_seconds + slack
        assert sum(durations) <= 2 * defect_seconds + slack
        assert sum(durations) >= 0.25 * defect_seconds
        assert defects_span["duration"] == pytest.approx(
            defect_seconds, abs=0.1
        )

    def test_disabled_tracing_buffers_nothing(self, nand2):
        with obs.scoped(
            tracer=obs.Tracer(enabled=False), metrics=obs.Metrics()
        ) as state:
            generate_ca_model(nand2, params=SOI28.electrical, parallelism=2)
            assert state.tracer.export() == []

    def test_batch_pool_reparents_under_library_span(self):
        cells = [build_cell(SOI28, fn, 1) for fn in ("NAND2", "NOR2")]
        with obs.scoped(**traced_state()) as state:
            models = generate_library(
                cells, params=SOI28.electrical, processes=2
            )
            spans = state.tracer.export()
            registry = state.metrics
        assert set(models) == {c.name for c in cells}
        library_span = next(
            s for s in spans if s["name"] == "camodel.generate_library"
        )
        generate_spans = [s for s in spans if s["name"] == "camodel.generate"]
        assert len(generate_spans) == 2
        for span in generate_spans:
            assert span["parent_id"] == library_span["span_id"]
            assert span["pid"] != library_span["pid"]
        assert obs.orphan_parents(spans) == []
        # worker metric deltas merged into the parent registry
        total_simulated = sum(
            m.stats.simulated_defects for m in models.values()
        )
        assert registry.get(M_SIMULATED) == total_simulated


class TestStatsAreMetricsView:
    def test_stats_equal_registry_deltas(self, nand2):
        with obs.scoped(metrics=obs.Metrics()) as state:
            model = generate_ca_model(nand2, params=SOI28.electrical)
            registry = state.metrics
        stats = model.stats
        assert stats.solves == registry.get(M_SOLVES)
        assert stats.cache_hits == registry.get(M_CACHE_HITS)
        assert stats.simulated_defects == registry.get(M_SIMULATED)
        assert stats.skipped_defects == registry.get(M_SKIPPED)
        assert stats.golden_seconds == registry.get(M_GOLDEN_SECONDS)
        assert stats.defect_seconds == registry.get(M_DEFECT_SECONDS)
        assert stats.total_seconds == registry.get(M_TOTAL_SECONDS)
        assert stats.simulated_defects + stats.skipped_defects == model.n_defects

    def test_registry_accumulates_across_cells(self):
        cells = [build_cell(SOI28, "NAND2", 1), build_cell(SOI28, "NOR2", 1)]
        with obs.scoped(metrics=obs.Metrics()) as state:
            models = [
                generate_ca_model(c, params=SOI28.electrical) for c in cells
            ]
            registry = state.metrics
        assert registry.get(M_SOLVES) == sum(m.stats.solves for m in models)
        assert registry.get(M_SIMULATED) == sum(
            m.stats.simulated_defects for m in models
        )


class TestHybridLedgerMatchesSpans:
    @pytest.fixture(scope="class")
    def train_samples(self):
        cells = [
            build_cell(SOI28, "NAND2", drive, flavor)
            for drive in (1, 2)
            for flavor in SOI28.flavors[:2]
        ]
        return build_samples(
            [(c, generate_ca_model(c, params=SOI28.electrical)) for c in cells],
            SOI28.electrical,
        )

    def test_ml_ledger_seconds_equal_span_windows(self, train_samples):
        target = build_cell(C28, "NAND2", 1)
        with obs.scoped(**traced_state()) as state:
            flow = HybridFlow(train_samples, params=C28.electrical)
            decision = flow.generate(target)
            spans = state.tracer.export()
            sink = state.events.sink
        assert decision.route == "ml"

        cell_span = next(s for s in spans if s["name"] == "flow.cell")
        # the seconds the ledger recorded are the span's own window
        assert cell_span["attrs"]["seconds"] == decision.seconds
        assert flow.report.ledger.ml_seconds == decision.seconds
        assert cell_span["duration"] == pytest.approx(
            decision.seconds, abs=0.05
        )
        # the ML path decomposes inside the window
        assert {s["name"] for s in spans} >= {
            "flow.cell",
            "flow.structure",
            "flow.ml",
            "camatrix.build",
            "learning.fit",
            "learning.predict",
        }
        assert obs.orphan_parents(spans) == []

        # routing decision surfaced as a structured event with a reason
        route_events = sink.named("hybrid.route")
        assert len(route_events) == 1
        fields = route_events[0].fields
        assert fields["cell"] == target.name
        assert fields["route"] == "ml"
        assert "match" in fields and fields["reason"]

    def test_simulation_route_event_has_reason(self, train_samples):
        target = build_cell(SOI28, "AOI21", 1)  # no group peer in training
        with obs.scoped(**traced_state()) as state:
            flow = HybridFlow(train_samples, params=SOI28.electrical)
            decision = flow.generate(target)
            sink = state.events.sink
        assert decision.route == "simulate"
        (event,) = sink.named("hybrid.route")
        assert event.fields["route"] == "simulate"
        assert "no structural or similar match" in event.fields["reason"]


class TestStatsUnknownKeys:
    def test_unknown_keys_warn_and_roundtrip(self):
        stats = GenerationStats(workers=2, solves=10, cache_hits=5)
        payload = stats.to_dict()
        payload["future_field"] = 123
        payload["zz_other"] = "x"
        sink = obs.ListSink()
        with obs.scoped(events=obs.EventLog(sink)):
            restored = GenerationStats.from_dict(payload)
        # round-trips the known fields
        assert restored == stats
        (event,) = sink.named("stats.unknown_keys")
        assert event.level == "warning"
        assert event.fields["keys"] == ["future_field", "zz_other"]
        assert "future_field" in event.fields["msg"]

    def test_known_keys_emit_nothing(self):
        stats = GenerationStats(workers=1, solves=1)
        sink = obs.ListSink()
        with obs.scoped(events=obs.EventLog(sink)):
            GenerationStats.from_dict(stats.to_dict())
        assert sink.events == []

    def test_from_metrics_view(self):
        counters = {
            M_SOLVES: 11,
            M_CACHE_HITS: 4,
            M_SIMULATED: 7,
            M_SKIPPED: 3,
            M_GOLDEN_SECONDS: 0.25,
            M_DEFECT_SECONDS: 1.5,
            M_TOTAL_SECONDS: 2.0,
        }
        stats = GenerationStats.from_metrics(counters, workers=4)
        assert stats.workers == 4
        assert stats.solves == 11 and stats.cache_hits == 4
        assert stats.simulated_defects == 7 and stats.skipped_defects == 3
        assert stats.golden_seconds == 0.25
        assert stats.defect_seconds == 1.5
        assert stats.merge_seconds == 0.0
        assert stats.total_seconds == 2.0
