"""Unit tests for CA-matrix assembly and the pipeline helpers."""

import numpy as np
import pytest

from repro.camatrix import (
    FREE_ROW,
    build_matrix,
    canonical_pin_order,
    encode_activity,
    encode_symbol,
    group_matrices,
    inference_matrix,
    matrix_columns,
    pin_signature,
    reorder_word,
    stack,
    training_matrix,
)
from repro.camatrix.activity import activity_values
from repro.camatrix.branches import extract_branches
from repro.library import SOI28, C40, build_cell
from repro.logic import V4, parse_word


class TestEncoding:
    def test_symbol_codes(self):
        assert encode_symbol(V4.ZERO) == 0
        assert encode_symbol(V4.ONE) == 1
        assert encode_symbol(V4.RISE) == 2
        assert encode_symbol(V4.FALL) == 3
        assert encode_symbol(V4.X) == -128

    def test_activity_pmos_marked_negative(self):
        assert encode_activity(V4.ONE, is_nmos=True) == 1
        assert encode_activity(V4.ONE, is_nmos=False) == -2
        assert encode_activity(V4.ZERO, is_nmos=False) == -1

    def test_activity_codes_disjoint(self):
        nmos = {encode_activity(v, True) for v in (V4.ZERO, V4.ONE, V4.RISE, V4.FALL)}
        pmos = {encode_activity(v, False) for v in (V4.ZERO, V4.ONE, V4.RISE, V4.FALL)}
        assert nmos.isdisjoint(pmos)


class TestColumns:
    def test_layout(self):
        cols = matrix_columns(2, ["N0", "P0"], structural_features=False)
        assert cols == [
            "IN0", "IN1", "RESP", "N0", "P0",
            "N0_D", "N0_G", "N0_S", "N0_B",
            "P0_D", "P0_G", "P0_S", "P0_B",
        ]

    def test_structural_layout(self):
        cols = matrix_columns(1, ["N0"], structural_features=True)
        assert "N0_LVL" in cols and "N0_SD" in cols and "N0_PW" in cols


class TestBuildMatrix:
    def test_training_shape(self, nand2, nand2_model):
        m = training_matrix(nand2, nand2_model, SOI28.electrical)
        expected_rows = (nand2_model.n_defects + 1) * nand2_model.n_stimuli
        assert m.features.shape == (expected_rows, len(m.columns))
        assert m.labels.shape == (expected_rows,)
        assert m.features.dtype == np.int8

    def test_free_rows_unlabelled_zero(self, nand2, nand2_model):
        m = training_matrix(nand2, nand2_model, SOI28.electrical)
        free = m.row_defect == FREE_ROW
        assert free.sum() == nand2_model.n_stimuli
        assert (m.labels[free] == 0).all()
        defect_cols = [i for i, c in enumerate(m.columns) if c.endswith(("_D", "_G", "_S", "_B"))]
        assert (m.features[np.ix_(free, defect_cols)] == 0).all()

    def test_no_free_rows_option(self, nand2, nand2_model):
        m = build_matrix(nand2, model=nand2_model, params=SOI28.electrical,
                         include_free_rows=False)
        assert (m.row_defect != FREE_ROW).all()

    def test_labels_match_detection(self, nand2, nand2_model):
        m = training_matrix(nand2, nand2_model, SOI28.electrical)
        for row in range(0, m.n_rows, 7):
            d, s = m.row_defect[row], m.row_stimulus[row]
            if d != FREE_ROW:
                assert m.labels[row] == nand2_model.detection[d, s]

    def test_inference_unlabelled(self, nand2):
        m = inference_matrix(nand2, SOI28.electrical)
        assert m.labels is None
        assert m.n_rows > 0

    def test_to_model_roundtrip(self, nand2, nand2_model):
        m = training_matrix(nand2, nand2_model, SOI28.electrical)
        rebuilt = m.to_model()
        assert (rebuilt.detection == nand2_model.detection).all()
        assert rebuilt.golden == nand2_model.golden

    def test_to_model_needs_labels(self, nand2):
        m = inference_matrix(nand2, SOI28.electrical)
        with pytest.raises(ValueError):
            m.to_model()

    def test_to_model_with_predictions(self, nand2, nand2_model):
        m = training_matrix(nand2, nand2_model, SOI28.electrical)
        zeros = np.zeros(m.n_rows, dtype=np.int8)
        model = m.to_model(zeros)
        assert model.detection.sum() == 0

    def test_cross_tech_same_feature_content(self, nand2, nand2_model, nand2_c40):
        from repro.camodel import generate_ca_model

        model40 = generate_ca_model(nand2_c40, params=C40.electrical)
        a = training_matrix(nand2, nand2_model, SOI28.electrical)
        b = training_matrix(nand2_c40, model40, C40.electrical)
        assert a.columns == b.columns
        rows_a = sorted(map(tuple, a.features.tolist()))
        rows_b = sorted(map(tuple, b.features.tolist()))
        assert rows_a == rows_b

    def test_structural_flag_changes_width(self, nand2, nand2_model):
        full = build_matrix(nand2, model=nand2_model, params=SOI28.electrical)
        bare = build_matrix(nand2, model=nand2_model, params=SOI28.electrical,
                            structural_features=False)
        assert full.n_features == bare.n_features + 3 * nand2.n_transistors


class TestPipeline:
    def test_group_matrices(self, nand2, nand2_model, nor2, nor2_model):
        a = training_matrix(nand2, nand2_model, SOI28.electrical)
        b = training_matrix(nor2, nor2_model, SOI28.electrical)
        groups = group_matrices([a, b])
        assert groups == {(2, 4): [a, b]}

    def test_stack(self, nand2, nand2_model, nor2, nor2_model):
        a = training_matrix(nand2, nand2_model, SOI28.electrical)
        b = training_matrix(nor2, nor2_model, SOI28.electrical)
        X, y = stack([a, b])
        assert len(X) == a.n_rows + b.n_rows
        assert len(y) == len(X)

    def test_stack_rejects_mixed_groups(self, nand2, nand2_model, aoi21, aoi21_model):
        a = training_matrix(nand2, nand2_model, SOI28.electrical)
        b = training_matrix(aoi21, aoi21_model, SOI28.electrical)
        with pytest.raises(ValueError):
            stack([a, b])

    def test_stack_rejects_unlabelled(self, nand2):
        m = inference_matrix(nand2, SOI28.electrical)
        with pytest.raises(ValueError):
            stack([m])

    def test_stack_empty(self):
        with pytest.raises(ValueError):
            stack([])


class TestPins:
    def test_reorder_word(self):
        word = parse_word("RF")
        assert reorder_word(word, ["A", "B"], ["B", "A"]) == tuple(parse_word("FR"))

    def test_canonical_order_stable_for_symmetric_pins(self, nand2):
        activity = {t.name: 0 for t in nand2.transistors}
        branches = extract_branches(nand2, activity)
        assert canonical_pin_order(nand2, branches) == nand2.inputs

    def test_signature_separates_roles(self, aoi21):
        activity = {t.name: 0 for t in aoi21.transistors}
        branches = extract_branches(aoi21, activity)
        # AOI21: A and B are the AND pair, C is the lone parallel input
        sig_a = pin_signature(aoi21.inputs[0], aoi21, branches)
        sig_c = pin_signature(aoi21.inputs[2], aoi21, branches)
        assert sig_a == pin_signature(aoi21.inputs[1], aoi21, branches)
        assert sig_a == sig_c  # same branch -> same coarse signature
