"""Unit tests for the switch-level static solver."""

import pytest

from repro.library import SOI28, build_cell
from repro.simulation import (
    CellSimulator,
    DefectEffect,
    SwitchGraph,
    StaticSolver,
    UnionFind,
)
from repro.simulation.solver import FLOAT, X
from repro.spice import CellNetlist, Transistor


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        assert uf.find(0) == uf.find(1)
        assert uf.find(3) == uf.find(4)
        assert uf.find(0) != uf.find(3)

    def test_chain(self):
        uf = UnionFind(6)
        for i in range(5):
            uf.union(i, i + 1)
        assert len({uf.find(i) for i in range(6)}) == 1


def _solver(cell, effect=None, params=SOI28.electrical):
    graph = SwitchGraph(cell, params=params, effect=effect or DefectEffect())
    return graph, StaticSolver(graph)


class TestGoldenSolve:
    def test_inverter(self):
        cell = build_cell(SOI28, "INV", 1)
        graph, solver = _solver(cell)
        for a, z in ((0, 1), (1, 0)):
            codes = solver.solve((a,)).codes
            assert codes[graph.output] == z

    def test_two_stage(self):
        cell = build_cell(SOI28, "AND2", 1)
        graph, solver = _solver(cell)
        assert solver.solve((1, 1)).codes[graph.output] == 1
        assert solver.solve((1, 0)).codes[graph.output] == 0

    def test_retention_flag_clear_in_golden(self):
        cell = build_cell(SOI28, "AND2", 1)
        _graph, solver = _solver(cell)
        assert solver.solve((1, 0)).retention_used is False

    def test_internal_stack_node_floats_without_observability(self):
        cell = build_cell(SOI28, "NAND2", 1)
        graph, solver = _solver(cell)
        result = solver.solve((0, 0))
        internal = [
            net
            for net in cell.internal_nets()
        ]
        assert internal
        # both NMOS off: the stack node has no driven path -> X, but it is
        # not observable, so the retention flag stays clear
        index = graph.net_index[internal[0]]
        assert result.codes[index] == X
        assert result.retention_used is False


class TestDefectiveSolve:
    def test_floating_output_is_x_without_memory(self):
        cell = build_cell(SOI28, "INV", 1)
        nmos = next(t for t in cell.transistors if t.is_nmos)
        graph, solver = _solver(cell, DefectEffect(removed=frozenset({nmos.name})))
        result = solver.solve((1,))
        assert result.codes[graph.output] == X
        assert result.retention_used is True

    def test_floating_output_retains_memory(self):
        cell = build_cell(SOI28, "INV", 1)
        nmos = next(t for t in cell.transistors if t.is_nmos)
        graph, solver = _solver(cell, DefectEffect(removed=frozenset({nmos.name})))
        before = solver.solve((0,)).codes  # output driven to 1
        after = solver.solve((1,), prev_codes=before)
        assert after.codes[graph.output] == 1  # retained

    def test_short_contention_resolved_by_conductance(self):
        cell = build_cell(SOI28, "INV", 1)
        # strong short from output to VDD: input high fights and loses
        graph, solver = _solver(
            cell, DefectEffect(bridges=(("Z", "VDD", 100.0),))
        )
        codes = solver.solve((1,)).codes
        assert codes[graph.output] == 1

    def test_weak_short_gives_x(self):
        cell = build_cell(SOI28, "INV", 1)
        # short comparable to pull-down resistance -> mid voltage -> X
        nmos = next(t for t in cell.transistors if t.is_nmos)
        ron = SOI28.electrical.rsq_nmos * nmos.l / nmos.w
        graph, solver = _solver(
            cell, DefectEffect(bridges=(("Z", "VDD", ron),))
        )
        assert solver.solve((1,)).codes[graph.output] == X

    def test_input_short_to_rail_divides_at_pin(self):
        cell = build_cell(SOI28, "INV", 1)
        # input pin shorted hard to ground: driving 1 no longer reaches
        # the gate, so the output stays high
        graph, solver = _solver(
            cell, DefectEffect(bridges=(("A", "VSS", 50.0),))
        )
        codes = solver.solve((1,)).codes
        assert codes[graph.net_index["A"]] == 0
        assert codes[graph.output] == 1

    def test_gate_open_lags_previous_pattern(self):
        cell = build_cell(SOI28, "INV", 1)
        nmos = next(t for t in cell.transistors if t.is_nmos)
        graph, solver = _solver(cell, DefectEffect(gate_open=frozenset({nmos.name})))
        # no history: gate-open device is off -> with A=1 the PMOS is off
        # too and the output floats
        assert solver.solve((1,)).codes[graph.output] == X
        # history A=1: the device now conducts during the next phase
        prev = solver.solve((1,)).codes
        prev[graph.net_index["A"]] = 1
        after = solver.solve((1,), prev_codes=prev)
        assert after.codes[graph.output] == 0


class TestGraph:
    def test_fixed_values(self):
        cell = build_cell(SOI28, "NAND2", 1)
        graph = SwitchGraph(cell, params=SOI28.electrical)
        fixed = graph.fixed_values((1, 0))
        assert fixed[graph.power] == 1
        assert fixed[graph.ground] == 0
        assert len(fixed) == 4

    def test_fixed_values_wrong_arity(self):
        cell = build_cell(SOI28, "NAND2", 1)
        graph = SwitchGraph(cell, params=SOI28.electrical)
        with pytest.raises(ValueError):
            graph.fixed_values((1,))

    def test_removed_device_absent(self):
        cell = build_cell(SOI28, "NAND2", 1)
        name = cell.transistors[0].name
        graph = SwitchGraph(
            cell, params=SOI28.electrical, effect=DefectEffect(removed=frozenset({name}))
        )
        assert all(d.name != name for d in graph.devices)

    def test_bridge_edges_added(self):
        cell = build_cell(SOI28, "NAND2", 1)
        graph = SwitchGraph(
            cell,
            params=SOI28.electrical,
            effect=DefectEffect(bridges=(("Z", "VSS", 300.0),)),
        )
        # driver edges (2 inputs) + 1 bridge
        assert len(graph.static_edges) == 3

    def test_self_bridge_ignored(self):
        cell = build_cell(SOI28, "NAND2", 1)
        graph = SwitchGraph(
            cell,
            params=SOI28.electrical,
            effect=DefectEffect(bridges=(("Z", "Z", 300.0),)),
        )
        assert len(graph.static_edges) == 2
