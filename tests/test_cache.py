"""Unit tests for the experiment CA-model disk cache."""

import pytest

from repro.experiments.cache import cache_path, library_with_models, paired


class TestCache:
    def test_generate_then_reload(self, tmp_path):
        library, models = library_with_models("soi28", "tiny", cache_dir=tmp_path)
        assert len(models) == len(library)
        path = cache_path("soi28", "tiny", tmp_path)
        assert path.exists()

        # a second call must load, not regenerate (same object content)
        library2, models2 = library_with_models("soi28", "tiny", cache_dir=tmp_path)
        assert set(models2) == set(models)
        for name in models:
            assert (models2[name].detection == models[name].detection).all()

    def test_paired_order_matches_library(self, tmp_path):
        library, models = library_with_models("soi28", "tiny", cache_dir=tmp_path)
        pairs = paired(library, models)
        assert [cell.name for cell, _m in pairs] == [c.name for c in library]
        for cell, model in pairs:
            assert cell.name == model.cell_name

    def test_cache_file_is_json(self, tmp_path):
        import json

        library_with_models("soi28", "tiny", cache_dir=tmp_path)
        payload = json.loads(cache_path("soi28", "tiny", tmp_path).read_text())
        assert payload["format"] == 1
        assert payload["models"]

    def test_cache_key_includes_policy(self, tmp_path):
        static = cache_path("soi28", "tiny", tmp_path, policy="static")
        auto = cache_path("soi28", "tiny", tmp_path, policy="auto")
        assert static != auto
        assert "static" in static.name and "auto" in auto.name

    def test_policies_cached_separately(self, tmp_path):
        _lib, auto_models = library_with_models(
            "soi28", "tiny", cache_dir=tmp_path
        )
        _lib, static_models = library_with_models(
            "soi28", "tiny", cache_dir=tmp_path, policy="static"
        )
        assert cache_path("soi28", "tiny", tmp_path, policy="auto").exists()
        assert cache_path("soi28", "tiny", tmp_path, policy="static").exists()
        name = next(iter(auto_models))
        # static stimuli are a strict subset of the auto (exhaustive) set
        assert static_models[name].n_stimuli < auto_models[name].n_stimuli

    def test_corrupt_cache_regenerated(self, tmp_path, capsys):
        library_with_models("soi28", "tiny", cache_dir=tmp_path)
        path = cache_path("soi28", "tiny", tmp_path)
        path.write_text('{"format": 1, "models": [{"truncated')  # torn file
        library, models = library_with_models("soi28", "tiny", cache_dir=tmp_path)
        assert len(models) == len(library)
        assert "ignoring unreadable CA model cache" in capsys.readouterr().err
        # and the rewritten file is whole again
        import json

        assert json.loads(path.read_text())["models"]

    def test_writes_leave_no_temp_files(self, tmp_path):
        library_with_models("soi28", "tiny", cache_dir=tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
