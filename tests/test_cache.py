"""Unit tests for the experiment CA-model disk cache."""

import pytest

from repro.experiments.cache import cache_path, library_with_models, paired


class TestCache:
    def test_generate_then_reload(self, tmp_path):
        library, models = library_with_models("soi28", "tiny", cache_dir=tmp_path)
        assert len(models) == len(library)
        path = cache_path("soi28", "tiny", tmp_path)
        assert path.exists()

        # a second call must load, not regenerate (same object content)
        library2, models2 = library_with_models("soi28", "tiny", cache_dir=tmp_path)
        assert set(models2) == set(models)
        for name in models:
            assert (models2[name].detection == models[name].detection).all()

    def test_paired_order_matches_library(self, tmp_path):
        library, models = library_with_models("soi28", "tiny", cache_dir=tmp_path)
        pairs = paired(library, models)
        assert [cell.name for cell, _m in pairs] == [c.name for c in library]
        for cell, model in pairs:
            assert cell.name == model.cell_name

    def test_cache_file_is_json(self, tmp_path):
        import json

        library_with_models("soi28", "tiny", cache_dir=tmp_path)
        payload = json.loads(cache_path("soi28", "tiny", tmp_path).read_text())
        assert payload["format"] == 1
        assert payload["models"]
