"""Tests for library statistics, feature importance and Verilog export."""

import numpy as np
import pytest

from repro.camodel.stats import LibraryStats, library_stats
from repro.learning import RandomForestClassifier
from repro.learning.importance import grouped_importance, permutation_importance
from repro.library import SOI28, build_cell
from repro.spice.verilog import to_verilog, to_verilog_library


class TestLibraryStats:
    @pytest.fixture(scope="class")
    def stats(self, request):
        from repro.camodel import generate_ca_model

        pairs = []
        for fn in ("INV", "NAND2", "NOR2"):
            cell = build_cell(SOI28, fn, 1)
            pairs.append((cell, generate_ca_model(cell, params=SOI28.electrical)))
        return library_stats(pairs)

    def test_counts(self, stats):
        assert len(stats.cells) == 3
        assert stats.total_simulations() > 0

    def test_type_totals_partition(self, stats):
        totals = stats.type_totals()
        assert sum(totals.values()) == sum(c.n_defects for c in stats.cells)

    def test_redundancy_positive(self, stats):
        assert 0.0 < stats.redundancy() < 1.0

    def test_by_function(self, stats):
        per_function = stats.by_function()
        assert set(per_function) == {"INV", "NAND2", "NOR2"}
        assert per_function["NAND2"]["cells"] == 1

    def test_scaling_series_sorted(self, stats):
        series = stats.simulations_by_size()
        sizes = [s for s, _v in series]
        assert sizes == sorted(sizes)
        # bigger cells need more simulations
        assert series[-1][1] > series[0][1]

    def test_empty(self):
        empty = LibraryStats()
        assert empty.mean_coverage() == 0.0
        assert empty.redundancy() == 0.0


class TestPermutationImportance:
    def test_identifies_informative_column(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 4, size=(3000, 5)).astype(np.int8)
        y = (X[:, 2] > 1).astype(int)
        clf = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        importances = permutation_importance(clf, X, y, n_repeats=2)
        best = max(importances, key=importances.get)
        assert best == "f2"
        assert importances["f2"] > 0.2
        assert importances["f0"] < 0.05

    def test_column_names(self):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(500, 2)).astype(np.int8)
        y = X[:, 0]
        clf = RandomForestClassifier(n_estimators=3, random_state=0).fit(X, y)
        importances = permutation_importance(
            clf, X, y, columns=["a", "b"], n_repeats=1
        )
        assert set(importances) == {"a", "b"}

    def test_name_mismatch_rejected(self):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(50, 2)).astype(np.int8)
        y = X[:, 0]
        clf = RandomForestClassifier(n_estimators=2, random_state=0).fit(X, y)
        with pytest.raises(ValueError):
            permutation_importance(clf, X, y, columns=["only-one"])

    def test_grouped_importance_on_real_matrix(self, nand2, nand2_model):
        from repro.camatrix import training_matrix

        matrix = training_matrix(nand2, nand2_model, SOI28.electrical)
        clf = RandomForestClassifier(
            n_estimators=6, max_features=0.5, random_state=0
        ).fit(matrix.features, matrix.labels)
        importances = permutation_importance(
            clf, matrix.features, matrix.labels, columns=matrix.columns, n_repeats=1
        )
        groups = grouped_importance(importances, matrix.columns)
        assert set(groups) == {"stimulus", "response", "activity", "structure", "defect"}
        # defect-location and stimulus/activity columns carry the signal
        assert groups["defect"] > 0.0


class TestVerilogExport:
    def test_structure(self, nand2):
        text = to_verilog(nand2)
        assert text.count("nmos ") == 2
        assert text.count("pmos ") == 2
        assert "supply1 VDD;" in text and "supply0 VSS;" in text
        assert "module S28_NAND2X1" in text
        assert text.strip().endswith("endmodule")

    def test_ports_declared(self, nand2):
        text = to_verilog(nand2)
        assert "input  A" in text and "input  B" in text
        assert "output Z" in text

    def test_identifier_sanitization(self):
        from repro.spice import CellNetlist, Transistor

        cell = CellNetlist(
            name="X-1",
            inputs=["in.1"],
            outputs=["out"],
            transistors=[
                Transistor("M0", "nmos", "out", "in.1", "VSS", "VSS"),
                Transistor("M1", "pmos", "out", "in.1", "VDD", "VDD"),
            ],
        )
        text = to_verilog(cell)
        assert "in.1" not in text
        assert "in_1" in text

    def test_library_export(self, nand2, nor2):
        text = to_verilog_library([nand2, nor2])
        assert text.count("endmodule") == 2
