"""Unit tests for the repro.obs subsystem (tracer, metrics, events)."""

import json

import pytest

from repro import obs
from repro.obs import (
    EventLog,
    JsonlSink,
    ListSink,
    Metrics,
    NullSink,
    TeeSink,
    TextSink,
    Tracer,
    orphan_parents,
)


class TestTracer:
    def test_nesting_records_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = tracer.export()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == outer.span_id
        assert inner.parent_id == outer.span_id
        assert by_name["inner"]["duration"] <= by_name["outer"]["duration"]
        assert orphan_parents(spans) == []

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("work", cell="NAND2") as sp:
            sp.set("defects", 40)
        span = tracer.export()[0]
        assert span["attrs"] == {"cell": "NAND2", "defects": 40}

    def test_disabled_tracer_is_null(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything", key="value") as sp:
            sp.set("more", 1)  # no-op, no error
        assert tracer.export() == []
        assert sp is obs.NULL_SPAN

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {s["name"]: s for s in tracer.export()}
        assert spans["a"]["parent_id"] == root.span_id
        assert spans["b"]["parent_id"] == root.span_id

    def test_absorb_reparents_worker_roots(self):
        worker = Tracer()
        with worker.span("generate.chunk"):
            with worker.span("generate.golden"):
                pass
        parent = Tracer()
        with parent.span("generate.defects") as anchor:
            parent.absorb(worker.export(), parent_id=anchor.span_id)
        spans = parent.export()
        chunk = next(s for s in spans if s["name"] == "generate.chunk")
        golden = next(s for s in spans if s["name"] == "generate.golden")
        assert chunk["parent_id"] == anchor.span_id
        # non-root worker spans keep their original parent
        assert golden["parent_id"] == chunk["span_id"]
        assert orphan_parents(spans) == []

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("one", n=1):
            pass
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "one" and record["attrs"] == {"n": 1}

    def test_chrome_payload_loadable(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.json"
        tracer.write_chrome(path)
        payload = json.loads(path.read_text())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"outer", "inner"}
        for event in events:
            assert event["ts"] > 0 and event["dur"] >= 0
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert metadata and metadata[0]["args"]["name"] == "main"

    def test_write_dispatches_on_extension(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.write(tmp_path / "t.jsonl")
        tracer.write(tmp_path / "t.json")
        assert json.loads((tmp_path / "t.jsonl").read_text().splitlines()[0])["name"] == "x"
        assert "traceEvents" in json.loads((tmp_path / "t.json").read_text())

    def test_orphan_detection(self):
        spans = [
            {"span_id": "1-1", "parent_id": None},
            {"span_id": "1-2", "parent_id": "9-9"},
        ]
        assert orphan_parents(spans) == ["9-9"]

    def test_absorb_emits_orphan_warning_event(self):
        tracer = Tracer()
        sink = ListSink()
        with obs.scoped(events=EventLog(sink)):
            tracer.absorb(
                [
                    {"span_id": "7-1", "parent_id": None, "name": "root",
                     "start": 0.0, "duration": 0.1, "pid": 7, "attrs": {}},
                    {"span_id": "7-2", "parent_id": "9-9", "name": "lost",
                     "start": 0.0, "duration": 0.1, "pid": 7, "attrs": {}},
                ],
                parent_id=None,
            )
        warnings = sink.named(obs.E_ORPHAN_SPANS)
        assert len(warnings) == 1
        assert warnings[0].fields["orphans"] == ["9-9"]
        # the spans are still absorbed — the warning flags, not drops
        assert len(tracer.export()) == 2

    def test_absorb_clean_merge_is_silent(self):
        parent = Tracer()
        worker = Tracer()
        with worker.span("w.root"):
            with worker.span("w.child"):
                pass
        sink = ListSink()
        with obs.scoped(events=EventLog(sink)):
            with parent.span("run") as run:
                parent.absorb(worker.export(), parent_id=run.span_id)
        assert sink.named(obs.E_ORPHAN_SPANS) == []


class TestMetrics:
    def test_counters(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 2)
        m.inc("b", 0.5)
        assert m.get("a") == 3
        assert m.get("b") == 0.5
        assert m.get("missing") == 0.0

    def test_checkpoint_delta(self):
        m = Metrics()
        m.inc("a", 2)
        check = m.checkpoint()
        m.inc("a", 3)
        m.inc("c", 1)
        m.inc("unchanged", 0)
        delta = m.counter_delta(check)
        assert delta == {"a": 3, "c": 1}

    def test_gauge_and_histogram(self):
        m = Metrics()
        m.set_gauge("g", 7)
        for v in (1.0, 3.0, 2.0):
            m.observe("h", v)
        snap = m.snapshot()
        assert snap["gauges"]["g"] == 7
        h = snap["histograms"]["h"]
        assert h["count"] == 3 and h["sum"] == 6.0
        assert h["min"] == 1.0 and h["max"] == 3.0

    def test_merge_child_snapshot(self):
        parent = Metrics()
        parent.inc("n", 1)
        parent.observe("h", 5.0)
        child = Metrics()
        child.inc("n", 2)
        child.observe("h", 1.0)
        child.set_gauge("workers", 4)
        parent.merge(child.snapshot())
        assert parent.get("n") == 3
        assert parent.gauges["workers"] == 4
        h = parent.histograms["h"]
        assert h["count"] == 2 and h["min"] == 1.0 and h["max"] == 5.0

    def test_render_filters_by_prefix(self):
        m = Metrics()
        m.inc("camodel.solves", 3)
        m.inc("other.thing", 1)
        text = m.render(prefix="camodel.")
        assert "camodel.solves = 3" in text and "other.thing" not in text

    def test_percentiles_are_order_independent(self):
        samples = [0.001, 0.5, 0.02, 3.0, 0.2, 0.9, 12.0, 0.07, 1.5, 0.4]
        forward, backward = Metrics(), Metrics()
        for v in samples:
            forward.observe("h", v)
        for v in reversed(samples):
            backward.observe("h", v)
        for q in (0.5, 0.95, 0.99):
            assert forward.percentile("h", q) == backward.percentile("h", q)

    def test_percentiles_survive_cross_process_merge(self):
        samples = [0.001, 0.5, 0.02, 3.0, 0.2, 0.9, 12.0, 0.07, 1.5, 0.4]
        whole = Metrics()
        for v in samples:
            whole.observe("h", v)
        parent = Metrics()
        child_a, child_b = Metrics(), Metrics()
        for v in samples[:5]:
            child_a.observe("h", v)
        for v in samples[5:]:
            child_b.observe("h", v)
        parent.merge(child_a.snapshot())
        parent.merge(child_b.snapshot())
        for q in (0.5, 0.95, 0.99):
            assert parent.percentile("h", q) == whole.percentile("h", q)

    def test_percentile_bounds_and_edge_cases(self):
        m = Metrics()
        assert m.percentile("missing", 0.5) == 0.0
        m.observe("one", 0.25)
        # single sample: clamping makes every quantile exact
        for q in (0.5, 0.95, 0.99):
            assert m.percentile("one", q) == 0.25
        for v in (1.0, 2.0, 4.0):
            m.observe("h", v)
        for q in (0.5, 0.95, 0.99):
            assert 1.0 <= m.percentile("h", q) <= 4.0
        assert m.percentile("h", 0.5) <= m.percentile("h", 0.95)

    def test_percentile_backcompat_bucketless_snapshot(self):
        parent = Metrics()
        old = {
            "counters": {},
            "gauges": {},
            "histograms": {
                "h": {"count": 4.0, "sum": 10.0, "min": 1.0, "max": 4.0}
            },
        }
        parent.merge(old)
        # extremes are all we know for an old writer's snapshot
        assert parent.percentile("h", 0.95) == 4.0
        assert parent.histograms["h"]["count"] == 4.0

    def test_render_includes_percentiles(self):
        m = Metrics()
        for v in (0.1, 0.2, 0.3):
            m.observe("camodel.seconds.per_cell", v)
        text = m.render()
        assert "p50=" in text and "p95=" in text and "p99=" in text


class TestEvents:
    def test_text_sink_level_filter(self, capsys):
        log = EventLog(TextSink(min_level="warning"))
        log.info("quiet.event", detail=1)
        log.warning("loud.event", msg="something odd")
        err = capsys.readouterr().err
        assert "quiet.event" not in err
        assert "[warning] loud.event: something odd" in err

    def test_text_sink_renders_fields_without_msg(self, capsys):
        EventLog(TextSink(min_level="info")).info("e.name", a=1, b="x")
        err = capsys.readouterr().err
        assert "[info] e.name" in err and "a=1" in err and "b=x" in err

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(JsonlSink(path))
        log.debug("first", n=1)
        log.error("second", n=2)
        log.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["first", "second"]
        assert records[0]["level"] == "debug" and records[0]["n"] == 1
        assert all("time" in r for r in records)

    def test_tee_and_list_sinks(self):
        buffer = ListSink()
        log = EventLog(TeeSink([NullSink(), buffer]))
        log.info("x", k="v")
        assert len(buffer.named("x")) == 1
        assert buffer.events[0].fields == {"k": "v"}

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            EventLog(NullSink()).emit("e", level="loud")


class TestStateAndSession:
    def test_default_state_is_silent_and_disabled(self):
        assert isinstance(obs.tracer(), Tracer)
        assert isinstance(obs.metrics(), Metrics)
        # module default: tracing off
        assert obs.tracer().enabled in (False, True)  # accessor works

    def test_scoped_swaps_and_restores(self):
        original = obs.tracer()
        fresh = Tracer()
        with obs.scoped(tracer=fresh):
            assert obs.tracer() is fresh
        assert obs.tracer() is original

    def test_session_writes_trace_with_root_span(self, tmp_path):
        path = tmp_path / "run.json"
        with obs.session(trace_path=path, root="run", scale="tiny"):
            with obs.tracer().span("inner"):
                pass
        payload = json.loads(path.read_text())
        events = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"}
        assert set(events) == {"run", "inner"}
        assert events["inner"]["args"]["parent_id"] == events["run"]["args"]["span_id"]
        assert events["run"]["args"]["scale"] == "tiny"

    def test_session_verbosity_controls_text_sink(self, capsys):
        with obs.session(verbosity=1, root=None):
            obs.events().info("visible.event")
        with obs.session(verbosity=0, root=None):
            obs.events().info("hidden.event")
        err = capsys.readouterr().err
        assert "visible.event" in err and "hidden.event" not in err

    def test_session_log_json(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with obs.session(log_json=path, root=None):
            obs.events().debug("d.event", n=3)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records and records[0]["event"] == "d.event"

    def test_min_level_for(self):
        assert obs.min_level_for(-1) == "error"
        assert obs.min_level_for(0) == "warning"
        assert obs.min_level_for(1) == "info"
        assert obs.min_level_for(2) == "debug"
