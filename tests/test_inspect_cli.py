"""CLI tests for ``python -m repro inspect`` and ``python -m repro watch``.

Runs a real (small) batch through the CLI entry point, then drives every
inspect subreport and the watch loop in-process, asserting on the
rendered output — the contract a user scripts against.
"""

import json

import pytest

from repro.cli import main
from repro.library import SOI28, build_cell
from repro.obs.store import load_chrome_spans
from repro.spice import write_cell


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One completed batch run shared by every test in this module."""
    root = tmp_path_factory.mktemp("inspect_cli")
    netlist = root / "cells.sp"
    netlist.write_text(
        "".join(
            write_cell(build_cell(SOI28, function, 1))
            for function in ("INV", "NAND2")
        )
    )
    run = root / "run"
    status = main(
        ["batch", str(netlist), "--run-dir", str(run), "--processes", "2"]
    )
    assert status == 0
    return run


def test_inspect_summary_reconciles(run_dir, capsys):
    assert main(["inspect", str(run_dir), "summary"]) == 0
    out = capsys.readouterr().out
    assert "S28_INVX1" in out and "S28_NAND2X1" in out
    assert "TOTAL" in out
    assert "== ledger metrics_total() (exact)" in out
    assert "shards agree" in out


def test_inspect_default_report_is_summary(run_dir, capsys):
    assert main(["inspect", str(run_dir)]) == 0
    assert "reconciliation" in capsys.readouterr().out


def test_inspect_stragglers_lists_dominant_spans(run_dir, capsys):
    assert main(["inspect", str(run_dir), "stragglers", "--top", "1"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("slowest 1 cell(s)")
    assert "camodel.generate" in out


def test_inspect_cache_report(run_dir, capsys):
    assert main(["inspect", str(run_dir), "cache"]) == 0
    out = capsys.readouterr().out
    assert "solver memoization" in out
    assert "phase-cache store" in out
    assert "packed kernel" in out


def test_inspect_failures_clean_run(run_dir, capsys):
    assert main(["inspect", str(run_dir), "failures"]) == 0
    out = capsys.readouterr().out
    assert "done=2" in out
    assert "no failed attempts recorded" in out


def test_inspect_trace_writes_chrome_json(run_dir, capsys, tmp_path):
    out_path = tmp_path / "merged.json"
    assert main(
        ["inspect", str(run_dir), "trace", "--chrome", str(out_path)]
    ) == 0
    assert f"wrote {out_path}" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert "traceEvents" in payload
    assert load_chrome_spans(out_path)  # reproSpans sidecar present


def test_inspect_trace_default_path(run_dir, capsys):
    assert main(["inspect", str(run_dir), "trace"]) == 0
    assert (run_dir / "trace.json").exists()
    capsys.readouterr()


def test_inspect_missing_run_dir_fails_cleanly(tmp_path, capsys):
    assert main(["inspect", str(tmp_path / "nope"), "summary"]) == 1
    assert "has no ledger" in capsys.readouterr().err


def test_watch_renders_progress_and_stops_when_complete(run_dir, capsys):
    assert main(["watch", str(run_dir), "--interval", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "2/2 done" in out
    assert "complete" in out


def test_watch_iterations_bound(run_dir, capsys):
    assert main(
        ["watch", str(run_dir), "--interval", "0.01", "--iterations", "1"]
    ) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 1


def test_watch_missing_run_dir_fails_cleanly(tmp_path, capsys):
    assert main(["watch", str(tmp_path / "nope")]) == 1
    assert "has no ledger" in capsys.readouterr().err
