"""Unit tests for defect models, universes and equivalence classes."""

import numpy as np
import pytest

from repro.defects import (
    Defect,
    INTER_SHORT,
    OPEN,
    SHORT,
    TERMINAL_PAIRS,
    collapse_ratio,
    default_universe,
    enumerate_inter_shorts,
    enumerate_opens,
    enumerate_shorts,
    equivalence_classes,
)
from repro.library import SOI28, build_cell


class TestDefectModel:
    def test_kinds_validated(self):
        with pytest.raises(ValueError):
            Defect("D0", "bridge", ("a", "b"))

    def test_location_arity_validated(self):
        with pytest.raises(ValueError):
            Defect("D0", OPEN, ("M0",))
        with pytest.raises(ValueError):
            Defect("D0", SHORT, ("M0", "D"))

    def test_describe(self):
        assert "open on M0.D" in Defect("D0", OPEN, ("M0", "D")).describe()
        assert "short M0.D-M0.S" in Defect("D1", SHORT, ("M0", "D", "S")).describe()

    def test_affected_terminals_open(self, nand2):
        name = nand2.transistors[0].name
        d = Defect("D0", OPEN, (name, "G"))
        assert d.affected_terminals(nand2) == frozenset({(name, "G")})

    def test_affected_terminals_short(self, nand2):
        name = nand2.transistors[0].name
        d = Defect("D0", SHORT, (name, "D", "S"))
        assert d.affected_terminals(nand2) == frozenset({(name, "D"), (name, "S")})

    def test_affected_terminals_inter_short(self, nand2):
        out = nand2.outputs[0]
        d = Defect("D0", INTER_SHORT, (out, nand2.inputs[0]))
        marked = d.affected_terminals(nand2)
        # every terminal touching Z or A is marked
        for t in nand2.transistors:
            for term in ("D", "G", "S", "B"):
                expected = t.terminal(term) in (out, nand2.inputs[0])
                assert ((t.name, term) in marked) == expected

    def test_effect_open_drain_removes(self, nand2):
        name = nand2.transistors[0].name
        eff = Defect("D0", OPEN, (name, "D")).effect(nand2, 300.0)
        assert name in eff.removed and not eff.benign

    def test_effect_open_gate(self, nand2):
        name = nand2.transistors[0].name
        eff = Defect("D0", OPEN, (name, "G")).effect(nand2, 300.0)
        assert name in eff.gate_open

    def test_effect_open_bulk_benign(self, nand2):
        name = nand2.transistors[0].name
        assert Defect("D0", OPEN, (name, "B")).effect(nand2, 300.0).benign

    def test_effect_short_bridges_nets(self, nand2):
        t = nand2.transistors[0]
        eff = Defect("D0", SHORT, (t.name, "D", "S")).effect(nand2, 300.0)
        assert eff.bridges == ((t.drain, t.source, 300.0),)

    def test_effect_short_same_net_benign(self, nand2):
        # source-bulk of a rail-connected NMOS shorts a net to itself
        t = next(x for x in nand2.transistors if x.is_nmos and x.source == x.bulk)
        eff = Defect("D0", SHORT, (t.name, "S", "B")).effect(nand2, 300.0)
        assert eff.benign

    def test_effect_unknown_transistor(self, nand2):
        from repro.spice import NetlistError

        with pytest.raises(NetlistError):
            Defect("D0", OPEN, ("MXX", "D")).effect(nand2, 300.0)


class TestUniverse:
    def test_counts(self, nand2):
        t = nand2.n_transistors
        assert len(enumerate_opens(nand2)) == 4 * t
        assert len(enumerate_shorts(nand2)) == 6 * t
        assert len(default_universe(nand2)) == 10 * t

    def test_terminal_pairs(self):
        assert len(TERMINAL_PAIRS) == 6

    def test_names_sequential_and_unique(self, nand2):
        universe = default_universe(nand2)
        names = [d.name for d in universe]
        assert names == [f"D{i}" for i in range(len(universe))]

    def test_inter_shorts_skip_rails(self, nand2):
        inter = enumerate_inter_shorts(nand2)
        for d in inter:
            assert "VDD" not in d.location and "VSS" not in d.location

    def test_universe_composition_flags(self, nand2):
        opens_only = default_universe(nand2, include_shorts=False)
        assert all(d.kind == OPEN for d in opens_only)
        with_inter = default_universe(nand2, include_inter_shorts=True)
        assert any(d.kind == INTER_SHORT for d in with_inter)


class TestEquivalence:
    def test_grouping(self):
        detection = np.array([[1, 0], [1, 0], [0, 1], [0, 0]], dtype=np.int8)
        classes = equivalence_classes(detection, ["D0", "D1", "D2", "D3"])
        assert len(classes) == 3
        assert classes[0].members == ("D0", "D1")
        assert classes[0].representative == "D0"
        assert classes[2].is_undetectable

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            equivalence_classes(np.zeros((2, 3)), ["D0"])

    def test_collapse_ratio(self):
        detection = np.array([[1, 0], [1, 0], [0, 1]], dtype=np.int8)
        classes = equivalence_classes(detection, ["a", "b", "c"])
        assert collapse_ratio(classes, 3) == pytest.approx(1 / 3)
        assert collapse_ratio([], 0) == 0.0

    def test_real_cell_has_equivalences(self, nand2_model):
        classes = nand2_model.equivalence()
        assert len(classes) < nand2_model.n_defects
        assert sum(len(c) for c in classes) == nand2_model.n_defects

    def test_drain_source_opens_equivalent(self, nand2, nand2_model):
        # opening D or S of the same device removes the same channel edge
        name = nand2.transistors[0].name
        universe = nand2_model.defects
        d_open = next(
            d for d in universe if d.kind == OPEN and d.location == (name, "D")
        )
        s_open = next(
            d for d in universe if d.kind == OPEN and d.location == (name, "S")
        )
        row_d = nand2_model.detection_row(d_open.name)
        row_s = nand2_model.detection_row(s_open.name)
        assert (row_d == row_s).all()
