"""Unit tests for datasets and the paper's evaluation protocols."""

import numpy as np
import pytest

from repro.camodel import generate_ca_model
from repro.learning import (
    CellSample,
    build_samples,
    cross_technology,
    group_samples,
    kind_row_mask,
    leave_one_out,
    sample_rows,
    stack_group,
)
from repro.learning.evaluate import EvaluationReport, CellEvaluation
from repro.library import SOI28, C40, build_cell


@pytest.fixture(scope="module")
def small_samples():
    cells = [
        build_cell(SOI28, fn, 1, flavor)
        for fn in ("NAND2", "NOR2")
        for flavor in SOI28.flavors
    ]
    return build_samples(
        [(c, generate_ca_model(c, params=SOI28.electrical)) for c in cells],
        SOI28.electrical,
    )


class TestDatasets:
    def test_grouping(self, small_samples):
        groups = group_samples(small_samples)
        assert set(groups) == {(2, 4)}
        assert len(groups[(2, 4)]) == 6

    def test_kind_mask_keeps_free_rows(self, small_samples):
        sample = small_samples[0]
        mask = kind_row_mask(sample.matrix, {"open"})
        from repro.camatrix import FREE_ROW

        free = sample.matrix.row_defect == FREE_ROW
        assert mask[free].all()

    def test_kind_mask_filters_shorts(self, small_samples):
        sample = small_samples[0]
        X, y = sample_rows(sample, kinds={"open"})
        X_all, _ = sample_rows(sample, kinds=None)
        assert len(X) < len(X_all)

    def test_subsampling(self, small_samples):
        X, y = sample_rows(small_samples[0], max_rows=10)
        assert len(X) == 10 and len(y) == 10

    def test_stack_group(self, small_samples):
        X, y = stack_group(small_samples[:2])
        assert len(X) == sum(s.matrix.n_rows for s in small_samples[:2])

    def test_stack_group_empty(self):
        with pytest.raises(ValueError):
            stack_group([])


class TestLeaveOneOut:
    def test_every_cell_evaluated(self, small_samples):
        report = leave_one_out(small_samples, kinds={"open"})
        assert len(report.evaluations) == len(small_samples)
        assert not report.uncovered

    def test_high_accuracy_on_flavor_variants(self, small_samples):
        report = leave_one_out(small_samples, kinds={"open"})
        assert report.mean_accuracy() > 0.99

    def test_group_table_contents(self, small_samples):
        report = leave_one_out(small_samples, kinds={"open"})
        table = report.group_table()
        assert (2, 4) in table
        box = table[(2, 4)]
        assert box["cells"] == 6
        assert 0.9 < box["mean"] <= 1.0
        assert box["max"] <= 1.0

    def test_singleton_group_uncovered(self, small_samples):
        lone = build_cell(SOI28, "AOI21", 1)
        sample = build_samples(
            [(lone, generate_ca_model(lone, params=SOI28.electrical))],
            SOI28.electrical,
        )
        report = leave_one_out(small_samples + sample, kinds={"open"})
        assert lone.name in report.uncovered

    def test_fraction_above(self, small_samples):
        report = leave_one_out(small_samples, kinds={"open"})
        assert 0.0 <= report.accuracy_fraction_above(0.97) <= 1.0
        assert report.accuracy_fraction_above(1.01) == 0.0


class TestCrossTechnology:
    def test_covered_and_uncovered(self, small_samples):
        eval_cells = [build_cell(C40, "NAND2", 1), build_cell(C40, "XOR2", 1)]
        eval_samples = build_samples(
            [(c, generate_ca_model(c, params=C40.electrical)) for c in eval_cells],
            C40.electrical,
        )
        report = cross_technology(small_samples, eval_samples, kinds={"open"})
        names = {e.cell_name for e in report.evaluations}
        assert "C40_NAND2X1" in names
        assert "C40_XOR2X1" in report.uncovered  # no (2,12) training group

    def test_cross_accuracy_high_for_shared_structure(self, small_samples):
        eval_cells = [build_cell(C40, "NAND2", 1)]
        eval_samples = build_samples(
            [(c, generate_ca_model(c, params=C40.electrical)) for c in eval_cells],
            C40.electrical,
        )
        report = cross_technology(small_samples, eval_samples, kinds={"open"})
        assert report.evaluations[0].accuracy > 0.95


class TestReportHelpers:
    def test_empty_report(self):
        report = EvaluationReport()
        assert report.mean_accuracy() == 0.0
        assert report.accuracy_fraction_above() == 0.0
        assert report.group_table() == {}

    def test_perfect_count(self):
        report = EvaluationReport(
            evaluations=[
                CellEvaluation("a", (2, 4), 1.0, 10, 2),
                CellEvaluation("b", (2, 4), 0.5, 10, 2),
            ]
        )
        assert report.group_table()[(2, 4)]["perfect"] == 1
