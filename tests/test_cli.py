"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import _cell_from_name, main
from repro.camodel import generate_ca_model, load_model, save_models
from repro.library import SOI28, C40, build_cell, get_technology
from repro.spice import write_cell, write_library


@pytest.fixture()
def nand2_file(tmp_path, nand2):
    path = tmp_path / "nand2.sp"
    path.write_text(write_cell(nand2, SOI28.dialect))
    return path


@pytest.fixture()
def training_file(tmp_path):
    cells = [build_cell(SOI28, "NAND2", 1, f) for f in SOI28.flavors]
    models = [generate_ca_model(c, params=SOI28.electrical) for c in cells]
    path = tmp_path / "train.json"
    save_models(models, path)
    return path


class TestCellFromName:
    def test_roundtrip(self):
        tech = get_technology("soi28")
        cell = _cell_from_name(tech, "S28_NAND2X2_LVT")
        assert cell is not None and cell.name == "S28_NAND2X2_LVT"

    def test_std_flavor(self):
        tech = get_technology("c40")
        cell = _cell_from_name(tech, "C40_AOI21X1")
        assert cell is not None and cell.function == "AOI21"

    def test_unknown_function(self):
        tech = get_technology("soi28")
        assert _cell_from_name(tech, "S28_FOOX1") is None


class TestCommands:
    def test_generate(self, nand2_file, tmp_path, capsys):
        out = tmp_path / "model.json"
        assert main(["generate", str(nand2_file), "-o", str(out)]) == 0
        model = load_model(out)
        assert model.n_defects == 40
        assert "coverage" in capsys.readouterr().out

    def test_rename(self, nand2_file, capsys):
        assert main(["rename", str(nand2_file)]) == 0
        out = capsys.readouterr().out
        assert "signature" in out and "N0" in out

    def test_predict(self, tmp_path, training_file, capsys):
        target = build_cell(C40, "NAND2", 1)
        netlist = tmp_path / "target.sp"
        netlist.write_text(write_cell(target, C40.dialect))
        out = tmp_path / "predicted.json"
        code = main(
            ["predict", str(netlist), "-t", str(training_file), "-o", str(out)]
        )
        assert code == 0
        model = load_model(out)
        assert model.detection.shape[0] == 40
        assert "route=ml" in capsys.readouterr().out

    def test_hybrid(self, tmp_path, training_file, capsys):
        cells = [build_cell(C40, "NAND2", 1), build_cell(C40, "NOR2", 1)]
        netlist = tmp_path / "cells.sp"
        netlist.write_text(write_library(cells, C40.dialect))
        assert main(["hybrid", str(netlist), "-t", str(training_file)]) == 0
        out = capsys.readouterr().out
        assert "total_reduction" in out

    def test_predict_empty_training(self, nand2_file, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        save_models([], empty)
        assert main(["predict", str(nand2_file), "-t", str(empty)]) == 1

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "NAND2" in out and "AOI21" in out

    def test_build(self, capsys):
        assert main(["build", "c28", "NAND2", "-d", "2"]) == 0
        out = capsys.readouterr().out
        assert ".SUBCKT C28_NAND2X2" in out

    def test_table(self, capsys):
        assert main(["table", "II"]) == 0
        assert "activity" in capsys.readouterr().out

    def test_table_unknown(self, capsys):
        assert main(["table", "XL"]) == 1
