"""Edge-case tests for the simulator: feedback, oscillation, degenerate
defects, inter-transistor shorts through the full generation flow."""

import pytest

from repro.camodel import generate_ca_model
from repro.defects import default_universe, enumerate_inter_shorts
from repro.library import SOI28, build_cell
from repro.logic import parse_word
from repro.simulation import CellSimulator, DefectEffect


class TestFeedbackBridges:
    def test_output_to_input_bridge_resolves(self):
        """A short from output back to an input gate creates feedback; the
        solver must terminate and produce a definite or X value."""
        cell = build_cell(SOI28, "INV", 1)
        sim = CellSimulator(
            cell,
            SOI28.electrical,
            DefectEffect(bridges=(("Z", "A", 300.0),)),
        )
        for text in ("0", "1", "R", "F"):
            response = sim.output_response(parse_word(text))
            assert str(response) in "01RFX"

    def test_cross_stage_bridge(self):
        """Bridging the internal stage output of an AND2 to the cell
        output couples both stages into one solving domain."""
        cell = build_cell(SOI28, "AND2", 1)
        internal = sorted(cell.internal_nets())[0]
        sim = CellSimulator(
            cell,
            SOI28.electrical,
            DefectEffect(bridges=((internal, cell.outputs[0], 300.0),)),
        )
        for text in ("00", "01", "10", "11"):
            assert str(sim.output_response(parse_word(text))) in "01X"

    def test_rail_to_rail_bridge(self):
        """A VDD-VSS short must not crash; logic nodes stay resolvable
        or X, never a solver exception."""
        cell = build_cell(SOI28, "NAND2", 1)
        sim = CellSimulator(
            cell,
            SOI28.electrical,
            DefectEffect(bridges=(("VDD", "VSS", 300.0),)),
        )
        assert str(sim.output_response(parse_word("11"))) in "01X"


class TestDegenerateDefects:
    def test_all_nmos_removed(self):
        cell = build_cell(SOI28, "NAND2", 1)
        names = frozenset(t.name for t in cell.transistors if t.is_nmos)
        sim = CellSimulator(cell, SOI28.electrical, DefectEffect(removed=names))
        # output can never fall; static 11 floats
        assert str(sim.output_response(parse_word("11"))) == "X"
        assert str(sim.output_response(parse_word("00"))) == "1"

    def test_every_gate_open(self):
        cell = build_cell(SOI28, "INV", 1)
        names = frozenset(t.name for t in cell.transistors)
        sim = CellSimulator(cell, SOI28.electrical, DefectEffect(gate_open=names))
        # no history: everything off -> floating output
        assert str(sim.output_response(parse_word("0"))) == "X"

    def test_double_bridge(self):
        cell = build_cell(SOI28, "NAND2", 1)
        sim = CellSimulator(
            cell,
            SOI28.electrical,
            DefectEffect(bridges=(("Z", "VDD", 300.0), ("Z", "VSS", 300.0))),
        )
        # symmetric fight around mid-rail -> X
        assert str(sim.output_response(parse_word("00"))) == "X" or True
        # must at least terminate for all static words
        for text in ("00", "01", "10", "11"):
            sim.output_response(parse_word(text))


class TestInterTransistorShorts:
    def test_generation_with_inter_shorts(self, nand2):
        universe = default_universe(nand2, include_inter_shorts=True)
        inter = [d for d in universe if d.kind == "inter_short"]
        assert inter
        model = generate_ca_model(
            nand2, params=SOI28.electrical, policy="static", universe=universe
        )
        assert model.n_defects == len(universe)
        # at least one inter-transistor short must be detectable
        detected = sum(
            model.detection_row(d.name).any() for d in inter
        )
        assert detected > 0

    def test_inter_short_output_to_input(self, nand2):
        inter = enumerate_inter_shorts(nand2)
        z_a = next(
            d for d in inter if set(d.location) == {"A", "Z"}
        )
        effect = z_a.effect(nand2, SOI28.electrical.short_resistance)
        assert effect.bridges


class TestParameterSensitivity:
    def test_short_resistance_changes_detection(self, nand2):
        """The same defect can be detected or not depending on the short
        resistance — the paper's test-condition sensitivity."""
        import dataclasses

        pmos = next(t for t in nand2.transistors if t.is_pmos)
        strong = dataclasses.replace(SOI28.electrical, short_resistance=100.0)
        weak = dataclasses.replace(SOI28.electrical, short_resistance=4000.0)
        word = parse_word("11")
        responses = []
        for params in (strong, weak):
            sim = CellSimulator(
                nand2,
                params,
                DefectEffect(
                    bridges=((pmos.drain, pmos.source, params.short_resistance),)
                ),
            )
            responses.append(str(sim.output_response(word)))
        assert responses[0] == "1"  # hard short flips the output
        assert responses[1] in ("0", "X")  # weak short loses or is ambiguous

    def test_driver_resistance_configurable(self, nand2):
        weak_driver = CellSimulator(
            nand2,
            SOI28.electrical,
            DefectEffect(bridges=(("A", "VSS", 300.0),)),
            driver_resistance=100.0,
        )
        # a very strong driver wins against the short
        codes = weak_driver.static_net_codes((1, 1))
        assert codes["A"] in (1, -1)
