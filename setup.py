"""Package metadata.

Kept in setup.py (no pyproject.toml) deliberately: offline environments
without the `wheel` package cannot take pip's PEP 517 editable path, while
`pip install -e .` through the legacy setuptools path works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Learning-based cell-aware model generation (DATE 2021 reproduction)"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "networkx"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "scipy"],
        # coverage gate run by CI (.github/workflows/ci.yml, coverage job)
        "cov": ["pytest-cov"],
        # lint gate run by CI (.github/workflows/ci.yml); config in .ruff.toml
        "lint": ["ruff"],
        # strict-typing gate run by CI (typecheck job); config in mypy.ini
        "typecheck": ["mypy"],
    },
)
