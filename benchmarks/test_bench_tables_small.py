"""Benches for the paper's illustrative tables/figures (I, II, III, 4, 5, 6).

These regenerate the exact artifacts shown in the paper for the NAND2 /
Fig. 5 examples and check the values the paper prints.
"""

from repro.experiments import (
    fig4_partial_matrix,
    fig5_branch_equations,
    fig6_equivalence_demo,
    table1_training_rows,
    table2_activity,
    table3_defect_columns,
)


def test_table1_training_rows(benchmark):
    text = benchmark(table1_training_rows)
    assert "free" in text and "detect" in text
    print("\n" + text)


def test_table2_activity(benchmark):
    text = benchmark(table2_activity)
    # the paper's NAND2 activity values: N0=3, N1=5, P0=10, P1=12
    lines = {line.split()[-1]: line for line in text.splitlines() if "mos" in line}
    assert "3" in lines["N0"] and "5" in lines["N1"]
    assert "10" in lines["P0"] and "12" in lines["P1"]
    print("\n" + text)


def test_table3_defect_columns(benchmark):
    text = benchmark(table3_defect_columns)
    assert "source-drain short on P1" in text
    assert "net0 & P0-source short" in text
    print("\n" + text)


def test_fig4_partial_matrix(benchmark):
    text = benchmark(fig4_partial_matrix)
    assert "RESP" in text
    print("\n" + text)


def test_fig5_branch_equations(benchmark):
    text = benchmark(fig5_branch_equations)
    # the paper's anonymized pull-down contribution of the Fig. 5 network
    assert "((1n|1n)&1n)" in text
    assert "(1n|1p)" in text  # the output inverter
    print("\n" + text)


def test_fig6_equivalent_configurations(benchmark):
    text = benchmark(fig6_equivalence_demo)
    rows = [l for l in text.splitlines() if l.startswith(("soi28", "c40"))]
    assert len({row.split()[-1] for row in rows}) == 1
    print("\n" + text)
