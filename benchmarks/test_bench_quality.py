"""Test-quality bench: predicted CA models judged in escape terms.

Row accuracy (Table IV) is the paper's metric; what a test engineer
ultimately cares about is whether a *predicted* CA model loses detections
(test escapes) or invents them (overkill), and whether patterns selected
from the prediction still cover the real (simulated) defect behaviour.
This bench runs the cross-technology prediction and reports those
quality numbers for structurally supported cells.
"""

import numpy as np
import pytest

from repro.camodel import generate_ca_model
from repro.camodel.compare import LibraryDiff, compare_models
from repro.camatrix import inference_matrix
from repro.defects import defect_weights, weighted_coverage
from repro.learning import build_samples, default_classifier_factory, stack_group
from repro.library import C28, SOI28, build_cell


@pytest.fixture(scope="module")
def predicted_and_reference():
    train_cells = [
        build_cell(SOI28, fn, 1, flavor)
        for fn in ("NAND2", "NOR2")
        for flavor in SOI28.flavors
    ]
    samples = build_samples(
        [(c, generate_ca_model(c, params=SOI28.electrical)) for c in train_cells],
        SOI28.electrical,
    )
    X, y = stack_group(samples)
    clf = default_classifier_factory()()
    clf.fit(X, y)

    out = []
    for fn in ("NAND2", "NOR2"):
        cell = build_cell(C28, fn, 1)
        reference = generate_ca_model(cell, params=C28.electrical)
        matrix = inference_matrix(cell, C28.electrical)
        predicted = matrix.to_model(clf.predict(matrix.features))
        out.append((cell, reference, predicted))
    return out


def test_escape_and_overkill_rates(benchmark, predicted_and_reference):
    def run():
        diff = LibraryDiff()
        for _cell, reference, predicted in predicted_and_reference:
            diff.add(compare_models(reference, predicted))
        return diff

    library_diff = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = library_diff.summary()
    print("\n" + "\n".join(f"  {k}: {v}" for k, v in summary.items()))
    # structurally supported cross-technology predictions barely leak
    assert summary["mean_escape_rate"] < 0.05
    assert summary["mean_overkill_rate"] < 0.05
    # and patterns chosen from the prediction still test the real cell
    assert summary["mean_pattern_coverage"] > 0.95


def test_weighted_coverage_of_predictions(benchmark, predicted_and_reference):
    def run():
        rows = []
        for cell, reference, predicted in predicted_and_reference:
            weights = defect_weights(cell, reference.defects)
            rows.append(
                (
                    cell.name,
                    weighted_coverage(reference.detection, weights),
                    weighted_coverage(predicted.detection, weights),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncell                reference  predicted (likelihood-weighted coverage)")
    for name, ref_cov, pred_cov in rows:
        print(f"{name:<18} {ref_cov:9.4f}  {pred_cov:9.4f}")
        assert abs(ref_cov - pred_cov) < 0.05
