"""Fig. 1 bench: conventional CA model generation throughput.

Measures what the paper is trying to avoid — the per-cell cost of
simulating every defect against every stimulus — across cell sizes.
"""

import pytest

from repro.camodel import generate_ca_model
from repro.library import SOI28, build_cell


@pytest.mark.parametrize(
    "function,drive",
    [("INV", 1), ("NAND2", 1), ("AOI21", 1), ("AOI22", 1), ("XOR2", 1), ("NAND2", 4)],
    ids=lambda v: str(v),
)
def test_conventional_generation(benchmark, function, drive):
    cell = build_cell(SOI28, function, drive)
    model = benchmark.pedantic(
        generate_ca_model,
        args=(cell,),
        kwargs={"params": SOI28.electrical},
        rounds=1,
        iterations=1,
    )
    assert model.n_defects == 10 * cell.n_transistors
    assert model.coverage() > 0.05
    print(
        f"\n{cell.name}: {model.simulation_count} simulations, "
        f"{model.n_defects} defects -> {len(model.equivalence())} classes, "
        f"coverage {model.coverage():.2%}"
    )


def test_golden_simulation_throughput(benchmark):
    """The golden pass alone (used by active/passive identification)."""
    from repro.camodel import stimuli
    from repro.simulation import CellSimulator

    cell = build_cell(SOI28, "AOI22", 1)
    words = stimuli(cell.n_inputs, "exhaustive")

    def run():
        sim = CellSimulator(cell, params=SOI28.electrical)
        return [sim.output_response(w) for w in words]

    responses = benchmark(run)
    assert len(responses) == 256
