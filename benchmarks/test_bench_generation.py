"""Fig. 1 bench: conventional CA model generation throughput.

Measures what the paper is trying to avoid — the per-cell cost of
simulating every defect against every stimulus — across cell sizes.
"""

import pytest

from repro.camodel import generate_ca_model
from repro.library import SOI28, build_cell


@pytest.mark.parametrize(
    "function,drive",
    [("INV", 1), ("NAND2", 1), ("AOI21", 1), ("AOI22", 1), ("XOR2", 1), ("NAND2", 4)],
    ids=lambda v: str(v),
)
def test_conventional_generation(benchmark, function, drive):
    cell = build_cell(SOI28, function, drive)
    model = benchmark.pedantic(
        generate_ca_model,
        args=(cell,),
        kwargs={"params": SOI28.electrical},
        rounds=1,
        iterations=1,
    )
    assert model.n_defects == 10 * cell.n_transistors
    assert model.coverage() > 0.05
    print(
        f"\n{cell.name}: {model.simulation_count} simulations, "
        f"{model.n_defects} defects -> {len(model.equivalence())} classes, "
        f"coverage {model.coverage():.2%}"
    )


def test_batched_vs_scalar_speedup(bench_record):
    """The vectorized batch kernel against the scalar reference solver.

    Same cell, same universe, same stimuli; only the solver path differs.
    The batched path must be byte-identical (checked) and substantially
    faster on the serial kernel (the acceptance bar is 3x on a 4-input
    exhaustive run).  Delay detection is off so the measurement isolates
    phase solving rather than drive-resistance extraction.
    """
    import time

    import numpy as np

    cell = build_cell(SOI28, "AOI22", 1)
    kwargs = dict(params=SOI28.electrical, delay_detection=False)

    def best_of(batched, rounds=3):
        best = float("inf")
        model = None
        for _ in range(rounds):
            start = time.perf_counter()
            model = generate_ca_model(cell, batched=batched, **kwargs)
            best = min(best, time.perf_counter() - start)
        return best, model

    scalar_seconds, scalar_model = best_of(batched=False)
    batched_seconds, batched_model = best_of(batched=True)

    assert np.array_equal(scalar_model.detection, batched_model.detection)
    assert scalar_model.golden == batched_model.golden

    speedup = scalar_seconds / batched_seconds
    bench_record.add(
        "generation",
        benchmark="batched_vs_scalar",
        cell=cell.name,
        stimuli=scalar_model.n_stimuli,
        defects=scalar_model.n_defects,
        scalar_seconds=round(scalar_seconds, 4),
        batched_seconds=round(batched_seconds, 4),
        speedup=round(speedup, 2),
        batched_phases=batched_model.stats.batched_phases,
    )
    print(
        f"\nscalar {scalar_seconds:.3f}s vs batched {batched_seconds:.3f}s "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= 3.0


def test_golden_simulation_throughput(benchmark):
    """The golden pass alone (used by active/passive identification)."""
    from repro.camodel import stimuli
    from repro.simulation import CellSimulator

    cell = build_cell(SOI28, "AOI22", 1)
    words = stimuli(cell.n_inputs, "exhaustive")

    def run():
        sim = CellSimulator(cell, params=SOI28.electrical)
        return [sim.output_response(w) for w in words]

    responses = benchmark(run)
    assert len(responses) == 256
