"""Defect-level parallel generation bench.

The conventional flow's hot loop — one simulator per defect — is the cost
the paper attacks.  This bench tracks the two levers added for it: the
shared per-cell :class:`~repro.simulation.switchgraph.CellTopology` and
the ``parallelism`` process fan-out of
:func:`~repro.camodel.generate.generate_ca_model`, on the largest cell of
the bench suite (the case cell-level fan-out cannot help).

``speedup_x4`` lands in the benchmark JSON via ``extra_info`` so the
BENCH_*.json history tracks the win; the >=2x assertion only applies on
machines with enough physical cores to deliver it.
"""

import os
import time

from repro.camodel import generate_ca_model
from repro.library import SOI28, build_cell

#: largest cell of the bench suite: 4 inputs -> 256 exhaustive stimuli
LARGEST = ("AOI22", 1)

WORKERS = 4


def test_parallel_generation_speedup(benchmark):
    cell = build_cell(SOI28, *LARGEST)
    started = time.perf_counter()
    serial = generate_ca_model(cell, params=SOI28.electrical)
    serial_seconds = time.perf_counter() - started

    parallel = benchmark.pedantic(
        generate_ca_model,
        args=(cell,),
        kwargs={"params": SOI28.electrical, "parallelism": WORKERS},
        rounds=1,
        iterations=1,
    )

    assert parallel.detection.tobytes() == serial.detection.tobytes()
    assert parallel.stats.workers == WORKERS

    speedup = serial_seconds / parallel.stats.total_seconds
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["parallel_seconds"] = round(
        parallel.stats.total_seconds, 3
    )
    benchmark.extra_info[f"speedup_x{WORKERS}"] = round(speedup, 2)
    print(
        f"\n{cell.name}: serial {serial_seconds:.2f}s, "
        f"{WORKERS} workers {parallel.stats.total_seconds:.2f}s "
        f"-> {speedup:.2f}x (cores={os.cpu_count()})"
    )
    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= 2.0


def test_generation_cost_accounting(benchmark):
    """Serial run of the same cell: tracks solves and cache efficiency."""
    cell = build_cell(SOI28, *LARGEST)
    model = benchmark.pedantic(
        generate_ca_model,
        args=(cell,),
        kwargs={"params": SOI28.electrical},
        rounds=1,
        iterations=1,
    )
    stats = model.stats
    assert stats.simulated_defects + stats.skipped_defects == model.n_defects
    benchmark.extra_info["solves"] = stats.solves
    benchmark.extra_info["cache_hits"] = stats.cache_hits
    benchmark.extra_info["cache_hit_rate"] = round(stats.cache_hit_rate, 4)
    print(
        f"\n{cell.name}: {stats.solves} solves, {stats.cache_hits} cache hits "
        f"({stats.cache_hit_rate:.1%}), golden {stats.golden_seconds:.3f}s, "
        f"defects {stats.defect_seconds:.3f}s"
    )
