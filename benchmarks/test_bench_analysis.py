"""Section V.B benches: accuracy bands and failure-cause attribution."""

import pytest

from repro.experiments.analysis import accuracy_bands
from repro.flow.structure import EQUIVALENT, IDENTICAL, NONE


def _once(benchmark, fn, *args, **kwargs):
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.mark.parametrize("eval_tech", ["c28", "c40"])
def test_accuracy_bands(benchmark, scale, eval_tech):
    report = _once(benchmark, accuracy_bands, eval_tech, scale)
    print("\n" + report.render())
    # the paper's V.B structure: the majority of cells clear 97 %, and
    # structurally supported cells do better than unsupported ones
    assert report.fraction_above > 0.5
    if IDENTICAL in report.by_match and NONE in report.by_match:
        identical_mean = report.by_match[IDENTICAL][1]
        none_mean = report.by_match[NONE][1]
        assert identical_mean > none_mean
    if IDENTICAL in report.by_match:
        assert report.by_match[IDENTICAL][1] > 0.99
