"""Ablation benches for the design choices DESIGN.md calls out.

1. Structural descriptor columns (our documented extension over the
   paper's feature set): with them, mixed-function groups stay separable;
   without them (paper-faithful), feature collisions cap accuracy.
2. Delay detection (the transient-simulation proxy): without it,
   high-drive cells lose almost all open-defect detections.
3. Stimulus policy: the adjacent set is a cheap subset of exhaustive that
   preserves static coverage.
"""

import numpy as np
import pytest

from repro.camatrix import build_matrix
from repro.camodel import generate_ca_model
from repro.learning import RandomForestClassifier, accuracy_score
from repro.library import SOI28, build_cell


@pytest.fixture(scope="module")
def mixed_group():
    """NAND2 + NOR2 flavors: same group, different functions."""
    cells = [
        build_cell(SOI28, fn, 1, flavor)
        for fn in ("NAND2", "NOR2")
        for flavor in SOI28.flavors
    ]
    models = [generate_ca_model(c, params=SOI28.electrical) for c in cells]
    return cells, models


def _loo_accuracy(cells, models, structural):
    matrices = [
        build_matrix(c, model=m, params=SOI28.electrical, structural_features=structural)
        for c, m in zip(cells, models)
    ]
    held = matrices[0]
    train = matrices[1:]
    X = np.vstack([m.features for m in train])
    y = np.concatenate([m.labels for m in train])
    clf = RandomForestClassifier(n_estimators=8, max_features=0.5, random_state=0)
    clf.fit(X, y)
    return accuracy_score(held.labels, clf.predict(held.features))


def test_ablation_structural_features(benchmark, mixed_group):
    cells, models = mixed_group

    def run():
        return (
            _loo_accuracy(cells, models, structural=True),
            _loo_accuracy(cells, models, structural=False),
        )

    with_struct, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nstructural features ON: {with_struct:.4f}, "
        f"OFF (paper-faithful): {without:.4f}"
    )
    # the descriptors must never hurt, and resolve cross-function rows
    assert with_struct >= without - 0.002
    assert with_struct > 0.99


def test_ablation_delay_detection(benchmark):
    cell = build_cell(SOI28, "NAND2", 2)  # parallel fingers mask opens

    def run():
        with_delay = generate_ca_model(cell, params=SOI28.electrical)
        without = generate_ca_model(
            cell, params=SOI28.electrical, delay_detection=False
        )
        return with_delay, without

    with_delay, without = benchmark.pedantic(run, rounds=1, iterations=1)
    opens_with = sum(
        with_delay.detection_row(d.name).any()
        for d in with_delay.defects
        if d.kind == "open"
    )
    opens_without = sum(
        without.detection_row(d.name).any()
        for d in without.defects
        if d.kind == "open"
    )
    print(f"\ndetectable opens with delay detection: {opens_with}, without: {opens_without}")
    assert opens_with > opens_without


def test_ablation_stimulus_policy(benchmark):
    cell = build_cell(SOI28, "AOI22", 1)

    def run():
        exhaustive = generate_ca_model(
            cell, params=SOI28.electrical, policy="exhaustive"
        )
        adjacent = generate_ca_model(cell, params=SOI28.electrical, policy="adjacent")
        return exhaustive, adjacent

    exhaustive, adjacent = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nexhaustive: {exhaustive.n_stimuli} stimuli, "
        f"coverage {exhaustive.coverage():.3f}; "
        f"adjacent: {adjacent.n_stimuli} stimuli, "
        f"coverage {adjacent.coverage():.3f}"
    )
    assert adjacent.n_stimuli < exhaustive.n_stimuli
    # adjacent keeps almost all of the exhaustive coverage
    assert adjacent.coverage() > exhaustive.coverage() - 0.05
