"""Scaling bench: the cost curve motivating the paper.

"The generation time of CA models for complete standard cell libraries of
a given technology may reach up to several months" — the cost grows as
(defects x stimuli) = O(T * 4^n).  This bench measures the measured
per-cell generation time and simulation count across cell sizes and
checks the growth shape.
"""

import time

import pytest

from repro.camodel import generate_ca_model
from repro.camodel.stats import library_stats
from repro.library import SOI28, build_cell

LADDER = [
    ("INV", 1),      # 2 transistors, 1 input
    ("NAND2", 1),    # 4 transistors
    ("AOI21", 1),    # 6 transistors, 3 inputs
    ("AOI22", 1),    # 8 transistors, 4 inputs
    ("NAND2", 4),    # 16 transistors (high drive)
    ("XOR2", 2),     # 20 transistors, multi-stage
]


def test_generation_scaling(benchmark):
    def run():
        rows = []
        for function, drive in LADDER:
            cell = build_cell(SOI28, function, drive)
            started = time.perf_counter()
            model = generate_ca_model(cell, params=SOI28.electrical)
            rows.append(
                (
                    cell.name,
                    cell.n_transistors,
                    model.simulation_count,
                    time.perf_counter() - started,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncell                 T   simulations   seconds")
    for name, n_tr, sims, seconds in rows:
        print(f"{name:<18} {n_tr:>3}   {sims:>10}   {seconds:7.2f}")

    # the simulation count grows with transistor count (same input count)
    by_name = {name: (n_tr, sims) for name, n_tr, sims, _s in rows}
    assert by_name["S28_NAND2X4"][1] > by_name["S28_NAND2X1"][1]
    # and explodes with input count (4^n stimuli)
    assert by_name["S28_AOI22X1"][1] > by_name["S28_AOI21X1"][1]


def test_library_stats_shape(benchmark):
    def run():
        pairs = []
        for function, drive in LADDER[:4]:
            cell = build_cell(SOI28, function, drive)
            pairs.append(
                (cell, generate_ca_model(cell, params=SOI28.electrical))
            )
        return library_stats(pairs)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    series = stats.simulations_by_size()
    print("\n(transistors, mean simulations):", series)
    values = [v for _s, v in series]
    assert values == sorted(values)  # monotone in cell size here
    assert stats.redundancy() > 0.3  # CA universes are highly redundant
