"""Instrumentation overhead bench for the repro.obs subsystem.

Tracing off is the default and must cost nothing measurable; tracing on
buffers a handful of spans per cell plus per-chunk counter merges, so the
acceptance bar is <5% slowdown on the parallel-generation bench.  Both
numbers land in the benchmark JSON via ``extra_info``.
"""

import time

from repro import obs
from repro.camodel import generate_ca_model
from repro.library import SOI28, build_cell

#: same cell as test_bench_parallel: the largest of the bench suite
LARGEST = ("AOI22", 1)

WORKERS = 4
ROUNDS = 3


def _best_seconds(run, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def test_tracing_overhead_parallel(benchmark):
    """Parallel generation with spans + metrics on vs. off: <5% overhead."""
    cell = build_cell(SOI28, *LARGEST)

    def plain():
        return generate_ca_model(
            cell, params=SOI28.electrical, parallelism=WORKERS
        )

    def traced():
        with obs.scoped(tracer=obs.Tracer(enabled=True), metrics=obs.Metrics()):
            return generate_ca_model(
                cell, params=SOI28.electrical, parallelism=WORKERS
            )

    plain()  # warm caches (fork, imports) outside the measured window
    base_seconds = _best_seconds(plain)
    traced_seconds = _best_seconds(traced)
    overhead = traced_seconds / base_seconds - 1.0

    benchmark.extra_info["base_seconds"] = round(base_seconds, 3)
    benchmark.extra_info["traced_seconds"] = round(traced_seconds, 3)
    benchmark.extra_info["overhead"] = round(overhead, 4)
    print(
        f"\n{cell.name}: plain {base_seconds:.3f}s, traced {traced_seconds:.3f}s "
        f"-> {overhead:+.2%} overhead"
    )

    # one timed round for the benchmark history
    benchmark.pedantic(traced, rounds=1, iterations=1)
    assert overhead < 0.05

    # and the traced run actually produced the merged span tree
    with obs.scoped(tracer=obs.Tracer(enabled=True)) as state:
        generate_ca_model(cell, params=SOI28.electrical, parallelism=WORKERS)
        spans = state.tracer.export()
    assert sum(1 for s in spans if s["name"] == "generate.chunk") == WORKERS
    assert obs.orphan_parents(spans) == []


def test_telemetry_persistence_overhead(benchmark, tmp_path):
    """Durable run telemetry (obs/ shards) on vs. off: <5% overhead.

    A resilient run with ``persist_telemetry=True`` (the default) writes
    one attempt shard per worker, forces worker tracing on, and writes a
    session shard; all of it rides on work the run already does (worker
    sidecars, ledger transitions), so the wall-clock cost must stay in
    the noise of an identical run with persistence off.
    """
    from repro.resilience.runner import run_library

    cells = [
        build_cell(SOI28, function, 1)
        for function in ("INV", "NAND2", "NOR2", "AOI21")
    ]
    counter = [0]

    def run(persist):
        counter[0] += 1
        run_library(
            cells,
            run_dir=tmp_path / f"run{counter[0]}",
            processes=2,
            retry_backoff=0.0,
            persist_telemetry=persist,
        )

    run(False)  # warm caches (fork, imports) outside the measured window
    base_seconds = _best_seconds(lambda: run(False))
    persisted_seconds = _best_seconds(lambda: run(True))
    overhead = persisted_seconds / base_seconds - 1.0

    benchmark.extra_info["base_seconds"] = round(base_seconds, 3)
    benchmark.extra_info["persisted_seconds"] = round(persisted_seconds, 3)
    benchmark.extra_info["overhead"] = round(overhead, 4)
    print(
        f"\nlibrary of {len(cells)}: plain {base_seconds:.3f}s, persisted "
        f"{persisted_seconds:.3f}s -> {overhead:+.2%} overhead"
    )

    # one timed round for the benchmark history
    benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    assert overhead < 0.05

    # and the persisted run is actually readable as one merged view
    from repro.obs.store import RunTelemetry

    tel = RunTelemetry.load(tmp_path / f"run{counter[0]}")
    assert len(tel.attempts) == len(cells)
    assert tel.reconcile() == []


def test_disabled_tracer_costs_nothing(benchmark):
    """Tracing off (the default): a null span is a dict lookup and a branch."""
    tracer = obs.Tracer(enabled=False)

    def spin(n=100_000):
        for _ in range(n):
            with tracer.span("hot.path", key=1):
                pass

    seconds = benchmark.pedantic(
        lambda: _best_seconds(spin, rounds=3), rounds=1, iterations=1
    )
    per_call = seconds / 100_000
    benchmark.extra_info["ns_per_disabled_span"] = round(per_call * 1e9)
    print(f"\ndisabled span: {per_call * 1e9:.0f} ns/call")
    # generous bound: even a slow box does a no-op context manager in <5us
    assert per_call < 5e-6
    assert tracer.export() == []
