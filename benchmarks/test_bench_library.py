"""Library-scale bench: cross-cell packed throughput vs per-cell batched.

The per-cell batch kernel already removed the scalar-python wall, but at
library scale its fixed per-call NumPy overhead returns: small cells
need hundreds of tiny kernel calls each.  The cross-cell engine
(:func:`repro.camodel.run_throughput`) packs phase batches from every
cell and defect into shared padded kernel calls, so the bench metric is
whole-library throughput — cells per minute — not per-cell seconds.

The measured numbers land in ``BENCH_library.json`` at the repo root
(CI archives every ``BENCH_*.json``).  Identity is asserted here too:
the speedup only counts because the engine's models are canonically
identical to the per-cell reference.
"""

import time

from repro.camodel import generate_ca_model, run_throughput
from repro.library import SOI28, build_cell
from repro.resilience.runner import canonical_model_dict

# Small cells at two drives: the regime where per-call kernel overhead
# dominates and cross-cell packing pays the most.
FUNCTIONS = ("INV", "NAND2", "NOR2", "AND2", "OR2")
DRIVES = (1, 2)


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_library_throughput_speedup(bench_record):
    """The cross-cell engine must at least double whole-library
    throughput over the per-cell batched baseline — while producing
    canonically identical models.  Delay detection is off so the
    measurement isolates phase solving."""
    cells = [build_cell(SOI28, fn, d) for fn in FUNCTIONS for d in DRIVES]
    kwargs = dict(delay_detection=False)

    baseline_seconds, baseline = _best_of(
        lambda: {
            cell.name: generate_ca_model(cell, batched=True, **kwargs)
            for cell in cells
        }
    )
    engine_seconds, engine = _best_of(lambda: run_throughput(cells, **kwargs))

    assert set(engine) == set(baseline)
    for name in baseline:
        assert canonical_model_dict(engine[name]) == canonical_model_dict(
            baseline[name]
        )

    baseline_cpm = len(cells) / baseline_seconds * 60.0
    engine_cpm = len(cells) / engine_seconds * 60.0
    speedup = baseline_seconds / engine_seconds
    bench_record.add(
        "library",
        benchmark="cross_cell_packed_vs_per_cell_batched",
        cells=len(cells),
        defects=sum(m.n_defects for m in baseline.values()),
        baseline_seconds=round(baseline_seconds, 4),
        engine_seconds=round(engine_seconds, 4),
        baseline_cells_per_minute=round(baseline_cpm, 1),
        engine_cells_per_minute=round(engine_cpm, 1),
        speedup=round(speedup, 2),
    )
    print(
        f"\nper-cell batched {baseline_cpm:.0f} cells/min vs packed engine "
        f"{engine_cpm:.0f} cells/min -> {speedup:.2f}x"
    )
    assert speedup >= 2.0
