"""Benchmark-harness configuration.

Every paper table and figure has a bench below this directory; run

    pytest benchmarks/ --benchmark-only

Scale is controlled by the REPRO_SCALE environment variable
('bench' default, 'small', 'default'); generated CA model libraries are
cached under .cache/ so only the first run pays the conventional
generation cost.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default=None,
        help="override experiment scale (bench/small/default)",
    )


@pytest.fixture(scope="session")
def scale(request):
    import os

    return (
        request.config.getoption("--repro-scale")
        or os.environ.get("REPRO_SCALE", "bench")
    )
