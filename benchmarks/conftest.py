"""Benchmark-harness configuration.

Every paper table and figure has a bench below this directory; run

    pytest benchmarks/ --benchmark-only

Scale is controlled by the REPRO_SCALE environment variable
('bench' default, 'small', 'default'); generated CA model libraries are
cached under .cache/ so only the first run pays the conventional
generation cost.

Benches that want machine-readable output opt in to the ``bench_record``
fixture: every record added under a group name is written to
``BENCH_<group>.json`` at the repository root when the session ends, so
CI can archive measured numbers (speedups, timings) as artifacts instead
of scraping them out of captured stdout.
"""

import json
import platform
import time
from pathlib import Path
from typing import Dict, List

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default=None,
        help="override experiment scale (bench/small/default)",
    )


@pytest.fixture(scope="session")
def scale(request):
    import os

    return (
        request.config.getoption("--repro-scale")
        or os.environ.get("REPRO_SCALE", "bench")
    )


class BenchRecorder:
    """Collects bench measurements and persists them as JSON files."""

    def __init__(self, root: Path):
        self.root = root
        self._groups: Dict[str, List[dict]] = {}

    def add(self, group: str, **record) -> None:
        """Record one measurement under *group* (one file per group)."""
        record.setdefault("timestamp", time.strftime("%Y-%m-%dT%H:%M:%S"))
        self._groups.setdefault(group, []).append(record)

    def flush(self) -> List[Path]:
        written = []
        for group, records in sorted(self._groups.items()):
            path = self.root / f"BENCH_{group}.json"
            payload = {
                "group": group,
                "python": platform.python_version(),
                "machine": platform.machine(),
                "records": records,
            }
            path.write_text(json.dumps(payload, indent=2) + "\n")
            written.append(path)
        return written


@pytest.fixture(scope="session")
def bench_record(request):
    recorder = BenchRecorder(Path(request.config.rootpath))
    yield recorder
    for path in recorder.flush():
        print(f"\nwrote {path}")
