"""Section V.C / Fig. 7 bench: the hybrid generation flow on C40.

Paper reference points: roughly half of the C40 cells clear the structural
analysis (29 % identical + 21 % equivalent), the ML-covered half saves
99.7 % of its SPICE time, the overall saving is substantial, and ML would
actually have predicted *more* cells well than the structural analysis
admits (~80 % vs 50 %).
"""

from repro.experiments.hybrid_study import hybrid_flow_study
from repro.flow.structure import EQUIVALENT, IDENTICAL, NONE


def test_hybrid_flow_study(benchmark, scale):
    result = benchmark.pedantic(
        hybrid_flow_study, args=(scale,), rounds=1, iterations=1
    )
    print("\n" + result.render())
    report = result.report
    fractions = report.fractions()

    # all three routes exercised, with a substantial simulated share
    assert fractions[IDENTICAL] > 0.1
    assert fractions[EQUIVALENT] > 0.1
    assert 0.05 < fractions[NONE] < 0.7

    # ML-covered side: the paper's 99.7 % reduction figure
    assert report.ledger.ml_side_reduction > 0.99
    # overall: meaningful savings, bounded by the simulated share
    assert 0.1 < report.ledger.total_reduction < 1.0

    # ML predictions routed by the structural analysis are good
    accuracies = [d.accuracy for d in report.decisions if d.route == "ml"]
    assert sum(a > 0.9 for a in accuracies) / len(accuracies) > 0.8

    # Routing calibration (our sharper counterpart of the paper's V.C
    # observation): the cells the structural analysis admits must predict
    # strictly better than the cells it routes to simulation would have.
    # (The paper's analysis under-admitted — 50 % cleared vs 80 % viable;
    # ours is calibrated, see EXPERIMENTS.md.)
    assert result.ml_viable_fraction is not None
    if result.uncleared_viable_fraction is not None:
        admitted_mean = sum(accuracies) / len(accuracies)
        assert admitted_mean > result.uncleared_mean_accuracy + 0.02
