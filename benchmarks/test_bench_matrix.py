"""Figs. 2/3 benches: CA-matrix creation pipeline throughput
(rewrite -> activity identification -> renaming -> matrix)."""

import pytest

from repro.camatrix import build_matrix, rename_transistors
from repro.camodel import generate_ca_model
from repro.library import SOI28, build_cell


@pytest.fixture(scope="module")
def aoi22_with_model():
    cell = build_cell(SOI28, "AOI22", 1)
    model = generate_ca_model(cell, params=SOI28.electrical)
    return cell, model


def test_transistor_renaming(benchmark):
    cell = build_cell(SOI28, "AOI22", 2)
    renamed = benchmark(rename_transistors, cell, SOI28.electrical)
    assert len(renamed.mapping) == cell.n_transistors


def test_matrix_creation(benchmark, aoi22_with_model):
    cell, model = aoi22_with_model
    matrix = benchmark(
        build_matrix, cell, model=model, params=SOI28.electrical
    )
    assert matrix.labels is not None
    assert matrix.n_rows == (model.n_defects + 1) * model.n_stimuli


def test_inference_matrix_creation(benchmark):
    cell = build_cell(SOI28, "AOI21", 1)
    matrix = benchmark(build_matrix, cell, params=SOI28.electrical)
    assert matrix.labels is None
