"""Bench-trajectory regression gate (stdlib only).

Compares freshly measured ``BENCH_<group>.json`` records (written by the
``bench_record`` fixture in ``benchmarks/conftest.py``) against the
committed baselines under ``benchmarks/baselines/`` and fails when a
tracked ratio regressed past the tolerance band.

Only *relative* metrics are gated — every key named ``speedup`` (or
ending in ``_speedup``).  Raw seconds depend on the machine; a speedup
is a ratio of two runs on the same machine, so it travels: the packed
engine being 2x faster than the per-cell loop is a property of the code,
not of the CI runner.  Higher is better; a fresh speedup may fall at
most ``tolerance`` (default 25%, generous because bench cells are small)
below its baseline.  A benchmark present in a baseline but missing from
the fresh file fails too — a silently dropped bench is how trajectories
rot.  New benchmarks without a baseline are reported but pass.

Usage (what the CI bench job runs)::

    python benchmarks/check_regression.py BENCH_generation.json BENCH_library.json
    python benchmarks/check_regression.py --tolerance 0.3 BENCH_library.json

Exit codes: 0 ok, 1 regression (or missing benchmark), 2 usage error.
"""

import argparse
import json
import sys
from pathlib import Path

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: record keys that identify a benchmark within a group file
IDENTITY_KEYS = ("benchmark", "cell", "cells", "function")


def _identity(record):
    return tuple(
        (key, record[key]) for key in IDENTITY_KEYS if key in record
    )


def _gated_metrics(record):
    return {
        key: float(value)
        for key, value in record.items()
        if (key == "speedup" or key.endswith("_speedup"))
        and isinstance(value, (int, float))
    }


def _load(path):
    data = json.loads(Path(path).read_text())
    return data["group"], {_identity(r): r for r in data["records"]}


def check_group(fresh_path, baseline_dir, tolerance):
    """Compare one fresh group file; returns a list of failure strings."""
    group, fresh = _load(fresh_path)
    baseline_path = baseline_dir / f"BENCH_{group}.json"
    if not baseline_path.exists():
        print(f"{group}: no baseline at {baseline_path}; skipping gate")
        return []
    _, baseline = _load(baseline_path)
    failures = []
    for identity, base_record in sorted(baseline.items()):
        label = ", ".join(f"{k}={v}" for k, v in identity)
        fresh_record = fresh.get(identity)
        if fresh_record is None:
            failures.append(
                f"{group}: benchmark [{label}] present in the baseline but "
                "missing from the fresh run"
            )
            continue
        for key, base_value in sorted(_gated_metrics(base_record).items()):
            fresh_value = _gated_metrics(fresh_record).get(key)
            if fresh_value is None:
                failures.append(
                    f"{group}: [{label}] {key} missing from the fresh run "
                    f"(baseline {base_value:g})"
                )
                continue
            floor = base_value * (1.0 - tolerance)
            verdict = "ok" if fresh_value >= floor else "REGRESSED"
            print(
                f"{group}: [{label}] {key} = {fresh_value:g} "
                f"(baseline {base_value:g}, floor {floor:g}) {verdict}"
            )
            if fresh_value < floor:
                failures.append(
                    f"{group}: [{label}] {key} regressed to {fresh_value:g} "
                    f"(baseline {base_value:g}, tolerance {tolerance:.0%})"
                )
    for identity in sorted(set(fresh) - set(baseline)):
        label = ", ".join(f"{k}={v}" for k, v in identity)
        print(f"{group}: [{label}] has no baseline yet (passes; consider adding one)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", nargs="+", help="freshly written BENCH_<group>.json file(s)"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=BASELINE_DIR,
        help=f"directory of committed baselines (default {BASELINE_DIR})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop below the baseline (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    failures = []
    for fresh_path in args.fresh:
        if not Path(fresh_path).exists():
            print(f"error: {fresh_path} does not exist", file=sys.stderr)
            return 2
        failures.extend(
            check_group(fresh_path, args.baseline_dir, args.tolerance)
        )
    if failures:
        print(
            f"\n{len(failures)} bench regression(s):", file=sys.stderr
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
