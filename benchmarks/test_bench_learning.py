"""Learning benches: the Section II.B algorithm comparison and RF cost.

The paper picked Random Forest "after experimenting several learning
algorithms (k-NN, Support Vector Machine, Random Forest, Linear, Ridge,
etc.) and observing their inference accuracies"; this bench reruns that
comparison on a real group and checks that Random Forest wins.
"""

import numpy as np
import pytest

from repro.camodel import generate_ca_model
from repro.learning import (
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    RandomForestClassifier,
    RidgeClassifier,
    accuracy_score,
    build_samples,
    sample_rows,
    stack_group,
)
from repro.library import SOI28, build_cell


@pytest.fixture(scope="module")
def group_data():
    cells = [
        build_cell(SOI28, fn, 1, flavor)
        for fn in ("NAND2", "NOR2")
        for flavor in SOI28.flavors
    ]
    samples = build_samples(
        [(c, generate_ca_model(c, params=SOI28.electrical)) for c in cells],
        SOI28.electrical,
    )
    held_out = samples[0]
    train = samples[1:]
    X, y = stack_group(train)
    X_eval, y_eval = sample_rows(held_out)
    return X, y, X_eval, y_eval


ALGORITHMS = {
    "random_forest": lambda: RandomForestClassifier(
        n_estimators=8, max_features=0.5, random_state=0
    ),
    "knn": lambda: KNeighborsClassifier(n_neighbors=3),
    "ridge": lambda: RidgeClassifier(),
    "logistic": lambda: LogisticRegression(n_iterations=200),
    "linear_svm": lambda: LinearSVC(n_iterations=800, random_state=0),
}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_algorithm_comparison(benchmark, group_data, name):
    X, y, X_eval, y_eval = group_data

    def run():
        clf = ALGORITHMS[name]()
        clf.fit(X, y)
        return accuracy_score(y_eval, clf.predict(X_eval))

    accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{name}: held-out accuracy {accuracy:.4f}")
    if name == "random_forest":
        assert accuracy > 0.98
    else:
        assert accuracy > 0.5


def test_random_forest_wins(group_data):
    """The paper's model-selection conclusion."""
    X, y, X_eval, y_eval = group_data
    scores = {}
    for name, factory in ALGORITHMS.items():
        clf = factory()
        clf.fit(X, y)
        scores[name] = accuracy_score(y_eval, clf.predict(X_eval))
    print("\n" + "\n".join(f"  {k}: {v:.4f}" for k, v in sorted(scores.items())))
    assert scores["random_forest"] >= max(
        v for k, v in scores.items() if k != "random_forest"
    ) - 1e-9


def test_forest_fit_predict(benchmark):
    rng = np.random.default_rng(0)
    X = rng.integers(0, 4, size=(40_000, 60)).astype(np.int8)
    y = ((X[:, 0] > 1) & (X[:, 30] == 0)).astype(int)

    def run():
        clf = RandomForestClassifier(
            n_estimators=8, max_features=0.5, random_state=0
        )
        clf.fit(X[:30_000], y[:30_000])
        return accuracy_score(y[30_000:], clf.predict(X[30_000:]))

    accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    assert accuracy > 0.99


def _pre_pr_predict_proba(forest, X):
    """The pre-frontier-engine inference path, verbatim.

    Per-tree single-lane descent plus a Python per-class alignment
    loop — the reference the fused :class:`PackedForest` descent is
    measured against (and must match bit-for-bit).
    """
    X = np.asarray(X)
    accumulated = np.zeros((len(X), len(forest.classes_)))
    for tree in forest.estimators_:
        proba = tree.predict_proba(X)
        for j, cls_ in enumerate(tree.classes_):
            k = int(np.searchsorted(forest.classes_, cls_))
            accumulated[:, k] += proba[:, j]
    return accumulated / len(forest.estimators_)


def test_frontier_fit_speedup(bench_record, group_data):
    """Level-synchronous growth against the recursive reference.

    Same splits node for node (checked below), only the growth order
    and batching differ; the acceptance bar is 3x on the real
    NAND2/NOR2 training group.
    """
    import time

    X, y, _, _ = group_data

    def best_of(engine, rounds=3):
        best = float("inf")
        clf = None
        for _ in range(rounds):
            clf = RandomForestClassifier(
                n_estimators=20, max_features=0.5, random_state=0,
                engine=engine,
            )
            start = time.perf_counter()
            clf.fit(X, y)
            best = min(best, time.perf_counter() - start)
        return best, clf

    recursive_seconds, recursive = best_of("recursive")
    frontier_seconds, frontier = best_of("frontier")

    for a, b in zip(recursive.estimators_, frontier.estimators_):
        assert np.array_equal(a._feature, b._feature)
        assert np.array_equal(a._threshold, b._threshold)
        assert np.array_equal(a._counts, b._counts)

    speedup = recursive_seconds / frontier_seconds
    bench_record.add(
        "learning",
        benchmark="frontier_vs_recursive_fit",
        cells="NAND2+NOR2 SOI28",
        train_rows=len(X),
        trees=20,
        recursive_seconds=round(recursive_seconds, 4),
        frontier_seconds=round(frontier_seconds, 4),
        fit_speedup=round(speedup, 2),
    )
    print(f"\nfit: recursive {recursive_seconds:.3f}s "
          f"frontier {frontier_seconds:.3f}s -> {speedup:.2f}x")
    assert speedup >= 3.0


def test_packed_predict_speedup(bench_record, group_data):
    """Fused multi-tree inference against the per-tree reference loop.

    Hybrid-study shape: a 100-tree forest fitted on the NAND2/NOR2
    group scoring the held-out cell's rows.  The packed path must be
    bit-identical and at least 5x faster.
    """
    import time

    X, y, X_eval, _ = group_data

    forest = RandomForestClassifier(
        n_estimators=100, max_features=0.5, random_state=0
    ).fit(X, y)
    packed = forest.packed_forest()

    def best_of(fn, rounds=5):
        best = float("inf")
        value = None
        for _ in range(rounds):
            start = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - start)
        return best, value

    loop_seconds, loop_proba = best_of(
        lambda: _pre_pr_predict_proba(forest, X_eval)
    )
    packed_seconds, packed_proba = best_of(
        lambda: packed.predict_proba(X_eval)
    )

    assert np.array_equal(loop_proba, packed_proba)

    speedup = loop_seconds / packed_seconds
    bench_record.add(
        "learning",
        benchmark="packed_vs_loop_predict",
        cells="NAND2+NOR2 SOI28",
        eval_rows=len(X_eval),
        trees=100,
        loop_seconds=round(loop_seconds, 4),
        packed_seconds=round(packed_seconds, 4),
        predict_speedup=round(speedup, 2),
    )
    print(f"\npredict: loop {loop_seconds*1e3:.1f}ms "
          f"packed {packed_seconds*1e3:.1f}ms -> {speedup:.2f}x")
    assert speedup >= 5.0
