"""Learning benches: the Section II.B algorithm comparison and RF cost.

The paper picked Random Forest "after experimenting several learning
algorithms (k-NN, Support Vector Machine, Random Forest, Linear, Ridge,
etc.) and observing their inference accuracies"; this bench reruns that
comparison on a real group and checks that Random Forest wins.
"""

import numpy as np
import pytest

from repro.camodel import generate_ca_model
from repro.learning import (
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    RandomForestClassifier,
    RidgeClassifier,
    accuracy_score,
    build_samples,
    sample_rows,
    stack_group,
)
from repro.library import SOI28, build_cell


@pytest.fixture(scope="module")
def group_data():
    cells = [
        build_cell(SOI28, fn, 1, flavor)
        for fn in ("NAND2", "NOR2")
        for flavor in SOI28.flavors
    ]
    samples = build_samples(
        [(c, generate_ca_model(c, params=SOI28.electrical)) for c in cells],
        SOI28.electrical,
    )
    held_out = samples[0]
    train = samples[1:]
    X, y = stack_group(train)
    X_eval, y_eval = sample_rows(held_out)
    return X, y, X_eval, y_eval


ALGORITHMS = {
    "random_forest": lambda: RandomForestClassifier(
        n_estimators=8, max_features=0.5, random_state=0
    ),
    "knn": lambda: KNeighborsClassifier(n_neighbors=3),
    "ridge": lambda: RidgeClassifier(),
    "logistic": lambda: LogisticRegression(n_iterations=200),
    "linear_svm": lambda: LinearSVC(n_iterations=800, random_state=0),
}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_algorithm_comparison(benchmark, group_data, name):
    X, y, X_eval, y_eval = group_data

    def run():
        clf = ALGORITHMS[name]()
        clf.fit(X, y)
        return accuracy_score(y_eval, clf.predict(X_eval))

    accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{name}: held-out accuracy {accuracy:.4f}")
    if name == "random_forest":
        assert accuracy > 0.98
    else:
        assert accuracy > 0.5


def test_random_forest_wins(group_data):
    """The paper's model-selection conclusion."""
    X, y, X_eval, y_eval = group_data
    scores = {}
    for name, factory in ALGORITHMS.items():
        clf = factory()
        clf.fit(X, y)
        scores[name] = accuracy_score(y_eval, clf.predict(X_eval))
    print("\n" + "\n".join(f"  {k}: {v:.4f}" for k, v in sorted(scores.items())))
    assert scores["random_forest"] >= max(
        v for k, v in scores.items() if k != "random_forest"
    ) - 1e-9


def test_forest_fit_predict(benchmark):
    rng = np.random.default_rng(0)
    X = rng.integers(0, 4, size=(40_000, 60)).astype(np.int8)
    y = ((X[:, 0] > 1) & (X[:, 30] == 0)).astype(int)

    def run():
        clf = RandomForestClassifier(
            n_estimators=8, max_features=0.5, random_state=0
        )
        clf.fit(X[:30_000], y[:30_000])
        return accuracy_score(y[30_000:], clf.predict(X[30_000:]))

    accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    assert accuracy > 0.99
