"""Extension bench: relaxed structural analysis (the paper's future work).

Section V.C: "there is still room for further improvement of the
structural analysis".  The relaxed similarity router admits more cells to
the ML path than the strict identical/equivalent analysis; this bench
verifies it raises ML coverage (and the total time reduction) without
collapsing prediction quality.
"""

import numpy as np
import pytest

from repro.camodel import generate_ca_model
from repro.flow import HybridFlow
from repro.learning import build_samples
from repro.library import C40, SOI28, build_library


@pytest.fixture(scope="module")
def setup():
    train_library = build_library(
        SOI28,
        functions=("NAND2", "NOR2", "AND2", "OR2", "AOI21", "OAI21"),
        drives=(1, 2),
        flavors=SOI28.flavors[:2],
    )
    train = build_samples(
        [(c, generate_ca_model(c, params=SOI28.electrical)) for c in train_library],
        SOI28.electrical,
    )
    target_library = build_library(
        C40,
        functions=("NAND2", "NOR2", "AND2", "AOI21", "NAND2B", "NOR2B", "XOR2"),
        drives=(1, 2),
        flavors=C40.flavors[:1],
    )
    references = {
        c.name: generate_ca_model(c, params=C40.electrical) for c in target_library
    }
    return train, target_library, references


def _run(train, cells, references, router):
    flow = HybridFlow(
        train, params=C40.electrical, router=router, similarity_threshold=0.45
    )
    return flow.run(list(cells), references=references)


def test_relaxed_router_extends_ml_coverage(benchmark, setup):
    train, target_library, references = setup

    def run():
        strict = _run(train, target_library, references, "strict")
        relaxed = _run(train, target_library, references, "relaxed")
        return strict, relaxed

    strict, relaxed = benchmark.pedantic(run, rounds=1, iterations=1)

    strict_ml = sum(1 for d in strict.decisions if d.route == "ml")
    relaxed_ml = sum(1 for d in relaxed.decisions if d.route == "ml")
    print(
        f"\nML-routed cells: strict {strict_ml}/{len(strict.decisions)}, "
        f"relaxed {relaxed_ml}/{len(relaxed.decisions)}"
    )
    assert relaxed_ml > strict_ml

    # quality on the additionally admitted cells stays usable
    extra = [
        d for d in relaxed.decisions if d.match == "relaxed" and d.accuracy is not None
    ]
    assert extra
    mean_extra = float(np.mean([d.accuracy for d in extra]))
    print(f"mean accuracy of relaxed-admitted cells: {mean_extra:.4f}")
    assert mean_extra > 0.8

    # and the total time reduction improves
    print(
        f"total reduction: strict {strict.ledger.total_reduction:.3f}, "
        f"relaxed {relaxed.ledger.total_reduction:.3f}"
    )
    assert relaxed.ledger.total_reduction > strict.ledger.total_reduction
