"""Table IV benches: the paper's headline prediction-accuracy grids.

Shape targets (not absolute third decimals — the substrate is a
switch-level simulator, not the authors' SPICE farm):

* IV.a  same technology: near-perfect accuracy, most groups containing at
  least one perfectly predicted cell (the paper's green boxes);
* IV.b / IV.c  cross technology: clearly lower than IV.a, bimodal —
  a majority of cells above 97 % with a low-accuracy tail.
"""

import pytest

from repro.experiments.table4 import (
    table4a_same_technology,
    table4bc_cross_technology,
)


def _once(benchmark, fn, *args, **kwargs):
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def test_table4a_same_technology(benchmark, scale):
    report, grid = _once(benchmark, table4a_same_technology, scale)
    print("\n" + grid)
    assert report.mean_accuracy() > 0.99
    assert report.accuracy_fraction_above(0.97) > 0.9
    table = report.group_table()
    perfect_groups = sum(1 for box in table.values() if box["perfect"] > 0)
    assert perfect_groups >= len(table) * 0.7  # mostly green boxes


@pytest.mark.parametrize("eval_tech", ["c28", "c40"])
def test_table4bc_cross_technology(benchmark, scale, eval_tech):
    report, grid = _once(benchmark, table4bc_cross_technology, eval_tech, scale)
    print("\n" + grid)
    # clearly below the same-technology regime but still strong
    assert 0.9 < report.mean_accuracy() < 0.999
    # bimodal: most cells above 97 % (paper: 68 % C28, 80 % C40), with a
    # genuine low tail
    above = report.accuracy_fraction_above(0.97)
    assert 0.5 < above < 0.98
    worst = min(e.accuracy for e in report.evaluations)
    assert worst < 0.97
