"""Quickstart: predict a cell's CA model without simulating its defects.

Walks the whole methodology on a NAND2:

1. build a transistor-level cell and print its SPICE netlist;
2. generate CA models conventionally for a few training cells (the only
   simulation-heavy step);
3. rewrite everything into CA-matrices with canonical transistor renaming;
4. train a Random Forest and predict the CA model of an unseen cell from a
   *different* technology;
5. compare against the conventionally generated reference.

Run:  python examples/quickstart.py
"""

from repro.camatrix import inference_matrix, training_matrix
from repro.camodel import generate_ca_model
from repro.learning import RandomForestClassifier, accuracy_score, stack_group
from repro.learning.datasets import CellSample
from repro.library import C28, SOI28, build_cell
from repro.spice import write_cell


def main() -> None:
    # -- 1. the cell zoo ------------------------------------------------
    training_cells = [build_cell(SOI28, "NAND2", 1, f) for f in SOI28.flavors]
    new_cell = build_cell(C28, "NAND2", 1)  # other technology, other dialect
    print("A training cell (28SOI dialect):\n")
    print(write_cell(training_cells[0], SOI28.dialect))
    print("The cell to characterize (C28 dialect):\n")
    print(write_cell(new_cell, C28.dialect))

    # -- 2. conventional generation for the training set ----------------
    samples = []
    for cell in training_cells:
        model = generate_ca_model(cell, params=SOI28.electrical)
        matrix = training_matrix(cell, model, SOI28.electrical)
        samples.append(CellSample(cell=cell, model=model, matrix=matrix))
        print(
            f"generated {cell.name}: {model.n_defects} defects x "
            f"{model.n_stimuli} stimuli, coverage {model.coverage():.2%}"
        )

    # -- 3./4. train and predict ----------------------------------------
    X, y = stack_group(samples)
    forest = RandomForestClassifier(n_estimators=8, max_features=0.5, random_state=0)
    forest.fit(X, y)

    matrix = inference_matrix(new_cell, C28.electrical)
    predicted = forest.predict(matrix.features)
    predicted_model = matrix.to_model(predicted)
    print(f"\npredicted CA model for {new_cell.name} with zero defect simulations")

    # -- 5. compare with the conventional flow --------------------------
    reference = generate_ca_model(new_cell, params=C28.electrical)
    agreement = (predicted_model.detection == reference.detection).mean()
    print(f"detection-table agreement vs simulation: {agreement:.2%}")
    print(f"reference coverage {reference.coverage():.2%}, "
          f"predicted coverage {predicted_model.coverage():.2%}")
    row_accuracy = accuracy_score(
        training_matrix(new_cell, reference, C28.electrical).labels,
        predicted,
    )
    print(f"per-row prediction accuracy: {row_accuracy:.2%}")


if __name__ == "__main__":
    main()
