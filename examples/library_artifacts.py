"""Export every library artifact a downstream flow consumes.

Builds a small 28SOI library and writes, into ``artifacts/``:

* the SPICE netlists in the library's own dialect,
* a DSPF-annotated netlist (layout-parasitic flavour) for one cell,
* the functional Liberty (.lib) view,
* a Verilog switch-level model file,
* a UDFM fault-model file for a characterized cell,
* a VCD waveform trace of a defective simulation.

Run:  python examples/library_artifacts.py [OUTPUT_DIR]
"""

import sys
from pathlib import Path

from repro.camodel import generate_ca_model, save_udfm
from repro.library import SOI28, build_library, save_liberty
from repro.simulation import CellSimulator, DefectEffect, capture, dump_vcd
from repro.spice import annotate, to_verilog_library, write_library


def main(output_dir: str = "artifacts") -> None:
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    library = build_library(
        SOI28,
        functions=("INV", "NAND2", "NOR2", "AOI21", "HA1"),
        drives=(1, 2),
        flavors=SOI28.flavors[:1],
    )
    print(f"built {len(library)} cells of {library.name}")

    spice_path = out / f"{library.name}.sp"
    spice_path.write_text(
        write_library(list(library), SOI28.dialect, title=f"{library.name} cells")
    )
    print(f"wrote {spice_path}")

    nand2 = library.cell("S28_NAND2X1")
    dspf_path = out / "S28_NAND2X1.dspf.sp"
    dspf_path.write_text(annotate(nand2))
    print(f"wrote {dspf_path} (parasitic-annotated)")

    liberty_path = save_liberty(library, out / f"{library.name}.lib")
    print(f"wrote {liberty_path}")

    verilog_path = out / f"{library.name}.v"
    verilog_path.write_text(to_verilog_library(list(library)))
    print(f"wrote {verilog_path}")

    model = generate_ca_model(nand2, params=SOI28.electrical)
    udfm_path = save_udfm(model, out / "S28_NAND2X1.udfm")
    print(
        f"wrote {udfm_path} ({model.n_defects} defects, "
        f"{len(model.equivalence())} classes)"
    )

    # a defective waveform: stuck-open NMOS under a two-pattern sequence
    bottom = next(t for t in nand2.transistors if t.is_nmos and t.source == "VSS")
    faulty = CellSimulator(
        nand2, SOI28.electrical, DefectEffect(removed=frozenset({bottom.name}))
    )
    trace = capture(faulty, [(0, 1), (1, 1), (0, 1), (1, 1)])
    vcd_path = dump_vcd(trace, out / "S28_NAND2X1_stuck_open.vcd")
    print(f"wrote {vcd_path} (Z stays {trace.of('Z')[-1]} instead of falling)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "artifacts")
