"""Cross-technology CA model prediction (the Table IV.b / IV.c protocol).

Trains on a small 28SOI library and predicts cells of C40 and C28,
printing per-cell accuracies together with the structural-analysis verdict
(identical / equivalent / none) that the hybrid flow would use.

Run:  python examples/cross_technology.py
"""

from repro.camodel import generate_ca_model
from repro.flow import StructuralIndex
from repro.learning import build_samples, cross_technology
from repro.library import C28, C40, SOI28, build_library


def build(tech, functions, flavors=None):
    library = build_library(
        tech, functions=functions, drives=(1, 2),
        flavors=flavors if flavors is not None else tech.flavors,
    )
    pairs = [(c, generate_ca_model(c, params=tech.electrical)) for c in library]
    return build_samples(pairs, tech.electrical)


def main() -> None:
    train_functions = ("NAND2", "NOR2", "AND2", "OR2", "AOI21", "OAI21", "XOR2")
    print("generating 28SOI training models (the one-off simulation cost)...")
    train = build(SOI28, train_functions)
    print(f"  {len(train)} training cells ready")

    index = StructuralIndex()
    for sample in train:
        index.add(sample.matrix.renamed)

    for tech, functions in (
        (C40, ("NAND2", "NOR2", "AND2", "AOI21", "NAND2B", "XOR2")),
        (C28, ("NAND2", "NOR2", "OR2", "OAI21", "MAJI3", "XOR2")),
    ):
        print(f"\npredicting {tech.name} cells from the 28SOI model:")
        samples = build(tech, functions, flavors=tech.flavors[:1])
        report = cross_technology(train, samples, kinds={"open"})
        match_of = {s.name: index.match(s.matrix.renamed) for s in samples}
        for evaluation in sorted(report.evaluations, key=lambda e: e.cell_name):
            verdict = match_of[evaluation.cell_name]
            print(
                f"  {evaluation.cell_name:<18} group={evaluation.group_key} "
                f"match={verdict:<10} accuracy={evaluation.accuracy:.4f}"
            )
        for name in report.uncovered:
            print(f"  {name:<18} (no training group - paper's empty box)")
        print(
            f"  mean accuracy {report.mean_accuracy():.4f}; "
            f"{report.accuracy_fraction_above(0.97):.0%} of cells above 97%"
        )


if __name__ == "__main__":
    main()
