"""Cell-aware test compaction and diagnosis — the downstream consumers
the paper's introduction motivates ("guide the test pattern generation and
CA diagnosis phases").

1. Generate (or predict) a CA model for a cell.
2. Compact the exhaustive stimulus set into a minimal covering test set.
3. Inject a hidden defect, "test" the cell with the compacted set, and
   diagnose which defect class explains the observed failures.

Run:  python examples/test_and_diagnose.py
"""

import numpy as np

from repro.camodel import detect, diagnose, generate_ca_model, select_patterns
from repro.library import SOI28, build_cell
from repro.logic import word_to_string
from repro.simulation import CellSimulator


def main() -> None:
    cell = build_cell(SOI28, "AOI21", 1)
    # delay detection off: this example's emulated tester observes logic
    # values only, so the dictionary must use the same detection rule
    model = generate_ca_model(cell, params=SOI28.electrical, delay_detection=False)
    print(f"{cell.name}: {model.n_defects} defects, {model.n_stimuli} stimuli")

    # --- test compaction -------------------------------------------------
    pattern_set = select_patterns(model)
    print(
        f"\ncompacted {model.n_stimuli} stimuli down to "
        f"{len(pattern_set.stimuli)} covering patterns "
        f"(coverage {pattern_set.coverage:.0%} of detectable classes):"
    )
    for index in pattern_set.stimuli:
        word = word_to_string(model.stimuli[index])
        detected = int(model.detection[:, index].sum())
        print(f"  {word:>6}  detects {detected} defects")
    print(f"undetectable defects (benign class): {len(pattern_set.undetectable)}")

    # --- silicon emulation: pick a hidden defect and test the cell -------
    hidden = next(
        d for d in model.defects if model.detection_row(d.name).sum() >= 2
    )
    print(f"\nhidden defect injected in 'silicon': {hidden.describe()}")
    effect = hidden.effect(cell, SOI28.electrical.short_resistance)
    faulty = CellSimulator(cell, SOI28.electrical, effect)
    observed = np.zeros(model.n_stimuli, dtype=np.int8)
    for i, word in enumerate(model.stimuli):
        observed[i] = detect(model.golden[i], faulty.output_response(word))
    print(f"tester observed {int(observed.sum())} failing stimuli")

    # --- diagnosis --------------------------------------------------------
    candidates = diagnose(model, observed, top=3)
    print("\ndiagnosis (ranked defect equivalence classes):")
    for rank, candidate in enumerate(candidates, start=1):
        mark = "<- exact" if candidate.exact else ""
        names = ", ".join(candidate.defect_names[:5])
        print(f"  #{rank} score={candidate.score:.3f} [{names}] {mark}")
    top = candidates[0]
    if hidden.name in top.defect_names:
        print(f"\nhidden defect {hidden.name} correctly identified.")
    else:
        print(f"\nhidden defect {hidden.name} not in the top class (expected "
              "when its signature is shared).")


if __name__ == "__main__":
    main()
