"""Fig. 1 — the conventional (simulation-based) CA generation flow.

Characterizes one cell exhaustively: enumerates its defect universe,
simulates every defect against every stimulus, prints the detection table,
the defect equivalence classes and the static/dynamic/undetected split.

Run:  python examples/conventional_flow.py [FUNCTION] [DRIVE]
"""

import sys

from repro.camodel import generate_ca_model
from repro.defects import collapse_ratio
from repro.library import SOI28, build_cell
from repro.logic import word_to_string


def main(function: str = "AOI21", drive: int = 1) -> None:
    cell = build_cell(SOI28, function, drive)
    print(f"cell {cell.name}: {cell.n_inputs} inputs, {cell.n_transistors} transistors")

    model = generate_ca_model(cell, params=SOI28.electrical, keep_responses=True)
    print(
        f"simulated {model.simulation_count} (defect, stimulus) pairs in "
        f"{model.generation_seconds:.2f}s"
    )
    summary = model.summary()
    for key, value in summary.items():
        print(f"  {key}: {value}")

    # detection table, one row per defect equivalence class
    classes = model.equivalence()
    print(
        f"\n{model.n_defects} defects collapse into {len(classes)} equivalence "
        f"classes ({collapse_ratio(classes, model.n_defects):.0%} redundant)"
    )
    stimuli = model.stimulus_strings()
    print("\ndetection table (equivalence-class representatives):")
    print("  stimuli: " + " ".join(stimuli[:16]) + (" ..." if len(stimuli) > 16 else ""))
    for eq_class in classes[:12]:
        row = "".join(str(v) for v in eq_class.detection[:16])
        members = ",".join(eq_class.members[:4])
        more = "..." if len(eq_class.members) > 4 else ""
        kind = model.defect_type(eq_class.representative)
        print(f"  {row}  [{kind:10}] {members}{more}")

    # show one stuck-open style defect in detail
    dynamic = [
        d for d in model.defects if model.defect_type(d.name) == "dynamic"
    ]
    if dynamic:
        defect = dynamic[0]
        print(f"\nsequence-dependent defect: {defect.describe()}")
        row = model.detection_row(defect.name)
        detecting = [
            word_to_string(model.stimuli[i]) for i in range(len(row)) if row[i]
        ]
        print(f"  detected only by two-pattern stimuli: {detecting[:8]}")


if __name__ == "__main__":
    fn = sys.argv[1] if len(sys.argv) > 1 else "AOI21"
    drv = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    main(fn, drv)
