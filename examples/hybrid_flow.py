"""Fig. 7 — the hybrid CA model generation flow.

Seeds the flow with 28SOI CA models, then characterizes a batch of C40
cells: structurally matched cells go through ML inference, unmatched ones
through conventional simulation whose results feed back into the training
set.  Prints the per-cell routing and the generation-time ledger in
SPICE-license units (the paper's 99.7 % / ~38 % reduction arithmetic).

Run:  python examples/hybrid_flow.py
"""

from repro.camodel import generate_ca_model
from repro.flow import CostModel, HybridFlow
from repro.learning import build_samples
from repro.library import C40, SOI28, build_library


def main() -> None:
    print("seeding with 28SOI CA models...")
    train_library = build_library(
        SOI28,
        functions=("NAND2", "NOR2", "AND2", "OR2", "AOI21", "OAI21"),
        drives=(1, 2),
        flavors=SOI28.flavors[:2],
    )
    train = build_samples(
        [(c, generate_ca_model(c, params=SOI28.electrical)) for c in train_library],
        SOI28.electrical,
    )

    target_library = build_library(
        C40,
        functions=("NAND2", "NOR2", "AND2", "OR2", "AOI21", "XOR2", "NAND2B"),
        drives=(1, 2),
        flavors=C40.flavors[:1],
    )
    references = {
        c.name: generate_ca_model(c, params=C40.electrical) for c in target_library
    }

    flow = HybridFlow(train, params=C40.electrical, cost_model=CostModel())
    report = flow.run(list(target_library), references=references)

    print("\nper-cell routing:")
    for decision in report.decisions:
        accuracy = (
            f"accuracy={decision.accuracy:.4f}" if decision.route == "ml" else "(simulated)"
        )
        print(
            f"  {decision.cell_name:<16} match={decision.match:<10} "
            f"route={decision.route:<8} {accuracy}"
        )

    print("\ngeneration-time ledger (SPICE-license units):")
    for key, value in report.summary().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
