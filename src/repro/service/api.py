"""Thin job API over a service run directory.

The coordination substrate of :mod:`repro.service` is the run directory
itself, so the job API is deliberately thin: :func:`submit_library`
materializes everything a worker needs — the cell netlist texts, the
option fingerprint, per-cell content keys, the lease TTL and retry
budget — into an atomic ``job.json`` manifest next to the
:class:`~repro.resilience.ledger.RunLedger`, and every later call
(``status`` / ``stream`` / ``fetch_models``) is a pure read over the
ledger, the lease directory and the checkpoint artifacts.  Any number
of clients can therefore poll one run concurrently, from any process or
machine that sees the directory:

>>> job = submit_library(cells, "runs/lib")           # doctest: +SKIP
>>> serve(job.run_dir, workers=4)                     # doctest: +SKIP
>>> for status in job.stream():                       # doctest: +SKIP
...     print(status.render())
>>> models = job.fetch_models()                       # doctest: +SKIP

The manifest carries the **same** option fingerprint
:func:`repro.resilience.runner.run_library` computes, so a service run
and a sequential run of the same cells share content keys — which is
what makes their artifacts, ``failures.json`` and
``metrics_total()`` byte-comparable (the guarantee the chaos suites
enforce).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro import obs
from repro.camodel.batch import ensure_unique_cell_names
from repro.camodel.generate import DEFAULT_SLOW_FACTOR, PhaseCacheArg
from repro.camodel.io import (
    FORMAT_VERSION,
    _write_json_atomic,
    model_from_dict,
)
from repro.camodel.model import CAModel
from repro.defects.model import Defect
from repro.library.technology import ElectricalParams
from repro.resilience import faults
from repro.resilience.ledger import (
    DONE,
    QUARANTINED,
    RunDirError,
    RunLedger,
    STATES,
    content_key,
)
from repro.resilience.runner import _options_fingerprint
from repro.service.lease import DEFAULT_TTL, LeaseStore
from repro.spice.netlist import CellNetlist
from repro.spice.writer import write_cell

MANIFEST_FORMAT = 1
MANIFEST_NAME = "job.json"

# service event names (registered in repro.lint.catalog)
E_SUBMIT = "service.submit"


@dataclass
class JobManifest:
    """Everything a stateless worker needs to replay one library job."""

    policy: str
    options: Dict[str, object]
    #: JSON-safe generation kwargs (params/universe serialized)
    kwargs: Dict[str, object]
    #: per-cell records: name, netlist text, technology, content key
    cells: List[Dict[str, object]] = field(default_factory=list)
    lease_ttl: float = DEFAULT_TTL
    retries: int = 1
    fault_plan: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return [str(record["name"]) for record in self.cells]

    def keyed(self) -> List[tuple]:
        return [
            (str(record["name"]), str(record["key"]))
            for record in self.cells
        ]

    def cell_record(self, name: str) -> Dict[str, object]:
        for record in self.cells:
            if record["name"] == name:
                return record
        raise KeyError(name)

    def generation_kwargs(self) -> Dict[str, object]:
        """The kwargs dict :func:`generate_ca_model` expects, rebuilt."""
        kwargs = dict(self.kwargs)
        params = kwargs.get("params")
        if params is not None:
            kwargs["params"] = ElectricalParams(**params)  # type: ignore[arg-type]
        universe = kwargs.get("universe")
        if universe is not None:
            kwargs["universe"] = [
                Defect(
                    name=str(d["name"]),
                    kind=str(d["kind"]),
                    location=tuple(d["location"]),
                )
                for d in universe  # type: ignore[union-attr]
            ]
        return kwargs

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "format": MANIFEST_FORMAT,
            "policy": self.policy,
            "options": self.options,
            "kwargs": self.kwargs,
            "cells": self.cells,
            "lease_ttl": self.lease_ttl,
            "retries": self.retries,
            "fault_plan": self.fault_plan,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobManifest":
        if data.get("format") != MANIFEST_FORMAT:
            raise RunDirError(
                f"unsupported job manifest format {data.get('format')!r}"
            )
        return cls(
            policy=str(data["policy"]),
            options=dict(data["options"]),  # type: ignore[call-overload]
            kwargs=dict(data["kwargs"]),  # type: ignore[call-overload]
            cells=[dict(c) for c in data.get("cells", [])],  # type: ignore[union-attr]
            lease_ttl=float(data.get("lease_ttl", DEFAULT_TTL)),  # type: ignore[arg-type]
            retries=int(data.get("retries", 1)),  # type: ignore[arg-type]
            fault_plan=(
                dict(data["fault_plan"])  # type: ignore[call-overload]
                if data.get("fault_plan") is not None
                else None
            ),
        )


@dataclass
class JobStatus:
    """One poll of a job: ledger state counts plus live lease view."""

    counts: Dict[str, int]
    total: int
    leased: Dict[str, str]  # cell -> owner
    quarantined: List[str]

    @property
    def done(self) -> int:
        return self.counts.get(DONE, 0)

    @property
    def complete(self) -> bool:
        return self.done + self.counts.get(QUARANTINED, 0) >= self.total

    def render(self) -> str:
        parts = [f"{state}={self.counts.get(state, 0)}" for state in STATES]
        leased = ", ".join(
            f"{cell}@{owner}" for cell, owner in sorted(self.leased.items())
        )
        return (
            f"[{self.done}/{self.total}] "
            + " ".join(parts)
            + (f"  leases: {leased}" if leased else "")
        )


class Job:
    """Handle on one submitted library characterization job."""

    def __init__(self, run_dir: Union[str, Path], manifest: JobManifest):
        self.run_dir = Path(run_dir)
        self.manifest = manifest

    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.run_dir / MANIFEST_NAME

    @classmethod
    def attach(cls, run_dir: Union[str, Path]) -> "Job":
        """Open the job of an existing run directory (worker entry)."""
        path = Path(run_dir) / MANIFEST_NAME
        if not path.exists():
            raise RunDirError(
                f"{run_dir} has no {MANIFEST_NAME}; submit a library first "
                "(python -m repro serve NETLIST --run-dir ...)"
            )
        return cls(run_dir, JobManifest.from_dict(json.loads(path.read_text())))

    # ------------------------------------------------------------------
    def ledger(self) -> RunLedger:
        return RunLedger.load(self.run_dir)

    def lease_store(self) -> LeaseStore:
        return LeaseStore(self.run_dir, ttl=self.manifest.lease_ttl)

    def status(self) -> JobStatus:
        ledger = self.ledger()
        counts: Dict[str, int] = {state: 0 for state in STATES}
        for record in ledger.cells.values():
            counts[str(record["state"])] += 1
        leases = {
            cell: str(record.get("owner", "?"))
            for cell, record in self.lease_store().held().items()
        }
        return JobStatus(
            counts=counts,
            total=len(ledger.cells),
            leased=leases,
            quarantined=ledger.names_in(QUARANTINED),
        )

    def stream(
        self, interval: float = 0.5, timeout: Optional[float] = None
    ) -> Iterator[JobStatus]:
        """Yield status snapshots until the job completes (or times out)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status()
            yield status
            if status.complete:
                return
            if deadline is not None and time.monotonic() > deadline:
                return
            time.sleep(interval)

    # ------------------------------------------------------------------
    def fetch_models(self) -> Dict[str, CAModel]:
        """Every completed cell's model, parsed from its checkpoint."""
        ledger = self.ledger()
        out: Dict[str, CAModel] = {}
        for name in self.manifest.names():
            record = ledger.cells.get(name)
            if record is not None and record["state"] == DONE:
                data = json.loads(ledger.artifact_path(name).read_text())
                out[name] = model_from_dict(data)
        return out

    def fetch_library_bytes(self) -> bytes:
        """The assembled library JSON, byte-identical to the runner's.

        Same payload shape and serialization as
        :func:`repro.resilience.runner.run_library`'s ``output`` file:
        artifact dicts in submitted cell order under a ``models`` key.
        """
        ledger = self.ledger()
        artifact_dicts: List[Dict[str, object]] = []
        for name in self.manifest.names():
            record = ledger.cells.get(name)
            if record is not None and record["state"] == DONE:
                artifact_dicts.append(
                    json.loads(ledger.artifact_path(name).read_text())
                )
        return json.dumps(
            {"format": FORMAT_VERSION, "models": artifact_dicts}
        ).encode()


def submit_library(
    cells: Sequence[CellNetlist],
    run_dir: Union[str, Path],
    policy: str = "auto",
    resume: bool = False,
    retries: int = 1,
    lease_ttl: float = DEFAULT_TTL,
    fault_plan: Optional[faults.FaultPlan] = None,
    params: Optional[ElectricalParams] = None,
    universe: Optional[Sequence[Defect]] = None,
    delay_detection: bool = True,
    slow_factor: float = DEFAULT_SLOW_FACTOR,
    parallelism: Optional[int] = None,
    batched: bool = True,
    packed: bool = False,
    phase_cache: PhaseCacheArg = None,
) -> Job:
    """Materialize a library job into *run_dir* and return its handle.

    Creates (or, with ``resume=True``, reopens) the run ledger exactly
    as :func:`~repro.resilience.runner.run_library` would — same option
    fingerprint, same content keys — then writes the ``job.json``
    manifest workers read.  No worker is started; pair with
    :func:`repro.service.coordinator.serve` or external
    ``python -m repro worker RUN_DIR`` processes.
    """
    names = [cell.name for cell in cells]
    ensure_unique_cell_names(names)
    options = _options_fingerprint(
        policy, params, universe, delay_detection, slow_factor, batched,
        parallelism,
    )
    texts = {cell.name: write_cell(cell) for cell in cells}
    keyed = [(name, content_key(texts[name], options)) for name in names]
    RunLedger.open(run_dir, options, keyed, resume=resume)
    manifest = JobManifest(
        policy=policy,
        options=dict(options),
        kwargs={
            "params": options["params"],
            "universe": options["universe"],
            "delay_detection": delay_detection,
            "slow_factor": slow_factor,
            "parallelism": parallelism,
            "batched": batched,
            "packed": packed,
            "phase_cache": (
                str(phase_cache)
                if isinstance(phase_cache, (str, Path))
                else phase_cache
            ),
        },
        cells=[
            {
                # technology rides verbatim (may be None/""): the worker
                # must hand plan_store().cell exactly what a sequential
                # worker would, or model bytes diverge.
                "name": name,
                "text": texts[name],
                "technology": cells[i].technology,
                "key": key,
            }
            for i, (name, key) in enumerate(keyed)
        ],
        lease_ttl=float(lease_ttl),
        retries=int(retries),
        fault_plan=fault_plan.to_dict() if fault_plan is not None else None,
    )
    job = Job(run_dir, manifest)
    _write_json_atomic(job.manifest_path, manifest.to_dict())
    obs.events().info(
        E_SUBMIT,
        run_dir=str(run_dir),
        cells=len(names),
        resume=resume,
        msg=f"submitted {len(names)} cell(s) to {run_dir}",
    )
    return job
