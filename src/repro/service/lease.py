"""Atomic per-cell lease files — the claim substrate of the service.

A lease is one JSON file ``<run_dir>/leases/<cell>.json`` holding the
owner id, the attempt index, the acquire/heartbeat timestamps and the
expiry deadline.  Claiming is an **exclusive create**
(``os.open(..., O_CREAT | O_EXCL)``): the filesystem serializes racing
workers, exactly one claim per vacant path succeeds, everyone else gets
``FileExistsError`` and moves on.  Holding a lease entitles a worker to
characterize that cell; it does **not** decide correctness — the single
serialization point for completion is the artifact commit
(:func:`repro.service.worker.commit_artifact`'s exclusive hardlink), so
even a pathological lease race can only waste work, never complete a
cell twice or corrupt a byte.

Liveness comes from the heartbeat/expiry pair:

* the holder re-stamps ``heartbeat``/``expires`` (atomic temp-file +
  ``os.replace`` rewrite) every few seconds while it works; a holder
  that finds its file missing or owned by someone else has **lost** the
  lease and must discard its work before the commit point;
* the coordinator — and only the coordinator, so expiry has a single
  reaper and no steal races between workers — removes leases whose
  deadline passed (:meth:`LeaseStore.reap_expired`).  A SIGKILLed
  worker's cell is therefore re-leased after at most one TTL, not lost.

An unparseable lease file (a claim create was itself interrupted) is
treated as expired: the claimant died before finishing its first write,
so the reaper may take it immediately.

The lease state machine of one cell (see ``docs/resilience.md``)::

    pending ── claim (O_EXCL create) ──► leased
    leased  ── heartbeat ─────────────► leased      (deadline pushed)
    leased  ── release / commit ──────► done        (artifact committed)
    leased  ── worker failure ────────► pending     (error recorded)
    leased  ── TTL expiry, reaped ────► pending     (re-leased, not lost)
    pending ── retry budget exhausted ► quarantined
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Union

from repro import obs

LEASE_FORMAT = 1

#: default seconds a lease stays valid without a heartbeat
DEFAULT_TTL = 15.0

# lease metric/event names (registered in repro.lint.catalog)
M_CLAIMS = "lease.claims"
M_CONFLICTS = "lease.conflicts"
M_HEARTBEATS = "lease.heartbeats"
M_LOST = "lease.lost"
M_RELEASES = "lease.releases"
M_REAPED = "lease.reaped"
E_EXPIRED = "lease.expired"


def _atomic_write(path: Path, payload: Mapping[str, object]) -> None:
    # Same temp-file + os.replace discipline as repro.obs.store; local
    # copy because the service layer must stay importable without
    # repro.camodel (workers arm it before any generation import).
    tmp = path.parent / f".{path.name}.tmp{os.getpid()}"
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


@dataclass
class Lease:
    """One held claim: the ticket a worker carries while characterizing."""

    cell: str
    owner: str
    attempt: int
    acquired: float
    heartbeat: float
    expires: float
    ttl: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": LEASE_FORMAT,
            "cell": self.cell,
            "owner": self.owner,
            "attempt": self.attempt,
            "acquired": self.acquired,
            "heartbeat": self.heartbeat,
            "expires": self.expires,
            "ttl": self.ttl,
        }


class LeaseStore:
    """Claim / heartbeat / release / reap over one run directory.

    *clock* is injectable so the property suite can drive expiry
    deterministically; production uses wall-clock time.
    """

    def __init__(
        self,
        run_dir: Union[str, Path],
        ttl: float = DEFAULT_TTL,
        clock: Callable[[], float] = time.time,
        registry: Optional[obs.Metrics] = None,
        events: Optional[obs.EventLog] = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.lease_dir = self.run_dir / "leases"
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        self.ttl = float(ttl)
        self.clock = clock
        # Pinned instrumentation: the heartbeat runs on a side thread
        # while the worker's main thread holds an attempt-scoped
        # obs.scoped() swap, and the attempt's counters must stay
        # byte-identical to a sequential run's — a heartbeat increment
        # leaking into them would diverge metrics_total().  Callers in
        # that position inject the process-level registry explicitly.
        self._registry = registry
        self._events = events

    def _metrics(self) -> obs.Metrics:
        return self._registry if self._registry is not None else obs.metrics()

    def _event_log(self) -> obs.EventLog:
        return self._events if self._events is not None else obs.events()

    # ------------------------------------------------------------------
    def path(self, cell: str) -> Path:
        return self.lease_dir / f"{cell}.json"

    def read(self, cell: str) -> Optional[Dict[str, object]]:
        """Current lease record of *cell*, or ``None`` when unleased.

        A present-but-unparseable file is returned as an empty dict so
        the reaper can distinguish "vacant" from "torn claim".
        """
        try:
            text = self.path(cell).read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            data = json.loads(text)
        except (ValueError, json.JSONDecodeError):
            return {}
        return data if isinstance(data, dict) else {}

    def held(self) -> Dict[str, Dict[str, object]]:
        """Every currently claimed cell and its lease record."""
        out: Dict[str, Dict[str, object]] = {}
        for path in sorted(self.lease_dir.glob("*.json")):
            record = self.read(path.stem)
            if record is not None:
                out[path.stem] = record
        return out

    # ------------------------------------------------------------------
    def claim(self, cell: str, owner: str, attempt: int) -> Optional[Lease]:
        """Try to claim *cell*; ``None`` when someone else holds it.

        The exclusive create is the whole protocol: exactly one racer
        per vacant path wins, and nobody ever overwrites a live claim.
        """
        now = self.clock()
        lease = Lease(
            cell=cell,
            owner=owner,
            attempt=int(attempt),
            acquired=now,
            heartbeat=now,
            expires=now + self.ttl,
            ttl=self.ttl,
        )
        blob = json.dumps(lease.to_dict(), sort_keys=True).encode()
        try:
            fd = os.open(
                self.path(cell), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            self._metrics().inc(M_CONFLICTS)
            return None
        try:
            os.write(fd, blob)
        finally:
            os.close(fd)
        self._metrics().inc(M_CLAIMS)
        return lease

    def heartbeat(self, lease: Lease) -> bool:
        """Re-stamp the holder's deadline; ``False`` when the lease is lost.

        Lost means the file is gone (reaped) or carries another owner
        (reaped and re-claimed).  A holder that sees ``False`` must
        discard its work before the commit point.
        """
        current = self.read(lease.cell)
        if not current or current.get("owner") != lease.owner:
            self._metrics().inc(M_LOST)
            return False
        now = self.clock()
        lease.heartbeat = now
        lease.expires = now + self.ttl
        _atomic_write(self.path(lease.cell), lease.to_dict())
        self._metrics().inc(M_HEARTBEATS)
        return True

    def release(self, lease: Lease) -> bool:
        """Drop the holder's claim; ``False`` when it was already lost."""
        current = self.read(lease.cell)
        if not current or current.get("owner") != lease.owner:
            self._metrics().inc(M_LOST)
            return False
        try:
            self.path(lease.cell).unlink()
        except FileNotFoundError:  # pragma: no cover - benign race
            pass
        self._metrics().inc(M_RELEASES)
        return True

    # ------------------------------------------------------------------
    def expired(self, record: Mapping[str, object]) -> bool:
        """True when *record* (from :meth:`read`) is past its deadline."""
        if not record:
            return True  # torn claim: the claimant died mid-create
        try:
            return self.clock() > float(record["expires"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return True

    def reap_expired(
        self,
        before_unlink: Optional[
            Callable[[str, Dict[str, object]], None]
        ] = None,
    ) -> List[Dict[str, object]]:
        """Remove every expired lease; returns the reaped records.

        Coordinator-only by convention: a single reaper per run means
        expiry can never race itself, and workers never steal — they
        just see a vacant path on their next claim scan.

        *before_unlink* runs per reaped lease while the claim file still
        blocks re-claiming — the coordinator uses it to persist the dead
        attempt's failure (shard + ledger record) first, so a worker that
        claims the vacant path immediately afterwards always sees the
        previous attempt on disk and can never reuse its attempt index.
        """
        reaped: List[Dict[str, object]] = []
        for cell, record in self.held().items():
            if not self.expired(record):
                continue
            record = dict(record)
            record.setdefault("cell", cell)
            if before_unlink is not None:
                before_unlink(cell, record)
            try:
                self.path(cell).unlink()
            except FileNotFoundError:  # pragma: no cover - benign race
                continue
            reaped.append(record)
            self._metrics().inc(M_REAPED)
            self._event_log().warning(
                E_EXPIRED,
                cell=cell,
                owner=str(record.get("owner", "?")),
                attempt=int(record.get("attempt", -1))
                if str(record.get("attempt", "")).lstrip("-").isdigit()
                else -1,
                msg=(
                    f"lease on {cell} (owner "
                    f"{record.get('owner', '?')}) expired; re-leasing"
                ),
            )
        return reaped
