"""Run coordinator: the single ledger writer of a service run.

:func:`serve` owns everything the stateless workers must not touch —
the :class:`~repro.resilience.ledger.RunLedger` state machine, lease
expiry (:meth:`~repro.service.lease.LeaseStore.reap_expired`), the
retry/quarantine budget, and the final library assembly.  Workers only
ever *read* the ledger and write their own artifacts/shards; every
state transition funnels through this one process, which is what keeps
an N-worker run's ledger — and therefore ``metrics_total()``,
``failures.json`` and the assembled library bytes — identical to a
sequential :func:`repro.resilience.runner.run_library` run.

Each coordination tick:

1. **Reap** expired leases.  Inside the reap callback — while the dead
   lease still blocks re-claiming — the orphaned attempt is classified
   (a valid committed artifact means the worker died *after* finishing
   and is no failure at all; an invalid artifact is a corrupt
   checkpoint; otherwise a crash), its telemetry shard and ledger
   failure are persisted, and only then does the lease path go vacant.
2. **Observe** live leases: cells whose lease is held are marked
   ``running`` with the worker's own attempt index (floored, so polling
   a lease twice never inflates the count).
3. **Collect** completions: a valid artifact for a non-``done`` cell is
   the worker's commit signal; the coordinator reads the obs sidecar
   and performs the exactly-once ``done`` transition + counter merge,
   exactly like the sequential parent.
4. **Consume** error records (written by workers that failed cleanly),
   charging the session retry budget and quarantining cells that
   exhaust it — quarantined cells stop being claimable immediately.

Local workers are plain ``multiprocessing.Process`` instances running
:func:`repro.service.worker.worker_loop`; a dead one is respawned while
claimable work remains, so even a fault plan that kills every worker
(``crash`` mode exits the whole process) cannot stall the run.  With
``workers=0`` the coordinator drives externally started workers only
(``python -m repro worker RUN_DIR`` on any machine sharing the
directory — see ``docs/resilience.md``).

Injected ``hang`` faults are **not** supported under the service: a
hanging worker's heartbeat thread keeps its lease alive indefinitely
(there is no per-cell wall-clock timeout here); use the sequential
runner's ``cell_timeout`` to exercise hang recovery.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro import obs
from repro.obs import store as obs_store
from repro.resilience.ledger import (
    DONE,
    FAILED,
    PENDING,
    QUARANTINED,
    RunLedger,
    purge_stale_tmp,
)
from repro.resilience.runner import (
    M_CELLS_DONE,
    M_CELLS_RESUMED,
    M_CRASHES,
    M_CORRUPT,
    M_EXCEPTIONS,
    M_QUARANTINED,
    M_RETRIES,
    M_TIMEOUTS,
    RunResult,
    assemble_run_result,
    read_sidecar,
)
from repro.service.api import Job
from repro.service.lease import LeaseStore
from repro.service.worker import next_attempt_index, worker_loop

# service metric/event names (registered in repro.lint.catalog)
M_WORKERS_SPAWNED = "service.workers_spawned"
E_SERVE = "service.serve"

#: coordinator tick interval [s]
TICK_INTERVAL = 0.05


def _worker_entry(run_dir: str) -> None:
    """Local worker process entry (module-level for multiprocessing)."""
    worker_loop(run_dir)


def serve(
    run_dir: Union[str, Path],
    workers: int = 2,
    resume: bool = False,
    output: Optional[Union[str, Path]] = None,
    tick: float = TICK_INTERVAL,
) -> RunResult:
    """Coordinate a submitted job to completion; returns the run result.

    *run_dir* must hold a ``job.json`` written by
    :func:`repro.service.api.submit_library`.  *workers* local worker
    processes are spawned (0 means external workers drive the cells and
    this process only coordinates).  With ``resume=True`` quarantined
    cells are re-admitted with a fresh retry budget, mirroring
    ``run_library(resume=True)``.
    """
    run_dir = Path(run_dir)
    job = Job.attach(run_dir)
    manifest = job.manifest
    names = manifest.names()
    retries = manifest.retries
    ledger = RunLedger.load(run_dir)
    store = obs_store.ObsStore(run_dir)

    tracer = obs.tracer()
    if not tracer.enabled:
        # The session shard needs coordinator spans even when the CLI
        # ran untraced (same local-tracer trick as run_library).
        tracer = obs.Tracer(enabled=True)
    registry = obs.metrics()
    result = RunResult(run_dir=run_dir)

    # Session-shard bookkeeping (mirrors run_library): this session's
    # own spans/events/counters, with merged worker counters subtracted
    # back out — the ledger is their single source of truth.
    session_started = time.time()
    span_mark = tracer.mark()
    counter_mark = registry.checkpoint()
    merged_this_session: Dict[str, float] = {}
    session_events = obs.ListSink()
    events = obs.EventLog(obs.TeeSink([obs.events().sink, session_events]))
    # The tee'd log rides into the lease store so reap-time
    # ``lease.expired`` events persist in this session's shard.
    leases = LeaseStore(
        run_dir, ttl=manifest.lease_ttl, registry=registry, events=events
    )

    #: failed attempts charged per cell THIS session (the retry budget;
    #: lifetime attempt counts live in the ledger)
    session_failures: Dict[str, int] = {}

    def complete() -> bool:
        return all(
            record["state"] in (DONE, QUARANTINED)
            for record in ledger.cells.values()
        )

    def last_attempt(name: str) -> int:
        """Best-known lifetime index of the attempt that just ended."""
        key = str(ledger.cells[name]["key"])
        nxt = next_attempt_index(
            store.obs_dir, name, key, int(ledger.cells[name]["attempts"])
        )
        return max(0, nxt - 1)

    def ensure_shard(
        name: str, attempt: int, outcome: str, error: str, started: float,
        seconds: float,
    ) -> None:
        """Parent-written shard for an attempt that died before its own."""
        key = str(ledger.cells[name]["key"])
        if store.has_attempt(name, key, attempt):
            return
        obs_store.write_attempt_shard(
            store.attempt_shard_path(name, key, attempt),
            cell=name,
            key=key,
            attempt=attempt,
            outcome=outcome,
            pid=0,
            started=started,
            seconds=seconds,
            counters={},
            spans=[],
            events=[],
            error=error,
        )

    def handle_failure(
        name: str, attempt: int, record: Dict[str, object], elapsed: float
    ) -> None:
        """Charge one failed attempt (mirrors run_library's finish_failure)."""
        record = dict(record)
        record["attempt"] = attempt
        record["elapsed"] = round(elapsed, 4)
        kind = str(record.get("kind", "crash"))
        registry.inc(
            {
                "timeout": M_TIMEOUTS,
                "exception": M_EXCEPTIONS,
                "corrupt-artifact": M_CORRUPT,
            }.get(kind, M_CRASHES)
        )
        artifact = ledger.artifact_path(name)
        if artifact.exists() and not ledger.validate_artifact(name):
            artifact.unlink()
        ledger.mark_running(name, attempt=attempt)  # floor the count
        ledger.record_failure(name, record)
        failures = session_failures.get(name, 0) + 1
        session_failures[name] = failures
        if failures <= retries:
            registry.inc(M_RETRIES)
            events.warning(
                "resilience.retry",
                cell=name,
                attempt=attempt,
                kind=kind,
                error=record.get("error"),
                msg=(
                    f"{name}: attempt {attempt + 1} failed ({kind}); "
                    "cell returns to the claimable pool"
                ),
            )
        else:
            registry.inc(M_QUARANTINED)
            ledger.mark_quarantined(name)
            events.error(
                "resilience.quarantine",
                cell=name,
                attempts=attempt + 1,
                kind=kind,
                error=record.get("error"),
                msg=(
                    f"{name}: quarantined after {attempt + 1} attempts "
                    f"({kind})"
                ),
            )

    def on_reap(name: str, lease_record: Dict[str, object]) -> None:
        """Classify a reaped lease while its file still blocks claims."""
        if name not in ledger.cells:
            return
        if ledger.cells[name]["state"] in (DONE, QUARANTINED):
            return
        if ledger.validate_artifact(name):
            return  # worker committed, then died; the done path collects it
        if ledger.error_path(name).exists():
            return  # worker recorded its failure; the consume path charges it
        try:
            attempt = int(lease_record.get("attempt", -1))
        except (TypeError, ValueError):
            attempt = -1
        if attempt < 0:
            attempt = last_attempt(name)
        owner = str(lease_record.get("owner", "?"))
        try:
            started = float(lease_record.get("acquired", time.time()))
        except (TypeError, ValueError):
            started = time.time()
        elapsed = max(0.0, time.time() - started)
        if ledger.artifact_path(name).exists():
            kind = "corrupt-artifact"
            error = (
                "worker left an unreadable checkpoint artifact and its "
                "lease expired"
            )
        else:
            kind = "crash"
            error = (
                f"lease expired without a result (owner {owner}, "
                f"attempt {attempt + 1})"
            )
        # Shard + ledger failure land BEFORE the lease path goes vacant,
        # so the next claimant always sees this attempt on disk and can
        # never reuse its index.
        ensure_shard(name, attempt, kind, error, started, elapsed)
        handle_failure(name, attempt, {"kind": kind, "error": error}, elapsed)

    def consume_error(name: str) -> None:
        """Charge a failure a worker recorded cleanly (lease now vacant)."""
        error_path = ledger.error_path(name)
        try:
            record = json.loads(error_path.read_text())
        except (ValueError, json.JSONDecodeError):
            record = {
                "kind": "crash",
                "error": "worker left an unreadable error record",
            }
        except (FileNotFoundError, OSError):
            return
        error_path.unlink()
        attempt = last_attempt(name)
        key = str(ledger.cells[name]["key"])
        seconds = 0.0
        started = time.time()
        shard = store.attempt_shard_path(name, key, attempt)
        if shard.exists():
            try:
                data = json.loads(shard.read_text())
                seconds = float(data.get("seconds", 0.0))
                started = float(data.get("started", started))
            except (ValueError, json.JSONDecodeError):
                pass
        ensure_shard(
            name, attempt, str(record.get("kind", "crash")),
            str(record.get("error", "")), started, seconds,
        )
        handle_failure(name, attempt, record, seconds)

    def collect_done(name: str) -> None:
        """Exactly-once done transition (mirrors finish_success)."""
        seconds, metrics, spans = read_sidecar(ledger, name)
        if spans and tracer.enabled:
            tracer.absorb(spans, parent_id=run_span.span_id)
        attempt = last_attempt(name)
        ledger.mark_running(name, attempt=attempt)  # floor the count
        ledger.mark_done(name, seconds=seconds, metrics=metrics)
        registry.merge_counters(metrics)
        for key, value in metrics.items():
            merged_this_session[key] = (
                merged_this_session.get(key, 0.0) + float(value)
            )
        registry.inc(M_CELLS_DONE)
        events.debug(
            "resilience.cell_done",
            cell=name,
            attempt=attempt,
            seconds=round(seconds, 4),
            msg=f"{name}: done (attempt {attempt + 1})",
        )

    procs: List[multiprocessing.Process] = []

    def spawn_worker() -> None:
        process = multiprocessing.Process(
            target=_worker_entry, args=(str(run_dir),)
        )
        process.start()
        procs.append(process)
        registry.inc(M_WORKERS_SPAWNED)

    with tracer.span(
        "service.serve", cells=len(names), workers=workers, resume=resume
    ) as run_span:
        recovered = ledger.recover()
        requeued = ledger.requeue_quarantined() if resume else []
        if requeued:
            events.info(
                "resilience.requeue",
                cells=len(requeued),
                msg=(
                    f"re-admitting {len(requeued)} quarantined cell(s) "
                    "with a fresh retry budget"
                ),
            )
        already_done = ledger.names_in(DONE)
        if resume and already_done:
            result.resumed = list(already_done)
            registry.inc(M_CELLS_RESUMED, len(already_done))
            events.info(
                "resilience.resume",
                run_dir=str(run_dir),
                reused=len(already_done),
                recovered=len(recovered),
                msg=(
                    f"resuming {run_dir}: reusing {len(already_done)} "
                    f"completed cells ({len(recovered)} recovered from a "
                    "killed session)"
                ),
            )
        events.info(
            E_SERVE,
            run_dir=str(run_dir),
            cells=len(names),
            workers=workers,
            msg=(
                f"serving {len(names)} cell(s) from {run_dir} with "
                f"{workers} local worker(s)"
            ),
        )

        try:
            for _ in range(max(0, workers)):
                spawn_worker()
            while not complete():
                leases.reap_expired(before_unlink=on_reap)
                held = leases.held()
                for name, lease_record in held.items():
                    if name not in ledger.cells:
                        continue
                    if ledger.cells[name]["state"] in (PENDING, FAILED):
                        try:
                            attempt = int(lease_record.get("attempt", -1))
                        except (TypeError, ValueError):
                            attempt = -1
                        if attempt >= 0:
                            ledger.mark_running(name, attempt=attempt)
                for name in names:
                    record = ledger.cells.get(name)
                    if record is None or record["state"] == DONE:
                        continue
                    if record["state"] == QUARANTINED:
                        continue
                    if ledger.validate_artifact(name):
                        collect_done(name)
                    elif (
                        ledger.error_path(name).exists()
                        and name not in held
                    ):
                        consume_error(name)
                if complete():
                    break
                if workers > 0:
                    for i, process in enumerate(list(procs)):
                        if not process.is_alive():
                            process.join()
                            procs.remove(process)
                    while len(procs) < workers:
                        spawn_worker()
                time.sleep(tick)
        finally:
            deadline = time.monotonic() + 10.0
            for process in procs:
                process.join(timeout=max(0.1, deadline - time.monotonic()))
            for process in procs:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join()

        purge_stale_tmp(ledger.models_dir)
        purge_stale_tmp(store.obs_dir)
        assemble_run_result(ledger, names, result, output)
        run_span.set("done", len(result.models))
        run_span.set("quarantined", len(result.quarantined))
        run_span.set("resumed", len(result.resumed))

    own_pid = os.getpid()
    session_spans = [
        span
        for span in tracer.export_since(span_mark)
        if span["pid"] == own_pid
    ]
    counter_delta = registry.counter_delta(counter_mark)
    parent_counters: Dict[str, float] = {}
    for key, value in counter_delta.items():
        remainder = value - merged_this_session.get(key, 0.0)
        if remainder:
            parent_counters[key] = remainder
    store.write_session(
        pid=own_pid,
        started=session_started,
        seconds=time.time() - session_started,
        root_span_id=run_span.span_id,
        counters=parent_counters,
        spans=session_spans,
        events=[event.to_dict() for event in session_events.events],
    )
    return result
