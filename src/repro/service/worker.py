"""Stateless leased characterization worker.

One worker process drains one run directory: it repeatedly loads a
read-only snapshot of the :class:`~repro.resilience.ledger.RunLedger`,
claims a claimable cell through the
:class:`~repro.service.lease.LeaseStore`, characterizes it in-process,
and commits the canonical artifact.  Workers never write the ledger —
state transitions are the coordinator's job
(:mod:`repro.service.coordinator`) — so any number of workers on any
number of machines can point at the same directory with no coordination
channel beyond the filesystem.

A cell is **claimable** when its ledger state is ``pending`` or
``failed``, its artifact is absent, no structured error record is
waiting for the coordinator, and its lease path is vacant.  The claim
itself (exclusive create) is the only serialization needed; everything
afterwards is belt-and-braces:

* a heartbeat thread re-stamps the lease at ``ttl/4``; if the lease is
  ever lost (the coordinator reaped it and the cell may already be
  re-leased), the attempt's results are **discarded before the commit
  point** — nothing is written;
* the commit itself (:func:`commit_artifact`) lands the canonical model
  bytes in the shared content-addressed store ``<run_dir>/cas/`` and
  exposes them via an **exclusive hardlink** at the ledger's artifact
  path, so even two workers racing the same cell can complete it at
  most once.

Replay identity: each attempt runs under a fresh obs scope *and* a
fresh plan store (:func:`repro.camodel.planstore.fresh_store`), exactly
like the one-process-per-attempt workers of
:func:`repro.resilience.runner.run_library` — the attempt's counters,
and therefore ``metrics_total()``, are byte-identical between a service
run and a sequential run.

The lifetime attempt index is recovered from the run directory itself
(existing telemetry shards + the ledger's attempt count), not from any
in-memory state, so a worker that dies and a fresh one that takes over
continue the same numbering a sequential resumed run would use.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import traceback
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro import obs
from repro.obs import store as obs_store
from repro.camodel.generate import generate_ca_model
from repro.camodel.io import _write_json_atomic
from repro.camodel.planstore import fresh_store
from repro.resilience import faults
from repro.resilience.ledger import (
    DONE,
    FAILED,
    PENDING,
    QUARANTINED,
    RunLedger,
)
from repro.resilience.runner import canonical_model_dict
from repro.service.api import Job, JobManifest
from repro.service.lease import Lease, LeaseStore

# service metric/event names (registered in repro.lint.catalog)
M_WORKER_CELLS = "service.cells"
M_WORKER_FAILURES = "service.failures"
M_COMMITS = "service.commits"
M_COMMIT_RACES = "service.commit_races"
M_DISCARDS = "service.discards"
E_WORKER_START = "service.worker_start"
E_WORKER_EXIT = "service.worker_exit"
E_DISCARD = "service.discard"

#: idle sleep between claim scans [s]
POLL_INTERVAL = 0.05


def commit_artifact(
    run_dir: Union[str, Path], artifact: Path, data: Dict[str, object]
) -> bool:
    """Commit one canonical model into the shared store; True on success.

    The bytes land once in the content-addressed store
    ``<run_dir>/cas/<sha256(bytes)>.json`` (atomic write; duplicate work
    by two attempts writes identical bytes, so re-writing is harmless),
    then surface at the ledger's artifact path via ``os.link`` — an
    **exclusive** operation: the first committer wins, a loser gets
    ``FileExistsError`` back as ``False`` and discards its attempt.
    This hardlink is the exactly-once point of the whole service; the
    lease protocol above it only exists to make losing rare.
    """
    blob = json.dumps(data)
    cas_dir = Path(run_dir) / "cas"
    cas_dir.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha256(blob.encode()).hexdigest()[:24]
    cas_path = cas_dir / f"{digest}.json"
    if not cas_path.exists():
        # Serialization matches _write_json_atomic (plain json.dump), so
        # the linked artifact is byte-identical to a runner-written one.
        _write_json_atomic(cas_path, data)
    try:
        os.link(cas_path, artifact)
    except FileExistsError:
        obs.metrics().inc(M_COMMIT_RACES)
        return False
    obs.metrics().inc(M_COMMITS)
    return True


def next_attempt_index(
    obs_dir: Path, cell: str, key: str, ledger_attempts: int
) -> int:
    """Lifetime attempt index for the next attempt of (cell, key).

    Every finished attempt leaves a shard ``<cell>-<key>.a<NNN>.json``
    *before* its lease goes vacant (workers write theirs before
    releasing; the coordinator writes a dead attempt's before unlinking
    the reaped lease), so scanning the shards at claim time is
    race-free.  The ledger's own attempt count is folded in as a floor
    for runs whose earlier sessions ran without telemetry shards.
    """
    highest = -1
    if obs_dir.is_dir():
        prefix = f"{cell}-{key}.a"
        for path in obs_dir.glob(f"{cell}-{key}.a*.json"):
            tail = path.name[len(prefix):].rpartition(".json")[0]
            if tail.isdigit():
                highest = max(highest, int(tail))
    return max(highest + 1, int(ledger_attempts))


class _Heartbeat:
    """Background lease renewal for one attempt; flags a lost lease."""

    def __init__(self, leases: LeaseStore, lease: Lease) -> None:
        self.leases = leases
        self.lease = lease
        self.stop = threading.Event()
        self.lost = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(0.05, self.leases.ttl / 4.0)
        while not self.stop.wait(interval):
            if not self.leases.heartbeat(self.lease):
                self.lost.set()
                return

    def __enter__(self) -> "_Heartbeat":
        self.thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop.set()
        self.thread.join(timeout=2.0)

    def still_held(self) -> bool:
        """Final owner check at a decision point (also re-stamps)."""
        return not self.lost.is_set() and self.leases.heartbeat(self.lease)


def run_attempt(
    run_dir: Path,
    manifest: JobManifest,
    ledger: RunLedger,
    leases: LeaseStore,
    lease: Lease,
    store: obs_store.ObsStore,
    plan: Optional[faults.FaultPlan],
    events: obs.EventLog,
) -> bool:
    """Characterize one claimed cell; True when this attempt committed.

    Mirrors :func:`repro.resilience.runner._cell_worker` step for step —
    same fault sites, same scoped obs state, same sidecar/shard writes —
    except that results are only persisted while the lease is still
    held, and the artifact lands through the exclusive CAS commit.
    """
    name = lease.cell
    key = str(ledger.cells[name]["key"])
    record = manifest.cell_record(name)
    faults.activate(plan, cell=name, attempt=lease.attempt)
    worker_tracer = obs.Tracer(enabled=True)
    worker_metrics = obs.Metrics()
    worker_events = obs.ListSink()
    started_wall = time.time()
    shard_path = store.attempt_shard_path(name, key, lease.attempt)

    def write_shard(
        outcome: str, seconds: float, error: Optional[str] = None
    ) -> None:
        obs_store.write_attempt_shard(
            shard_path,
            cell=name,
            key=key,
            attempt=lease.attempt,
            outcome=outcome,
            pid=os.getpid(),
            started=started_wall,
            seconds=seconds,
            counters=worker_metrics.snapshot()["counters"],
            spans=worker_tracer.export(),
            events=[event.to_dict() for event in worker_events.events],
            error=error,
        )

    def discard(reason: str) -> None:
        leases._metrics().inc(M_DISCARDS)
        events.warning(
            E_DISCARD,
            cell=name,
            owner=lease.owner,
            attempt=lease.attempt,
            reason=reason,
            msg=f"{name}: discarding attempt {lease.attempt + 1} ({reason})",
        )

    try:
        with _Heartbeat(leases, lease) as beat:
            try:
                faults.fire(faults.SITE_WORKER_START)
                started = time.perf_counter()
                with obs.scoped(
                    tracer=worker_tracer,
                    metrics=worker_metrics,
                    events=obs.EventLog(worker_events),
                ):
                    # Fresh plan store per attempt: a warm long-lived
                    # worker must record the exact counters a cold
                    # one-attempt process records (see planstore).
                    with fresh_store() as plans:
                        cell = plans.cell(record["text"], record["technology"])
                        model = generate_ca_model(
                            cell,
                            policy=manifest.policy,
                            **manifest.generation_kwargs(),
                        )
                elapsed = time.perf_counter() - started
                data = canonical_model_dict(model)
                artifact = ledger.artifact_path(name)
                rule = faults.fire(faults.SITE_ARTIFACT_WRITE)
                if rule is not None:
                    # Torn/corrupt checkpoint faults exit the process
                    # inside, leaving the lease to expire — the same
                    # orphan a real mid-write SIGKILL leaves.
                    # fault injection *exists* to violate the write
                    # discipline the protocol rules enforce
                    faults.enact_artifact_fault(rule, artifact, data, name)  # reprolint: disable=RPL104
                if not beat.still_held():
                    discard("lease lost before commit")
                    return False
                # Sidecar strictly before the commit: the hardlink's
                # appearance is the coordinator's done signal, and it
                # reads the sidecar immediately after.
                _write_json_atomic(
                    ledger.sidecar_path(name),
                    {
                        "seconds": elapsed,
                        "counters": worker_metrics.snapshot()["counters"],
                        "spans": worker_tracer.export(),
                    },
                )
                if not commit_artifact(run_dir, artifact, data):
                    discard("lost the commit race")
                    return False
                write_shard("ok", elapsed)
                leases.release(lease)
                return True
            except BaseException as exc:  # noqa: BLE001 - recorded for the coordinator
                error_text = f"{type(exc).__name__}: {exc}"
                if not beat.still_held():
                    # The coordinator already wrote this attempt off when
                    # it reaped the lease; recording it again would
                    # double-charge the retry budget.
                    discard(f"lease lost during failure ({error_text})")
                    return False
                _write_json_atomic(
                    ledger.error_path(name),
                    {
                        "kind": "exception",
                        "error": error_text,
                        "traceback": traceback.format_exc(),
                    },
                )
                write_shard(
                    "exception", time.time() - started_wall, error=error_text
                )
                leases.release(lease)
                return False
    finally:
        faults.deactivate()


def worker_loop(
    run_dir: Union[str, Path],
    owner: Optional[str] = None,
    poll: float = POLL_INTERVAL,
    max_cells: Optional[int] = None,
) -> int:
    """Drain claimable cells of *run_dir* until the job completes.

    Returns the number of cells this worker committed.  ``max_cells``
    bounds the worker's share (tests use it to force interleaving).
    The worker exits when every cell is ``done`` or ``quarantined`` —
    quarantining is the coordinator's call, so a run whose coordinator
    died leaves workers idling at the poll interval, not spinning.
    """
    run_dir = Path(run_dir)
    job = Job.attach(run_dir)
    manifest = job.manifest
    if owner is None:
        owner = f"w{os.getpid()}"
    store = obs_store.ObsStore(run_dir)
    # Pinned process-level instrumentation: attempt scopes swap the
    # globals, and lease traffic must never leak into attempt counters.
    registry = obs.metrics()
    event_buffer = obs.ListSink()
    events = obs.EventLog(obs.TeeSink([obs.events().sink, event_buffer]))
    leases = LeaseStore(
        run_dir, ttl=manifest.lease_ttl, registry=registry, events=events
    )
    plan = faults.plan_from_payload(manifest.fault_plan)
    counter_mark = registry.checkpoint()
    started_wall = time.time()
    completed: List[str] = []
    failures = 0
    events.info(
        E_WORKER_START,
        owner=owner,
        run_dir=str(run_dir),
        pid=os.getpid(),
        msg=f"worker {owner} joining {run_dir}",
    )
    try:
        while True:
            ledger = RunLedger.load(run_dir)
            open_cells = [
                n
                for n in manifest.names()
                if n in ledger.cells
                and ledger.cells[n]["state"] not in (DONE, QUARANTINED)
            ]
            if not open_cells:
                break
            if max_cells is not None and len(completed) >= max_cells:
                break
            claimed = False
            for name in open_cells:
                record = ledger.cells[name]
                if record["state"] not in (PENDING, FAILED):
                    continue
                if str(record["key"]) != manifest.cell_record(name)["key"]:
                    continue  # resubmitted with different options
                if ledger.artifact_path(name).exists():
                    continue  # committed; coordinator will mark it done
                if ledger.error_path(name).exists():
                    continue  # failure awaiting the coordinator
                if leases.read(name) is not None:
                    continue
                attempt = next_attempt_index(
                    store.obs_dir, name, str(record["key"]),
                    int(record["attempts"]),
                )
                lease = leases.claim(name, owner, attempt)
                if lease is None:
                    continue
                claimed = True
                if run_attempt(
                    run_dir, manifest, ledger, leases, lease, store, plan,
                    events,
                ):
                    completed.append(name)
                    registry.inc(M_WORKER_CELLS)
                else:
                    failures += 1
                    registry.inc(M_WORKER_FAILURES)
                break  # rescan from a fresh ledger snapshot
            if not claimed:
                time.sleep(poll)
    finally:
        seconds = time.time() - started_wall
        events.info(
            E_WORKER_EXIT,
            owner=owner,
            cells=len(completed),
            failures=failures,
            seconds=round(seconds, 3),
            msg=(
                f"worker {owner} leaving after {len(completed)} cell(s), "
                f"{failures} failed attempt(s)"
            ),
        )
        obs_store.write_worker_shard(
            store.worker_shard_path(owner),
            owner=owner,
            pid=os.getpid(),
            started=started_wall,
            seconds=seconds,
            cells=list(completed),
            counters=registry.counter_delta(counter_mark),
            spans=[],
            events=[event.to_dict() for event in event_buffer.events],
        )
    return len(completed)
