"""Coordinator/worker characterization service over a shared run directory.

:mod:`repro.service` splits the resilient runner
(:func:`repro.resilience.runner.run_library`) into a single-writer
**coordinator** (:func:`~repro.service.coordinator.serve`) and any
number of stateless **workers**
(:func:`~repro.service.worker.worker_loop`) that coordinate purely
through the run directory: workers lease pending cells via atomic claim
files (:mod:`~repro.service.lease`), commit finished models through a
content-addressed store with an exclusive hardlink
(:func:`~repro.service.worker.commit_artifact`), and the coordinator
owns every ledger transition, lease expiry and the retry/quarantine
budget.  The thin job API (:func:`~repro.service.api.submit_library` →
``poll``/``stream`` → ``fetch_models``) lets clients drive a run from
any process that sees the directory.

The contract, enforced by the chaos and property suites: models,
``failures.json`` and ``metrics_total()`` from an N-worker run — even
one with workers SIGKILLed mid-lease — are byte-identical to a
sequential run's.
"""

from repro.service.api import (
    Job,
    JobManifest,
    JobStatus,
    submit_library,
)
from repro.service.coordinator import serve
from repro.service.lease import DEFAULT_TTL, Lease, LeaseStore
from repro.service.worker import commit_artifact, worker_loop

__all__ = [
    "DEFAULT_TTL",
    "Job",
    "JobManifest",
    "JobStatus",
    "Lease",
    "LeaseStore",
    "commit_artifact",
    "serve",
    "submit_library",
    "worker_loop",
]
