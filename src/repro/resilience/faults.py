"""Deterministic fault injection for the resilient run layer.

Real crash-recovery bugs hide behind nondeterministic failures; this
module makes failure *scriptable* so the chaos suites can assert exact
recovery behaviour without real crashes.  A :class:`FaultPlan` is a list
of :class:`FaultRule`\\ s, each naming a cell, a failure mode and the
attempt indices it fires on.  The plan rides the worker payload of
:func:`repro.resilience.runner.run_library`; the worker *activates* it
for its (cell, attempt) and production code calls :func:`fire` at a few
well-known sites:

``worker.start``
    entered right after the worker process starts (``crash`` and
    ``hang`` modes fire here)
``solver``
    inside :func:`repro.camodel.generate.generate_ca_model`, after the
    stimulus set and defect universe are built (``raise`` mode fires
    here — a real exception from deep inside generation)
``artifact.write``
    in the worker just before the model artifact is persisted
    (``corrupt-artifact`` and ``midwrite-kill`` fire here)

With no plan activated :func:`fire` is a single global ``is None`` check
— the seam costs nothing in production.  This module imports only the
standard library so :mod:`repro.camodel.generate` can depend on it
without a cycle.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: exit code of a ``crash``-mode fault (distinguishable from a worker
#: exception, which exits with :data:`EXCEPTION_EXIT`)
CRASH_EXIT = 70
#: exit code a worker uses after writing a structured error record
EXCEPTION_EXIT = 71
#: exit code of a ``midwrite-kill`` fault (mimics SIGKILL during a write)
MIDWRITE_EXIT = 73

#: any cell / any attempt wildcard
ANY = "*"

SITE_WORKER_START = "worker.start"
SITE_SOLVER = "solver"
SITE_ARTIFACT_WRITE = "artifact.write"

#: failure mode -> the site it fires at
MODE_SITES = {
    "crash": SITE_WORKER_START,
    "hang": SITE_WORKER_START,
    "raise": SITE_SOLVER,
    "corrupt-artifact": SITE_ARTIFACT_WRITE,
    "midwrite-kill": SITE_ARTIFACT_WRITE,
}


class InjectedFault(RuntimeError):
    """Exception raised by a ``raise``-mode fault rule."""


@dataclass(frozen=True)
class FaultRule:
    """One scripted failure: *mode* for *cell* on the given *attempts*.

    ``attempts`` is a tuple of 0-based attempt indices; empty means the
    rule fires on every attempt (a permanently broken cell).  ``cell``
    may be ``"*"`` to match any cell.
    """

    cell: str = ANY
    mode: str = "raise"
    attempts: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in MODE_SITES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; "
                f"choose from {sorted(MODE_SITES)}"
            )

    @property
    def site(self) -> str:
        return MODE_SITES[self.mode]

    def matches(self, site: str, cell: str, attempt: int) -> bool:
        if site != self.site:
            return False
        if self.cell != ANY and self.cell != cell:
            return False
        return not self.attempts or attempt in self.attempts

    def to_dict(self) -> Dict[str, object]:
        return {
            "cell": self.cell,
            "mode": self.mode,
            "attempts": list(self.attempts),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultRule":
        return cls(
            cell=str(data.get("cell", ANY)),
            mode=str(data.get("mode", "raise")),
            attempts=tuple(int(a) for a in data.get("attempts", ())),
        )


@dataclass
class FaultPlan:
    """A deterministic failure script: the first matching rule fires."""

    rules: List[FaultRule] = field(default_factory=list)

    def find(self, site: str, cell: str, attempt: int) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.matches(site, cell, attempt):
                return rule
        return None

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        return cls(
            rules=[FaultRule.from_dict(r) for r in data.get("rules", [])]
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        # A fault plan is chaos-test *input* the user writes and hands to
        # --faults, not a run-dir artifact crash recovery must trust.
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")  # reprolint: disable=RPL005
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Worker-side activation
# ----------------------------------------------------------------------

#: (plan, cell, attempt) the current process is scripted with, if any
_active: Optional[Tuple[FaultPlan, str, int]] = None


def activate(plan: Optional[FaultPlan], cell: str, attempt: int) -> None:
    """Arm *plan* for this process's (cell, attempt); ``None`` disarms."""
    global _active
    _active = None if plan is None else (plan, cell, attempt)


def deactivate() -> None:
    """Disarm any active plan (tests use this in teardown)."""
    global _active
    _active = None


def fire(site: str, cell: Optional[str] = None) -> Optional[FaultRule]:
    """Fire the active rule for *site*, if any.

    ``crash`` exits the process, ``hang`` sleeps until killed, ``raise``
    raises :class:`InjectedFault`.  The artifact-site modes return the
    matched rule so the artifact writer can enact them (it owns the file
    handles); all other callers treat a non-``None`` return as "a fault
    is scripted here".  *cell* lets a call site name the cell it is
    actually working on (inline runs characterize many cells in one
    process); by default the activated context's cell is matched.
    """
    if _active is None:
        return None
    plan, context_cell, attempt = _active
    cell = cell if cell is not None else context_cell
    rule = plan.find(site, cell, attempt)
    if rule is None:
        return None
    if rule.mode == "crash":
        os._exit(CRASH_EXIT)
    if rule.mode == "hang":
        while True:  # until the parent's timeout terminates us
            time.sleep(0.05)
    if rule.mode == "raise":
        raise InjectedFault(
            f"injected fault: cell={cell} attempt={attempt} site={site}"
        )
    return rule


def plan_from_payload(data: Optional[Dict[str, object]]) -> Optional[FaultPlan]:
    """Rebuild a plan shipped through a worker payload dict."""
    return None if data is None else FaultPlan.from_dict(data)


def enact_artifact_fault(
    rule: FaultRule,
    artifact: Path,
    data: Dict[str, object],
    cell: str,
) -> None:
    """Carry out an ``artifact.write``-site fault; exits when one fires.

    Shared by the per-attempt worker of :mod:`repro.resilience.runner`
    and the leased worker of :mod:`repro.service.worker`, so both
    execution environments tear checkpoints in exactly the same way:

    * ``corrupt-artifact`` — a valid-looking path with unparseable
      content, written *without* the atomic rename (this fault exists to
      violate the write discipline), then a clean exit: the recovering
      parent must detect the corruption itself.
    * ``midwrite-kill`` — a torn same-directory temp file and a hard
      exit before any rename, mimicking SIGKILL mid-write: the parent
      must see a crash and no artifact.
    """
    if rule.mode == "corrupt-artifact":
        artifact.write_text('{"format": 1, "cell": "' + cell)  # reprolint: disable=RPL005
        os._exit(0)
    if rule.mode == "midwrite-kill":
        stray = artifact.parent / f".{artifact.name}.partial.tmp"
        # Deliberately torn temp file (simulated mid-write SIGKILL).
        stray.write_text(json.dumps(data)[: max(1, len(cell))])  # reprolint: disable=RPL005
        os._exit(MIDWRITE_EXIT)


def _sequence_rules(
    scripts: Dict[str, Sequence[str]], mode_map: Optional[Dict[str, str]] = None
) -> "FaultPlan":
    """Build a plan from per-cell outcome scripts (test helper).

    ``scripts`` maps cell name to a sequence of outcomes, one per
    attempt, each either ``"ok"`` or a fault mode; e.g.
    ``{"X": ["raise", "raise", "ok"]}`` fails X's first two attempts.
    """
    mode_map = mode_map or {}
    rules: List[FaultRule] = []
    by_mode: Dict[Tuple[str, str], List[int]] = {}
    for cell, outcomes in scripts.items():
        for attempt, outcome in enumerate(outcomes):
            if outcome == "ok":
                continue
            mode = mode_map.get(outcome, outcome)
            by_mode.setdefault((cell, mode), []).append(attempt)
    for (cell, mode), attempts in by_mode.items():
        rules.append(FaultRule(cell=cell, mode=mode, attempts=tuple(attempts)))
    return FaultPlan(rules=rules)
