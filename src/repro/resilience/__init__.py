"""repro.resilience — checkpointed, fault-tolerant library runs.

Three layers (see ``docs/resilience.md``):

* :mod:`repro.resilience.faults` — deterministic fault injection: a
  :class:`FaultPlan` scripts crashes, hangs, raised exceptions and
  corrupt checkpoints per (cell, attempt), so recovery behaviour is
  testable without real failures.
* :mod:`repro.resilience.ledger` — :class:`RunLedger`: per-cell run
  state (pending / running / done / failed / quarantined) and
  content-keyed model artifacts persisted atomically to a run
  directory; crash recovery promotes finished-but-unrecorded work.
* :mod:`repro.resilience.runner` — :func:`run_library`: one worker
  process per cell with wall-clock timeouts, retry-with-backoff and
  quarantine; a killed run resumed with ``resume=True`` yields a
  library byte-identical to an uninterrupted one.

Import discipline: :mod:`~repro.resilience.faults` is standard-library
only and imported eagerly (``repro.camodel.generate`` fires its solver
seam), while the ledger and runner — which depend on
:mod:`repro.camodel` — are re-exported lazily to keep the import graph
acyclic.
"""

from __future__ import annotations

from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "RunDirError",
    "RunLedger",
    "RunResult",
    "canonical_model_dict",
    "quarantined_cells",
    "run_library",
]

_LAZY = {
    "RunDirError": ("repro.resilience.ledger", "RunDirError"),
    "RunLedger": ("repro.resilience.ledger", "RunLedger"),
    "quarantined_cells": ("repro.resilience.ledger", "quarantined_cells"),
    "RunResult": ("repro.resilience.runner", "RunResult"),
    "canonical_model_dict": ("repro.resilience.runner", "canonical_model_dict"),
    "run_library": ("repro.resilience.runner", "run_library"),
}


def __getattr__(name: str) -> object:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
