"""Persistent per-cell run state for resumable library characterization.

A run directory is the unit of resumability::

    run-dir/
      ledger.json     # run config + one record per cell (atomic writes)
      failures.json   # machine-readable failure report (quarantined cells)
      models/
        <cell>-<key>.json           # completed model artifact (canonical)
        <cell>-<key>.obs.json       # worker obs sidecar (spans + metrics)
        <cell>-<key>.error.json     # structured record of the last failure
      obs/
        <cell>-<key>.a<NNN>.json    # per-attempt telemetry shard
        session-<NNN>.json          # per-session parent telemetry shard

    (the ``obs/`` telemetry store is owned by :mod:`repro.obs.store`;
    ``python -m repro inspect RUN_DIR`` reads it merged with this ledger)

Artifacts are **content-keyed** like the experiment cache: ``<key>`` is a
hash over the cell netlist text and every generation option, so a resume
with changed options (or a changed cell) can never reuse a stale model.
Artifacts are **canonical** — wall-clock fields are zeroed, the real
timings live in the ledger — so a killed-and-resumed run assembles a
library byte-identical to an uninterrupted one.

Every state transition rewrites ``ledger.json`` through the same
temp-file + ``os.replace`` path as the CA model cache, so a SIGKILL at
any instant leaves either the previous or the next consistent state,
never a torn file.  :meth:`RunLedger.recover` reconciles after a crash:
cells left ``running`` (or ``failed``) whose artifact landed on disk are
promoted to ``done`` — the worker finished, only the parent died before
recording it — and stale temp files are purged.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

LEDGER_FORMAT = 1

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"

STATES = (PENDING, RUNNING, DONE, FAILED, QUARANTINED)


class RunDirError(RuntimeError):
    """A run directory cannot be (re)used as requested."""


def _write_json_atomic(path: Path, payload: Mapping) -> None:
    # Same discipline as repro.camodel.io: serialize next to the target,
    # then os.replace, so no reader ever sees a torn file.  Imported
    # lazily to keep this module import-light (generate.py pulls in the
    # faults sibling at import time).
    from repro.camodel.io import _write_json_atomic as write

    write(path, dict(payload))


def content_key(cell_text: str, options: Mapping[str, object]) -> str:
    """Content hash of (cell netlist, generation options) — artifact key."""
    blob = json.dumps(
        {"cell_text": cell_text, "options": options}, sort_keys=True
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def config_key(options: Mapping[str, object]) -> str:
    """Content hash of the run-level generation options alone."""
    blob = json.dumps(dict(options), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class RunLedger:
    """Atomic, resumable record of one library characterization run."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / "ledger.json"
        self.models_dir = self.run_dir / "models"
        self.failures_path = self.run_dir / "failures.json"
        self.config: Dict[str, object] = {}
        self.config_key = ""
        self.cells: Dict[str, Dict[str, object]] = {}
        self.created = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        run_dir: Union[str, Path],
        options: Mapping[str, object],
        cells: Sequence[Tuple[str, str]],
        resume: bool = False,
    ) -> "RunLedger":
        """Create or reopen the ledger for *cells* (``(name, key)`` pairs).

        A fresh directory starts every cell ``pending``.  Reopening an
        existing ledger requires ``resume=True`` and the same generation
        options; cells whose content key changed since the previous
        session are reset to ``pending`` (their old artifact can no
        longer be trusted), new cells are added, and cells missing from
        the new set are dropped from the ledger.
        """
        ledger = cls(run_dir)
        ledger.config = dict(options)
        ledger.config_key = config_key(options)
        if ledger.path.exists():
            if not resume:
                raise RunDirError(
                    f"{ledger.run_dir} already holds a run ledger; pass "
                    "resume=True (--resume) to continue it or use a fresh "
                    "directory"
                )
            data = json.loads(ledger.path.read_text())
            if data.get("format") != LEDGER_FORMAT:
                raise RunDirError(
                    f"unsupported ledger format {data.get('format')!r} "
                    f"in {ledger.path}"
                )
            if data.get("config_key") != ledger.config_key:
                raise RunDirError(
                    f"{ledger.run_dir} was started with different "
                    "generation options; resuming would mix incompatible "
                    "models (use a fresh --run-dir)"
                )
            ledger.created = float(data.get("created", 0.0))
            previous = data.get("cells", {})
            for name, key in cells:
                record = previous.get(name)
                if record is not None and record.get("key") == key:
                    ledger.cells[name] = record
                else:
                    ledger.cells[name] = ledger._fresh_record(key)
        else:
            # resume=True on a directory without a ledger simply starts
            # fresh, so `--resume` is always safe to pass.
            ledger.created = time.time()
            for name, key in cells:
                ledger.cells[name] = ledger._fresh_record(key)
        ledger.models_dir.mkdir(parents=True, exist_ok=True)
        ledger.save()
        return ledger

    @staticmethod
    def _fresh_record(key: str) -> Dict[str, object]:
        return {
            "state": PENDING,
            "key": key,
            "attempts": 0,
            "seconds": 0.0,
            "errors": [],
            "metrics": {},
        }

    def save(self) -> None:
        _write_json_atomic(
            self.path,
            {
                "format": LEDGER_FORMAT,
                "created": self.created,
                "config_key": self.config_key,
                "config": self.config,
                "cells": self.cells,
            },
        )

    @classmethod
    def load(cls, run_dir: Union[str, Path]) -> "RunLedger":
        """Read an existing ledger without reconciling a cell set."""
        ledger = cls(run_dir)
        if not ledger.path.exists():
            raise RunDirError(f"{ledger.run_dir} has no ledger")
        data = json.loads(ledger.path.read_text())
        if data.get("format") != LEDGER_FORMAT:
            raise RunDirError(
                f"unsupported ledger format {data.get('format')!r}"
            )
        ledger.created = float(data.get("created", 0.0))
        ledger.config = dict(data.get("config", {}))
        ledger.config_key = str(data.get("config_key", ""))
        ledger.cells = dict(data.get("cells", {}))
        return ledger

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def artifact_path(self, name: str) -> Path:
        return self.models_dir / f"{name}-{self.cells[name]['key']}.json"

    def sidecar_path(self, name: str) -> Path:
        return self.models_dir / f"{name}-{self.cells[name]['key']}.obs.json"

    def error_path(self, name: str) -> Path:
        return self.models_dir / f"{name}-{self.cells[name]['key']}.error.json"

    # ------------------------------------------------------------------
    # Transitions (each persists atomically)
    # ------------------------------------------------------------------
    def state(self, name: str) -> str:
        return str(self.cells[name]["state"])

    def mark_running(self, name: str, attempt: Optional[int] = None) -> int:
        """Record an attempt start; returns the 0-based attempt index.

        *attempt* pins the lifetime index when the caller learned it out
        of band (the service coordinator observes a worker's lease after
        the worker already chose its index): the attempt count is floored
        to ``attempt + 1`` instead of blindly incremented, so a
        coordinator that polls a lease twice never inflates the count.
        """
        record = self.cells[name]
        if attempt is None:
            attempt = int(record["attempts"])
            record["attempts"] = attempt + 1
        else:
            attempt = int(attempt)
            record["attempts"] = max(int(record["attempts"]), attempt + 1)
        record["state"] = RUNNING
        self.save()
        return attempt

    def mark_done(
        self,
        name: str,
        seconds: float,
        metrics: Optional[Mapping[str, float]] = None,
    ) -> None:
        record = self.cells[name]
        record["state"] = DONE
        record["seconds"] = float(seconds)
        if metrics:
            record["metrics"] = {k: float(v) for k, v in metrics.items()}
        self.save()

    def record_failure(self, name: str, error: Mapping[str, object]) -> None:
        record = self.cells[name]
        record["state"] = FAILED
        record["errors"] = list(record.get("errors", [])) + [dict(error)]
        self.save()

    def mark_quarantined(self, name: str) -> None:
        self.cells[name]["state"] = QUARANTINED
        self.save()

    # ------------------------------------------------------------------
    # Recovery / queries
    # ------------------------------------------------------------------
    def validate_artifact(self, name: str) -> bool:
        """True when the cell's artifact exists and parses as its model."""
        path = self.artifact_path(name)
        if not path.exists():
            return False
        from repro.camodel.io import model_from_dict

        try:
            data = json.loads(path.read_text())
            if data.get("cell") != name:
                return False
            model_from_dict(data)
        except Exception as exc:
            # Classify and surface the rejection instead of silently
            # dropping it (the original silent swallow here is RPL008's
            # motivating instance): recover() deletes the artifact next,
            # so this event is the only trace of *why* a checkpointed
            # cell was thrown back to pending.
            from repro import obs

            obs.events().warning(
                "resilience.artifact_invalid",
                cell=name,
                path=str(path),
                kind=type(exc).__name__,
                error=str(exc),
                msg=(
                    f"artifact for {name} failed validation "
                    f"({type(exc).__name__}: {exc}); discarding it"
                ),
            )
            return False
        return True

    def recover(self) -> List[str]:
        """Reconcile after a killed session; returns promoted cell names.

        * ``running`` / ``failed`` cells with a valid artifact on disk
          become ``done`` (worker finished; parent died before recording
          it).  Their obs sidecar, when present, supplies the metrics.
        * ``running`` cells without an artifact go back to ``pending``
          (the attempt count keeps what was started).
        * Invalid (corrupt) artifacts of non-``done`` cells are removed.
        * Orphaned temp files from interrupted atomic writes are purged.
        """
        promoted: List[str] = []
        for name, record in self.cells.items():
            state = record["state"]
            if state not in (RUNNING, FAILED):
                continue
            if self.validate_artifact(name):
                metrics: Dict[str, float] = {}
                seconds = 0.0
                sidecar = self.sidecar_path(name)
                if sidecar.exists():
                    try:
                        side = json.loads(sidecar.read_text())
                        metrics = {
                            k: float(v)
                            for k, v in side.get("counters", {}).items()
                        }
                        seconds = float(side.get("seconds", 0.0))
                    except (ValueError, json.JSONDecodeError):
                        pass
                record["state"] = DONE
                record["seconds"] = seconds
                record["metrics"] = metrics
                promoted.append(name)
            else:
                artifact = self.artifact_path(name)
                if artifact.exists():
                    artifact.unlink()
                if state == RUNNING:
                    record["state"] = PENDING
        for stray in self.models_dir.glob(".*.tmp*"):
            try:
                stray.unlink()
            except OSError:
                pass
        if promoted:
            self.save()
        elif any(r["state"] == PENDING for r in self.cells.values()):
            self.save()
        return promoted

    def requeue_quarantined(self) -> List[str]:
        """Re-admit quarantined cells (a resumed session retries them).

        Error history and lifetime attempt counts are kept; only the
        state returns to ``pending`` so the new session's retry budget
        applies afresh.
        """
        requeued = []
        for name, record in self.cells.items():
            if record["state"] == QUARANTINED:
                record["state"] = PENDING
                requeued.append(name)
        if requeued:
            self.save()
        return requeued

    def names_in(self, *states: str) -> List[str]:
        return [n for n, r in self.cells.items() if r["state"] in states]

    def metrics_total(self) -> Dict[str, float]:
        """Aggregate of every done cell's counters, each counted once.

        Recomputed from the per-cell records rather than accumulated
        incrementally, so resuming a run can never double-count the work
        a previous session already recorded.
        """
        total: Dict[str, float] = {}
        for record in self.cells.values():
            if record["state"] != DONE:
                continue
            for name, value in record.get("metrics", {}).items():
                total[name] = total.get(name, 0.0) + float(value)
        return total

    # ------------------------------------------------------------------
    # Failure report
    # ------------------------------------------------------------------
    def failure_report(self) -> Dict[str, object]:
        """Machine-readable report of quarantined cells and error records."""
        quarantined = [
            {
                "cell": name,
                "attempts": record["attempts"],
                "errors": record.get("errors", []),
            }
            for name, record in self.cells.items()
            if record["state"] == QUARANTINED
        ]
        counts: Dict[str, int] = {state: 0 for state in STATES}
        for record in self.cells.values():
            counts[str(record["state"])] += 1
        return {
            "format": LEDGER_FORMAT,
            "run_dir": str(self.run_dir),
            "config_key": self.config_key,
            "counts": counts,
            "quarantined": quarantined,
        }

    def write_failure_report(self) -> Path:
        _write_json_atomic(self.failures_path, self.failure_report())
        return self.failures_path


def quarantined_cells(run_dir: Union[str, Path]) -> List[str]:
    """Names of quarantined cells of a run, for the hybrid flow's
    simulation lane (reads ``failures.json``, falling back to the ledger)."""
    run_dir = Path(run_dir)
    failures = run_dir / "failures.json"
    if failures.exists():
        try:
            report = json.loads(failures.read_text())
            return [str(q["cell"]) for q in report.get("quarantined", [])]
        except (ValueError, KeyError, json.JSONDecodeError):
            pass
    if (run_dir / "ledger.json").exists():
        return RunLedger.load(run_dir).names_in(QUARANTINED)
    return []


def purge_stale_tmp(directory: Path) -> int:
    """Remove temp files an interrupted atomic write may have left."""
    removed = 0
    for stray in Path(directory).glob(".*.tmp*"):
        try:
            stray.unlink()
            removed += 1
        except OSError:
            pass
    return removed
