"""Checkpointed, fault-tolerant library characterization.

:func:`run_library` is the resilient counterpart of
:func:`repro.camodel.batch.generate_library`: every cell is
characterized in its **own worker process** (one ``multiprocessing.Process``
per attempt, up to ``processes`` concurrently) so a crash, OOM kill, or
pathological hang in one cell can never take down the run or its
siblings.  Progress is persisted through a
:class:`~repro.resilience.ledger.RunLedger`; a killed run restarted with
``resume=True`` picks up exactly where it stopped and — because model
artifacts are canonical (wall-clock fields zeroed, timings kept in the
ledger) — assembles a library **byte-identical** to an uninterrupted run.

Failure handling per cell:

* a worker exception is caught in the worker, written as a structured
  error record, and reported with its traceback;
* a crash (any nonzero exit without an error record) and a wall-clock
  timeout (``cell_timeout``; the worker is terminated, then killed) are
  recorded the same way;
* each failure retries with exponential backoff up to ``retries`` times,
  after which the cell is **quarantined**: the run completes with a
  partial library plus a machine-readable failure report
  (``failures.json``) that the hybrid flow can route to the simulation
  lane (:func:`repro.resilience.ledger.quarantined_cells`).

Observability: workers export their span buffer and metric counters
through a sidecar file; the parent absorbs spans under the
``resilience.run`` span and merges counters exactly once, when the cell
transitions to ``done``.  Retries, timeouts and quarantines are counted
under the ``resilience.*`` metric namespace and emitted as structured
events.  With ``persist_telemetry=True`` (the default) every attempt
additionally writes a durable telemetry shard into ``<run_dir>/obs/``
(spans, counters, events, outcome — see :mod:`repro.obs.store`), the
parent writes one session shard per run, and crashed / timed-out
attempts get their shard written by the parent, so ``python -m repro
inspect RUN_DIR`` can reconstruct the whole run after the fact.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.obs import store as obs_store
from repro.camodel.batch import ensure_unique_cell_names
from repro.camodel.generate import (
    DEFAULT_SLOW_FACTOR,
    PhaseCacheArg,
    generate_ca_model,
)
from repro.camodel.io import (
    FORMAT_VERSION,
    _write_json_atomic,
    model_from_dict,
    model_to_dict,
)
from repro.camodel.model import CAModel
from repro.defects.model import Defect
from repro.library.technology import ElectricalParams
from repro.resilience import faults
from repro.resilience.ledger import (
    DONE,
    FAILED,
    PENDING,
    QUARANTINED,
    RunLedger,
    content_key,
    purge_stale_tmp,
)
from repro.spice.netlist import CellNetlist
from repro.spice.writer import write_cell

# Metric names of the resilience layer (repro.obs registry).
M_CELLS_DONE = "resilience.cells_done"
M_CELLS_RESUMED = "resilience.cells_resumed"
M_RETRIES = "resilience.retries"
M_TIMEOUTS = "resilience.timeouts"
M_CRASHES = "resilience.crashes"
M_EXCEPTIONS = "resilience.exceptions"
M_CORRUPT = "resilience.corrupt_artifacts"
M_QUARANTINED = "resilience.quarantined"

#: parent poll interval while workers run [s]
POLL_INTERVAL = 0.02


def canonical_model_dict(model: CAModel) -> Dict[str, object]:
    """Serialized model with wall-clock fields zeroed.

    Checkpoint artifacts must be reproducible: two runs of the same cell
    under the same options produce identical detection tables and solver
    counters, but never identical wall times.  Zeroing the timing fields
    here (the real timings are kept in the run ledger) is what makes a
    resumed library byte-identical to an uninterrupted one.
    """
    data = model_to_dict(model)
    data["generation_seconds"] = 0.0
    stats = data.get("stats")
    if isinstance(stats, dict):
        for key in (
            "golden_seconds",
            "defect_seconds",
            "merge_seconds",
            "total_seconds",
        ):
            stats[key] = 0.0
    return data


def _options_fingerprint(
    policy: str,
    params: Optional[ElectricalParams],
    universe: Optional[Sequence[Defect]],
    delay_detection: bool,
    slow_factor: float,
    batched: bool,
    parallelism: Optional[int],
) -> Dict[str, object]:
    """JSON-stable fingerprint of every option that shapes an artifact."""
    return {
        "format": FORMAT_VERSION,
        "policy": policy,
        "params": asdict(params) if params is not None else None,
        "universe": (
            None
            if universe is None
            else [
                {"name": d.name, "kind": d.kind, "location": list(d.location)}
                for d in universe
            ]
        ),
        "delay_detection": delay_detection,
        "slow_factor": slow_factor,
        "batched": batched,
        "parallelism": parallelism,
        # packed / phase_cache are deliberately absent: both are
        # identity-preserving solver knobs (models are byte-identical
        # with or without them), so changing them must not invalidate
        # existing artifacts or block a resume.
    }


@dataclass
class RunResult:
    """Outcome of one (possibly resumed) resilient run."""

    run_dir: Path
    models: Dict[str, CAModel] = field(default_factory=dict)
    quarantined: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    #: cells whose model was reused from a previous session of this run
    resumed: List[str] = field(default_factory=list)
    #: failure report also persisted as ``<run_dir>/failures.json``
    report: Dict[str, object] = field(default_factory=dict)
    #: aggregate worker metric counters, each cell counted exactly once
    metrics: Dict[str, float] = field(default_factory=dict)
    library_path: Optional[Path] = None

    @property
    def complete(self) -> bool:
        return not self.quarantined


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------

def _cell_worker(payload: Dict[str, object]) -> None:
    """Characterize one cell and persist its artifact; never returns data.

    All results flow through the filesystem (atomic writes), so the
    parent only needs the exit code: 0 plus a valid artifact is success,
    anything else is classified from the exit code and the optional
    error record.  The fault plan, when present, is armed for this
    (cell, attempt) before any work happens.
    """
    from repro.camodel.planstore import plan_store

    name = payload["name"]
    shard_path = payload.get("obs_shard")
    plan = faults.plan_from_payload(payload["fault_plan"])
    faults.activate(plan, cell=name, attempt=payload["attempt"])
    # Created before the try block so the exception path can still ship
    # whatever telemetry the attempt produced before dying.
    worker_tracer = obs.Tracer(enabled=payload["trace_enabled"])
    worker_metrics = obs.Metrics()
    worker_events = obs.ListSink()
    started_wall = time.time()

    def write_shard(outcome: str, seconds: float, error=None) -> None:
        if shard_path is None:
            return
        obs_store.write_attempt_shard(
            shard_path,
            cell=name,
            key=payload["content_key"],
            attempt=payload["attempt"],
            outcome=outcome,
            pid=os.getpid(),
            started=started_wall,
            seconds=seconds,
            counters=worker_metrics.snapshot()["counters"],
            spans=worker_tracer.export(),
            events=[event.to_dict() for event in worker_events.events],
            error=error,
        )

    try:
        faults.fire(faults.SITE_WORKER_START)
        started = time.perf_counter()
        with obs.scoped(
            tracer=worker_tracer,
            metrics=worker_metrics,
            events=obs.EventLog(
                worker_events if shard_path is not None else obs.NullSink()
            ),
        ):
            # Plan-once / replay-many: the store parses a cell text once
            # per worker process, however many attempts replay it.
            cell = plan_store().cell(payload["cell_text"], payload["technology"])
            model = generate_ca_model(
                cell, policy=payload["policy"], **payload["kwargs"]
            )
        elapsed = time.perf_counter() - started
        data = canonical_model_dict(model)
        artifact = Path(payload["artifact"])
        rule = faults.fire(faults.SITE_ARTIFACT_WRITE)
        if rule is not None:
            # Torn/corrupt checkpoint faults exit the process inside.
            faults.enact_artifact_fault(rule, artifact, data, name)
        _write_json_atomic(artifact, data)
        _write_json_atomic(
            Path(payload["sidecar"]),
            {
                "seconds": elapsed,
                "counters": worker_metrics.snapshot()["counters"],
                "spans": worker_tracer.export(),
            },
        )
        write_shard("ok", elapsed)
    except BaseException as exc:  # noqa: BLE001 - classified for the parent
        error_text = f"{type(exc).__name__}: {exc}"
        record = {
            "kind": "exception",
            "error": error_text,
            "traceback": traceback.format_exc(),
        }
        try:
            _write_json_atomic(Path(payload["error"]), record)
            # The partial spans/counters of a dying attempt are still
            # part of what the run paid for — persist them too.
            write_shard(
                "exception", time.time() - started_wall, error=error_text
            )
        finally:
            os._exit(faults.EXCEPTION_EXIT)


# ----------------------------------------------------------------------
# Parent orchestration
# ----------------------------------------------------------------------

@dataclass
class _Active:
    process: multiprocessing.Process
    name: str
    #: lifetime attempt index (persists across resumed sessions; what
    #: fault plans and error records are keyed on)
    attempt: int
    #: attempt index within this session (what the retry budget uses, so
    #: a resumed session retries previously failed cells afresh)
    session_attempt: int
    started: float
    #: wall-clock start (telemetry shards; `started` is monotonic)
    started_wall: float
    deadline: Optional[float]


def _classify_failure(
    ledger: RunLedger, name: str, exitcode: Optional[int]
) -> Dict[str, object]:
    """Build the structured error record for a failed attempt."""
    error_path = ledger.error_path(name)
    if error_path.exists():
        try:
            record = json.loads(error_path.read_text())
            error_path.unlink()
            return record
        except (ValueError, json.JSONDecodeError):
            error_path.unlink()
    if exitcode == faults.CRASH_EXIT:
        detail = "injected crash"
    elif exitcode is not None and exitcode < 0:
        detail = f"killed by signal {-exitcode}"
    else:
        detail = f"exit code {exitcode}"
    return {"kind": "crash", "error": f"worker died without a result ({detail})"}


def read_sidecar(
    ledger: RunLedger, name: str
) -> Tuple[float, Dict[str, float], List[Dict[str, object]]]:
    """(seconds, counters, spans) from a cell's obs sidecar, if readable.

    The sidecar is the worker-side record of a successful attempt; both
    the sequential parent and the service coordinator consume it at the
    ``done`` transition, so the per-cell counters that feed
    ``metrics_total()`` come from one reader regardless of who ran the
    cell.  Missing or torn sidecars degrade to zeros, never raise.
    """
    sidecar = ledger.sidecar_path(name)
    if sidecar.exists():
        try:
            side = json.loads(sidecar.read_text())
            return (
                float(side.get("seconds", 0.0)),
                {k: float(v) for k, v in side.get("counters", {}).items()},
                list(side.get("spans", [])),
            )
        except (ValueError, json.JSONDecodeError):
            pass
    return 0.0, {}, []


def assemble_run_result(
    ledger: RunLedger,
    names: Sequence[str],
    result: RunResult,
    output: Optional[Union[str, Path]] = None,
) -> List[Dict[str, object]]:
    """Fill *result* from the checkpoints; returns the artifact dicts.

    Shared tail of a sequential run and a coordinated service run: the
    models, quarantine records, aggregate counters, failure report and
    (optional) assembled library JSON all come from the same ledger
    reads and the same atomic writer, which is what makes an N-worker
    service run byte-identical to a sequential one.
    """
    artifact_dicts: List[Dict[str, object]] = []
    for name in names:
        record = ledger.cells[name]
        if record["state"] == DONE:
            data = json.loads(ledger.artifact_path(name).read_text())
            artifact_dicts.append(data)
            result.models[name] = model_from_dict(data)
        elif record["state"] == QUARANTINED:
            result.quarantined[name] = list(record.get("errors", []))
    result.metrics = ledger.metrics_total()
    result.report = ledger.failure_report()
    ledger.write_failure_report()
    if output is not None:
        result.library_path = Path(output)
        _write_json_atomic(
            result.library_path,
            {"format": FORMAT_VERSION, "models": artifact_dicts},
        )
    return artifact_dicts


def run_library(
    cells: Sequence[CellNetlist],
    run_dir: Union[str, Path],
    policy: str = "auto",
    processes: Optional[int] = None,
    resume: bool = False,
    retries: int = 1,
    cell_timeout: Optional[float] = None,
    retry_backoff: float = 0.1,
    fault_plan: Optional[faults.FaultPlan] = None,
    persist_telemetry: bool = True,
    params: Optional[ElectricalParams] = None,
    universe: Optional[Sequence[Defect]] = None,
    delay_detection: bool = True,
    slow_factor: float = DEFAULT_SLOW_FACTOR,
    parallelism: Optional[int] = None,
    batched: bool = True,
    packed: bool = False,
    phase_cache: PhaseCacheArg = None,
    output: Optional[Union[str, Path]] = None,
) -> RunResult:
    """Characterize *cells* with checkpointing, retries, and quarantine.

    Parameters beyond :func:`~repro.camodel.batch.generate_library`'s:

    run_dir:
        Directory holding the ledger and per-cell model artifacts.
    resume:
        Continue a previous (killed or partial) run of the same cells
        and options; completed cells are reused from their artifacts.
    retries:
        Failed attempts allowed per cell beyond the first; exhausted
        cells are quarantined instead of aborting the run.
    cell_timeout:
        Wall-clock seconds per attempt; a worker past it is terminated
        and the attempt counts as a timeout failure.
    retry_backoff:
        Base delay before a retry (doubles per attempt); 0 disables.
    fault_plan:
        Deterministic failure script for chaos testing
        (:mod:`repro.resilience.faults`).
    persist_telemetry:
        Write durable telemetry shards into ``<run_dir>/obs/`` — one per
        attempt (worker spans forced on, counters, events, outcome) plus
        one session shard per run (:mod:`repro.obs.store`), feeding
        ``python -m repro inspect`` / ``watch``.  Purely additive: model
        artifacts and the ledger are byte-identical either way.
    output:
        When given, the (possibly partial) library JSON is written there
        atomically from the checkpoint artifacts — byte-identical across
        resumed and uninterrupted runs.
    packed / phase_cache:
        Forwarded to :func:`~repro.camodel.generate.generate_ca_model`
        in every worker.  Both are identity-preserving (and therefore
        not part of the option fingerprint): ``packed`` routes solving
        through the cross-topology packed kernel, ``phase_cache`` is a
        directory persisting solved phases so retried attempts and
        repeat runs skip already-solved work — with counters served
        through the counter-neutral prefetch path, keeping artifacts
        canonical.
    """
    names = [cell.name for cell in cells]
    ensure_unique_cell_names(names)
    options = _options_fingerprint(
        policy, params, universe, delay_detection, slow_factor, batched,
        parallelism,
    )
    texts = {cell.name: write_cell(cell) for cell in cells}
    technologies = {cell.name: cell.technology for cell in cells}
    keyed = [(name, content_key(texts[name], options)) for name in names]
    ledger = RunLedger.open(run_dir, options, keyed, resume=resume)
    store = obs_store.ObsStore(run_dir) if persist_telemetry else None

    tracer = obs.tracer()
    if store is not None and not tracer.enabled:
        # The session shard needs the parent-side spans even when the
        # CLI ran untraced; a local enabled tracer keeps the global
        # (null) state untouched — only this runner writes through it.
        tracer = obs.Tracer(enabled=True)
    registry = obs.metrics()
    events = obs.events()
    result = RunResult(run_dir=Path(run_dir))

    # Session-shard bookkeeping: parent spans/events/counters of THIS
    # session only, with merged worker counters subtracted back out (the
    # ledger is their single source of truth; double-storing them would
    # break the reader's exact reconciliation).
    session_started = time.time()
    span_mark = tracer.mark()
    counter_mark = registry.checkpoint()
    merged_this_session: Dict[str, float] = {}
    session_events = obs.ListSink() if store is not None else None
    if session_events is not None:
        # Local tee, not a global sink mutation: events this runner emits
        # reach both the configured sink and the session shard buffer.
        events = obs.EventLog(obs.TeeSink([events.sink, session_events]))

    kwargs = dict(
        params=params,
        universe=universe,
        delay_detection=delay_detection,
        slow_factor=slow_factor,
        parallelism=parallelism,
        batched=batched,
        packed=packed,
        phase_cache=(
            str(phase_cache)
            if isinstance(phase_cache, (str, Path))
            else phase_cache
        ),
    )
    plan_payload = fault_plan.to_dict() if fault_plan is not None else None

    with tracer.span(
        "resilience.run", cells=len(cells), resume=resume
    ) as run_span:
        recovered = ledger.recover()
        requeued = ledger.requeue_quarantined() if resume else []
        if requeued:
            events.info(
                "resilience.requeue",
                cells=len(requeued),
                msg=(
                    f"re-admitting {len(requeued)} quarantined cell(s) "
                    "with a fresh retry budget"
                ),
            )
        already_done = ledger.names_in(DONE)
        if resume and already_done:
            result.resumed = list(already_done)
            registry.inc(M_CELLS_RESUMED, len(already_done))
            events.info(
                "resilience.resume",
                run_dir=str(run_dir),
                reused=len(already_done),
                recovered=len(recovered),
                msg=(
                    f"resuming {run_dir}: reusing {len(already_done)} "
                    f"completed cells ({len(recovered)} recovered from a "
                    "killed session)"
                ),
            )

        queue: List[str] = [
            n for n in names if ledger.state(n) in (PENDING, FAILED)
        ]
        max_workers = max(1, processes or 1)
        active: List[_Active] = []
        delayed: List[Tuple[float, str]] = []  # (ready time, name)
        session_attempts: Dict[str, int] = {}

        def spawn(name: str) -> None:
            attempt = ledger.mark_running(name)
            session_attempt = session_attempts.get(name, 0)
            session_attempts[name] = session_attempt + 1
            key = str(ledger.cells[name]["key"])
            payload = {
                "name": name,
                "cell_text": texts[name],
                "technology": technologies[name],
                "policy": policy,
                "kwargs": kwargs,
                "artifact": str(ledger.artifact_path(name)),
                "sidecar": str(ledger.sidecar_path(name)),
                "error": str(ledger.error_path(name)),
                # Persisted telemetry needs worker spans even when the
                # parent runs untraced — the shard is the whole point.
                "trace_enabled": tracer.enabled or store is not None,
                "fault_plan": plan_payload,
                "attempt": attempt,
                "content_key": key,
                "obs_shard": (
                    str(store.attempt_shard_path(name, key, attempt))
                    if store is not None
                    else None
                ),
            }
            process = multiprocessing.Process(
                target=_cell_worker, args=(payload,)
            )
            process.start()
            now = time.monotonic()
            active.append(
                _Active(
                    process=process,
                    name=name,
                    attempt=attempt,
                    session_attempt=session_attempt,
                    started=now,
                    started_wall=time.time(),
                    deadline=(
                        now + cell_timeout if cell_timeout is not None else None
                    ),
                )
            )

        def finish_success(slot: _Active) -> None:
            seconds, metrics, spans = read_sidecar(ledger, slot.name)
            if spans and tracer.enabled:
                # Workers trace unconditionally when telemetry is
                # persisted; only absorb into a live parent tracer.
                tracer.absorb(spans, parent_id=run_span.span_id)
            ledger.mark_done(slot.name, seconds=seconds, metrics=metrics)
            # Merge worker counters exactly once: at the done transition.
            # Resumed sessions read completed cells from the ledger and
            # never pass here again, so nothing is double-counted.
            registry.merge_counters(metrics)
            for key, value in metrics.items():
                merged_this_session[key] = (
                    merged_this_session.get(key, 0.0) + float(value)
                )
            registry.inc(M_CELLS_DONE)
            events.debug(
                "resilience.cell_done",
                cell=slot.name,
                attempt=slot.attempt,
                seconds=round(seconds, 4),
                msg=f"{slot.name}: done (attempt {slot.attempt + 1})",
            )

        def finish_failure(slot: _Active, record: Dict[str, object]) -> None:
            record = dict(record)
            record["attempt"] = slot.attempt
            record["elapsed"] = round(time.monotonic() - slot.started, 4)
            kind = str(record.get("kind", "crash"))
            registry.inc(
                {
                    "timeout": M_TIMEOUTS,
                    "exception": M_EXCEPTIONS,
                    "corrupt-artifact": M_CORRUPT,
                }.get(kind, M_CRASHES)
            )
            # A corrupt checkpoint must never be mistaken for a model by
            # a later recover(); drop it before recording the failure.
            artifact = ledger.artifact_path(slot.name)
            if artifact.exists() and not ledger.validate_artifact(slot.name):
                artifact.unlink()
            ledger.record_failure(slot.name, record)
            if store is not None:
                # A crashed / timed-out worker never reached its own
                # shard write; the parent records what it knows so the
                # failure timeline has one shard per attempt regardless.
                key = str(ledger.cells[slot.name]["key"])
                if not store.has_attempt(slot.name, key, slot.attempt):
                    obs_store.write_attempt_shard(
                        store.attempt_shard_path(slot.name, key, slot.attempt),
                        cell=slot.name,
                        key=key,
                        attempt=slot.attempt,
                        outcome=kind,
                        pid=slot.process.pid or 0,
                        started=slot.started_wall,
                        seconds=float(record["elapsed"]),
                        counters={},
                        spans=[],
                        events=[],
                        error=str(record.get("error", "")),
                    )
            if slot.session_attempt < retries:
                registry.inc(M_RETRIES)
                delay = (
                    retry_backoff * (2 ** slot.session_attempt)
                    if retry_backoff
                    else 0.0
                )
                delayed.append((time.monotonic() + delay, slot.name))
                events.warning(
                    "resilience.retry",
                    cell=slot.name,
                    attempt=slot.attempt,
                    kind=kind,
                    backoff=round(delay, 3),
                    error=record.get("error"),
                    msg=(
                        f"{slot.name}: attempt {slot.attempt + 1} failed "
                        f"({kind}); retrying in {delay:.2f}s"
                    ),
                )
            else:
                registry.inc(M_QUARANTINED)
                ledger.mark_quarantined(slot.name)
                events.error(
                    "resilience.quarantine",
                    cell=slot.name,
                    attempts=slot.attempt + 1,
                    kind=kind,
                    error=record.get("error"),
                    msg=(
                        f"{slot.name}: quarantined after "
                        f"{slot.attempt + 1} attempts ({kind})"
                    ),
                )

        while queue or active or delayed:
            now = time.monotonic()
            if delayed:
                ready = [n for t, n in delayed if t <= now]
                delayed = [(t, n) for t, n in delayed if t > now]
                queue.extend(ready)
            while queue and len(active) < max_workers:
                spawn(queue.pop(0))
            still: List[_Active] = []
            for slot in active:
                if not slot.process.is_alive():
                    slot.process.join()
                    code = slot.process.exitcode
                    if code == 0 and ledger.validate_artifact(slot.name):
                        finish_success(slot)
                    elif code == 0:
                        finish_failure(
                            slot,
                            {
                                "kind": "corrupt-artifact",
                                "error": (
                                    "worker exited cleanly but its "
                                    "checkpoint artifact is unreadable"
                                ),
                            },
                        )
                    else:
                        finish_failure(
                            slot, _classify_failure(ledger, slot.name, code)
                        )
                elif slot.deadline is not None and now > slot.deadline:
                    slot.process.terminate()
                    slot.process.join(timeout=1.0)
                    if slot.process.is_alive():
                        slot.process.kill()
                        slot.process.join()
                    finish_failure(
                        slot,
                        {
                            "kind": "timeout",
                            "error": (
                                f"cell exceeded --cell-timeout "
                                f"{cell_timeout}s; worker terminated"
                            ),
                        },
                    )
                else:
                    still.append(slot)
            active = still
            if active or delayed:
                time.sleep(POLL_INTERVAL)

        # All workers have exited: any temp file left in the models dir
        # or shard store belongs to an interrupted write of a failed
        # attempt.
        purge_stale_tmp(ledger.models_dir)
        if store is not None:
            purge_stale_tmp(store.obs_dir)

        # Assemble the (possibly partial) library from the checkpoints.
        assemble_run_result(ledger, names, result, output)
        run_span.set("done", len(result.models))
        run_span.set("quarantined", len(result.quarantined))
        run_span.set("resumed", len(result.resumed))
    if store is not None and session_events is not None:
        own_pid = os.getpid()
        session_spans = [
            span
            for span in tracer.export_since(span_mark)
            if span["pid"] == own_pid
        ]
        counter_delta = registry.counter_delta(counter_mark)
        parent_counters: Dict[str, float] = {}
        for key, value in counter_delta.items():
            remainder = value - merged_this_session.get(key, 0.0)
            if remainder:
                parent_counters[key] = remainder
        store.write_session(
            pid=own_pid,
            started=session_started,
            seconds=time.time() - session_started,
            root_span_id=run_span.span_id,
            counters=parent_counters,
            spans=session_spans,
            events=[event.to_dict() for event in session_events.events],
        )
    return result
