"""repro.lint — project-invariant static analysis.

An AST-based rule framework encoding the invariants this reproduction's
correctness claims rest on, checked mechanically instead of by reviewer
vigilance:

* **determinism** — byte-identical resume and batched-vs-scalar
  equality require no unseeded randomness (RPL003) and no wall-clock
  values reaching canonical artifact bytes (RPL004);
* **atomic-write discipline** — crash recovery trusts on-disk files to
  be complete, so artifact paths write via temp-file + ``os.replace``
  only (RPL005);
* **multiprocessing safety** — pool entry points must pickle (RPL006)
  and worker payloads must not carry open handles (RPL007);
* **exception hygiene** — broad handlers must re-raise, classify, or
  emit through :class:`repro.obs.EventLog` (RPL008);
* **obs discipline** — no bare ``print`` outside the sanctioned sinks
  (RPL001) and every metric/event name literal registered in
  :mod:`repro.lint.catalog` (RPL002).

Run it with ``python -m repro lint [paths] [--format text|json|sarif]
[--select/--ignore RPL0xx] [--baseline FILE]``; suppress one finding
inline with ``# reprolint: disable=RPL0xx``.  See
``docs/static-analysis.md`` for the full rule catalog and workflow.
"""

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.catalog import EVENT_NAMES, METRIC_NAMES, REGISTERED_NAMES
from repro.lint.config import LintConfig
from repro.lint.engine import (
    ModuleUnit,
    Rule,
    all_rules,
    check_unit,
    get_rule,
    run_lint,
    select_rules,
)
from repro.lint.findings import Finding
from repro.lint.reporters import render, render_json, render_sarif, render_text

__all__ = [
    "EVENT_NAMES",
    "Finding",
    "LintConfig",
    "METRIC_NAMES",
    "ModuleUnit",
    "REGISTERED_NAMES",
    "Rule",
    "all_rules",
    "apply_baseline",
    "check_unit",
    "get_rule",
    "load_baseline",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "select_rules",
    "write_baseline",
]
