"""Registered metric and event names — the RPL002 ground truth.

Every metric counter and structured event name used in ``src/repro``
must be registered here.  The point is mechanical typo detection: a
misspelt counter today surfaces only at runtime as
``stats.unknown_keys`` (or not at all, as a counter nobody reads);
RPL002 turns it into a lint failure at the call site.

The sets are duplicated from the defining modules on purpose —
``repro.lint`` must not import the packages it lints (heavy imports,
and a syntax error in a linted module must not break the linter).
``tests/test_lint.py::test_catalog_matches_defining_modules`` guards
the copy against rot: every ``M_*`` constant in
:mod:`repro.camodel.stats`, :mod:`repro.resilience.runner`,
:mod:`repro.simulation.engine`, :mod:`repro.simulation.phasecache`,
:mod:`repro.simulation.packed`, :mod:`repro.camodel.planstore`,
:mod:`repro.camodel.throughput`, :mod:`repro.obs.store`,
:mod:`repro.obs.inspect`, :mod:`repro.learning.engine`,
:mod:`repro.lint.program.driver` and the
:mod:`repro.service` modules must appear in :data:`METRIC_NAMES`, and
every ``E_*`` constant in :mod:`repro.obs.trace` / :mod:`repro.obs.store`
in :data:`EVENT_NAMES`.

To add a metric or event: define the name constant in the owning
module, use it at the call site, and register it here (same PR).
"""

from __future__ import annotations

from typing import FrozenSet

#: namespaces a registered name may live under; a dotted literal whose
#: first segment is one of these is checked against the catalog, and a
#: dotted literal under an *unknown* first segment is flagged outright
#: (a typo in the namespace itself, e.g. ``resilence.retries``).
NAMESPACES: FrozenSet[str] = frozenset(
    {
        "camodel",
        "resilience",
        "hybrid",
        "cache",
        "experiment",
        "stats",
        "throughput",
        "phasecache",
        "trace",
        "obs",
        "inspect",
        "watch",
        "learning",
        "service",
        "lease",
        "lint",
    }
)

#: counters/gauges/histograms (see repro.camodel.stats / repro.resilience.runner)
METRIC_NAMES: FrozenSet[str] = frozenset(
    {
        # camodel generation cost accounting (repro.camodel.stats)
        "camodel.sim.solves",
        "camodel.sim.cache_hits",
        "camodel.sim.batched_phases",
        "camodel.defects.simulated",
        "camodel.defects.skipped",
        "camodel.seconds.golden",
        "camodel.seconds.defects",
        "camodel.seconds.merge",
        "camodel.seconds.total",
        # checkpointed run layer (repro.resilience.runner)
        "resilience.cells_done",
        "resilience.cells_resumed",
        "resilience.retries",
        "resilience.timeouts",
        "resilience.crashes",
        "resilience.exceptions",
        "resilience.corrupt_artifacts",
        "resilience.quarantined",
        # cross-cell packed throughput engine (repro.simulation.engine,
        # repro.camodel.throughput, repro.camodel.planstore)
        "throughput.packed_rows",
        "throughput.flushes",
        "throughput.cells",
        "throughput.plan_reuse",
        # on-disk phase-cache store (repro.simulation.phasecache)
        "phasecache.hits",
        "phasecache.misses",
        "phasecache.loads",
        "phasecache.stores",
        # packed-kernel padding accounting (repro.simulation.packed)
        "throughput.kernel_slots",
        "throughput.padded_slots",
        # per-cell generation seconds histogram (repro.camodel.stats)
        "camodel.seconds.per_cell",
        # durable run-telemetry store (repro.obs.store)
        "obs.shards_written",
        "obs.shards_read",
        # inspect / watch CLI (repro.obs.inspect)
        "inspect.reports",
        "watch.refreshes",
        # frontier-batched forest engine (repro.learning.engine)
        "learning.fit.seconds",
        "learning.frontier_nodes",
        "learning.packed_lanes",
        # per-cell lease files of the worker service (repro.service.lease)
        "lease.claims",
        "lease.conflicts",
        "lease.heartbeats",
        "lease.lost",
        "lease.releases",
        "lease.reaped",
        # coordinator/worker characterization service (repro.service)
        "service.cells",
        "service.failures",
        "service.commits",
        "service.commit_races",
        "service.discards",
        "service.workers_spawned",
        # whole-program lint driver (repro.lint.program.driver)
        "lint.program.modules",
        "lint.program.cache_hits",
        "lint.program.cache_misses",
        "lint.program.findings",
    }
)

#: structured event names (repro.obs.events call sites)
EVENT_NAMES: FrozenSet[str] = frozenset(
    {
        # experiment cache layer
        "cache.unreadable",
        "cache.generate",
        "cache.write",
        # experiment runner artifact accounting
        "experiment.artifact",
        # hybrid flow routing decisions
        "hybrid.route",
        # forward-compat stats loader
        "stats.unknown_keys",
        # checkpointed run layer
        "resilience.requeue",
        "resilience.resume",
        "resilience.cell_done",
        "resilience.retry",
        "resilience.quarantine",
        "resilience.artifact_invalid",
        # on-disk phase-cache store
        "phasecache.corrupt",
        # span-buffer merging (repro.obs.trace)
        "trace.orphan_spans",
        # durable run-telemetry store (repro.obs.store)
        "obs.shard_corrupt",
        # coordinator/worker characterization service (repro.service)
        "lease.expired",
        "service.submit",
        "service.serve",
        "service.worker_start",
        "service.worker_exit",
        "service.discard",
    }
)

REGISTERED_NAMES: FrozenSet[str] = METRIC_NAMES | EVENT_NAMES
