"""Finding reporters: text (default), JSON, SARIF 2.1.0.

SARIF is what CI uploads — GitHub's code-scanning ingestion turns it
into inline PR annotations.  The JSON format is the stable
machine-readable contract the corpus golden files are written against.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.engine import Rule
from repro.lint.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: Sequence[Finding]) -> str:
    lines = [f.render() for f in findings]
    lines.append(f"found {len(findings)} problem(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        {"format": 1, "findings": [f.to_dict() for f in findings]},
        indent=2,
        sort_keys=True,
    )


def render_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule]
) -> str:
    rule_entries: List[Dict[str, object]] = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for f in findings:
        result: Dict[str, object] = {
            "ruleId": f.rule_id,
            "level": "error",
            "message": {"text": f.message},
            "partialFingerprints": {"reprolint/v2": f.fingerprint},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col,
                        },
                    }
                }
            ],
        }
        if f.rule_id in rule_index:
            result["ruleIndex"] = rule_index[f.rule_id]
        results.append(result)
    sarif = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/docs/static-analysis.md"
                        ),
                        "rules": rule_entries,
                    }
                },
                "results": results,
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            }
        ],
    }
    return json.dumps(sarif, indent=2, sort_keys=True)


def render(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    fmt: str = "text",
) -> str:
    if fmt == "text":
        return render_text(findings)
    if fmt == "json":
        return render_json(findings)
    if fmt == "sarif":
        return render_sarif(findings, rules)
    raise ValueError(f"unknown format {fmt!r} (text, json, sarif)")
