"""Rule registry and per-file analysis driver.

One :class:`ModuleUnit` is parsed per file and shared by every rule, so
a lint run costs one ``ast.parse`` per module regardless of how many
rules are selected.  Suppressions are handled here, uniformly for all
rules: a ``# reprolint: disable=RPL001`` (comma-separated ids, or
``all``) comment suppresses findings of those rules on its physical
line, ``# reprolint: disable-next-line=...`` on the following line, and
``# reprolint: disable-file=...`` anywhere in the file suppresses the
whole file.  For multi-line statements, a suppression on the line where
the violating *node* starts also applies.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig, match_path
from repro.lint.findings import Finding, number_occurrences

#: ``# reprolint: disable=RPL001,RPL005`` (also disable-next-line / disable-file)
_SUPPRESS = re.compile(
    r"#\s*reprolint:\s*(disable(?:-next-line|-file)?)\s*=\s*"
    r"([A-Za-z0-9_,\s]+)"
)

PARSE_ERROR_ID = "RPL000"


class ModuleUnit:
    """One parsed source file plus the derived tables rules share."""

    def __init__(self, path: Path, display_path: str, text: str):
        self.path = path
        #: path as reported in findings (posix, as given on the CLI)
        self.display_path = display_path
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text)
        except SyntaxError as exc:
            self.parse_error = exc
        #: line -> set of rule ids (or {'all'}) suppressed on that line
        self.suppressed: Dict[int, Set[str]] = {}
        #: rule ids (or {'all'}) suppressed for the whole file
        self.file_suppressed: Set[str] = set()
        self._scan_suppressions()
        #: import alias -> dotted module name ("np" -> "numpy")
        self.import_aliases: Dict[str, str] = {}
        #: imported-from names: local name -> "module.name"
        self.from_imports: Dict[str, str] = {}
        #: module-level NAME = "string constant" assignments
        self.str_constants: Dict[str, str] = {}
        #: names of functions defined *inside* another function (unpicklable
        #: as pool entry points), plus names bound to lambdas at any level
        self.nested_functions: Set[str] = set()
        self.lambda_names: Set[str] = set()
        if self.tree is not None:
            self._scan_module()

    # ------------------------------------------------------------------
    def _iter_comment_tokens(self) -> Iterator[Tuple[int, str]]:
        """Yield ``(line, comment_text)`` for real comment tokens only.

        Tokenizing (rather than regex-scanning raw lines) is what keeps a
        ``# reprolint: disable=...`` *inside a string literal or docstring*
        from acting as a suppression.  Tokenization can fail where parsing
        would too (the file then only gets RPL000, so nothing is lost) —
        comments seen before the error still count.
        """
        try:
            for tok in tokenize.generate_tokens(
                io.StringIO(self.text).readline
            ):
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return

    def _scan_suppressions(self) -> None:
        for number, comment in self._iter_comment_tokens():
            match = _SUPPRESS.search(comment)
            if not match:
                continue
            kind = match.group(1)
            ids = {
                part.strip()
                for part in match.group(2).split(",")
                if part.strip()
            }
            if kind == "disable-file":
                self.file_suppressed |= ids
            elif kind == "disable-next-line":
                self.suppressed.setdefault(number + 1, set()).update(ids)
            else:
                self.suppressed.setdefault(number, set()).update(ids)

    def _scan_module(self) -> None:
        assert self.tree is not None
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.import_aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.import_aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(node, ast.FunctionDef) or isinstance(
                node, ast.AsyncFunctionDef
            ):
                for inner in ast.walk(node):
                    if inner is node:
                        continue
                    if isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self.nested_functions.add(inner.name)
        for stmt in self.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                if isinstance(stmt.value, ast.Constant) and isinstance(
                    stmt.value.value, str
                ):
                    self.str_constants[stmt.targets[0].id] = stmt.value.value
                elif isinstance(stmt.value, ast.Lambda):
                    self.lambda_names.add(stmt.targets[0].id)

    # ------------------------------------------------------------------
    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve ``np.random.rand`` -> ``numpy.random.rand`` (or None).

        Import aliases are expanded at the root; ``from x import y``
        names resolve through :attr:`from_imports`.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        root = self.from_imports.get(root, self.import_aliases.get(root, root))
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_str_arg(self, node: ast.AST) -> Optional[str]:
        """A string literal, or a module-level string constant by name."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.str_constants.get(node.id)
        return None

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if "all" in self.file_suppressed or rule_id in self.file_suppressed:
            return True
        ids = self.suppressed.get(line)
        return bool(ids) and ("all" in ids or rule_id in ids)


class Rule:
    """Base class: subclasses set the metadata and implement :meth:`check`."""

    id: str = ""
    name: str = ""
    summary: str = ""
    #: longer rationale rendered by ``--explain`` and docs
    rationale: str = ""

    def check(self, unit: ModuleUnit, config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self,
        unit: ModuleUnit,
        node: ast.AST,
        message: str,
        extra: Optional[Dict[str, object]] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule_id=self.id,
            rule_name=self.name,
            path=unit.display_path,
            line=line,
            col=col,
            message=message,
            line_text=unit.line_text(line).strip(),
            extra=extra,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and add to the global registry."""
    rule = rule_cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} lacks an id/name")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules, ordered by id (imports the rule pack lazily)."""
    from repro.lint import rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Optional[Rule]:
    """Look up a rule in the per-file registry, then the program pack."""
    from repro.lint import rules  # noqa: F401

    rule = _REGISTRY.get(rule_id)
    if rule is not None:
        return rule
    from repro.lint.program.rules import get_program_rule

    return get_program_rule(rule_id)  # type: ignore[return-value]


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    chosen = all_rules()
    # [] is a real selection (e.g. --select RPL104 picks only program
    # rules, leaving zero per-file ones); only None means "everything"
    if select is not None:
        wanted = set(select)
        unknown = wanted - {r.id for r in chosen}
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
        chosen = [r for r in chosen if r.id in wanted]
    if ignore:
        dropped = set(ignore)
        unknown = dropped - {r.id for r in all_rules()}
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
        chosen = [r for r in chosen if r.id not in dropped]
    return chosen


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def iter_python_files(paths: Iterable[Path]) -> Iterator[Tuple[Path, str]]:
    """Yield ``(path, display_path)`` for every .py file under *paths*."""
    for root in paths:
        root = Path(root)
        if root.is_file():
            if root.suffix == ".py":
                yield root, root.as_posix()
            continue
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            yield path, path.as_posix()


def check_unit(
    unit: ModuleUnit, rules: Sequence[Rule], config: LintConfig
) -> List[Finding]:
    """Run *rules* over one parsed module, applying suppressions."""
    findings: List[Finding] = []
    if unit.parse_error is not None:
        exc = unit.parse_error
        findings.append(
            Finding(
                rule_id=PARSE_ERROR_ID,
                rule_name="parse-error",
                path=unit.display_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
                line_text=unit.line_text(exc.lineno or 1).strip(),
            )
        )
        return findings
    for rule in rules:
        for finding in rule.check(unit, config):
            if unit.is_suppressed(finding.rule_id, finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings


def _lint_file_worker(
    item: Tuple[str, str, Optional[Tuple[str, ...]], LintConfig]
) -> List[Finding]:
    """Process-pool worker: lint one file (module-level, so picklable)."""
    path_str, display, rule_ids, config = item
    path = Path(path_str)
    unit = ModuleUnit(path, display, path.read_text())
    if rule_ids is None:
        chosen: Sequence[Rule] = all_rules()
    else:
        chosen = [r for r in all_rules() if r.id in rule_ids]
    return check_unit(unit, chosen, config)


def run_lint(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    config: Optional[LintConfig] = None,
    jobs: Optional[int] = None,
) -> List[Finding]:
    """Lint every Python file under *paths*; returns ordered findings.

    With ``jobs > 1`` the files are parsed and checked in a process
    pool; results come back in file order, so output is identical to a
    serial run.
    """
    config = config if config is not None else LintConfig()
    chosen = list(rules) if rules is not None else all_rules()
    files = [
        (path, display)
        for path, display in iter_python_files(paths)
        if not any(match_path(display, pat) for pat in config.exclude)
    ]
    findings: List[Finding] = []
    registered = {r.id for r in all_rules()}
    if jobs and jobs > 1 and len(files) > 1 and all(
        r.id in registered for r in chosen
    ):
        from concurrent.futures import ProcessPoolExecutor

        ids = tuple(sorted(r.id for r in chosen))
        items = [(str(path), display, ids, config) for path, display in files]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for batch in pool.map(_lint_file_worker, items, chunksize=4):
                findings.extend(batch)
    else:
        for path, display in files:
            unit = ModuleUnit(path, display, path.read_text())
            findings.extend(check_unit(unit, chosen, config))
    return number_occurrences(findings)
