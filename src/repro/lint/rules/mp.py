"""Multiprocessing-safety rules: RPL006 pool-picklability, RPL007
payload-open-handles.

Pool entry points and worker payloads cross a process boundary by
pickling.  Lambdas, nested functions and bound methods fail at runtime
(or, worse, only under the spawn start method CI does not exercise);
open handles pickle on Linux fork but point at the wrong fd afterwards.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, ModuleUnit, Rule, register

#: pool / executor methods whose first argument is shipped to a worker
_SUBMIT_METHODS = frozenset(
    {
        "submit",
        "map",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "map_async",
        "apply",
        "apply_async",
    }
)

#: annotation substrings that mean "an open handle rode the payload"
_HANDLE_MARKERS = (
    "TextIO",
    "BinaryIO",
    "IO[",
    "RawIOBase",
    "BufferedReader",
    "BufferedWriter",
    "FileIO",
    "socket",
    "Connection",
)


def _pool_like(recv: ast.AST) -> bool:
    """Heuristic: the receiver is a pool/executor object."""
    name = ""
    if isinstance(recv, ast.Name):
        name = recv.id
    elif isinstance(recv, ast.Attribute):
        name = recv.attr
    lowered = name.lower()
    return "pool" in lowered or "executor" in lowered


@register
class PoolPicklabilityRule(Rule):
    """Pool entry points must be module-level (picklable) functions."""

    id = "RPL006"
    name = "pool-picklability"
    summary = "unpicklable callable submitted to a Pool/Executor"
    rationale = (
        "multiprocessing ships the entry point to the worker by pickling "
        "its qualified name: lambdas, functions defined inside another "
        "function, and bound methods either fail immediately under the "
        "spawn start method or silently depend on fork sharing the "
        "parent's memory.  Every callable passed to Pool.map/imap*/"
        "apply* or Executor.submit must be a module-level function."
    )

    def check(self, unit: ModuleUnit, config: LintConfig) -> Iterator[Finding]:
        assert unit.tree is not None
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _SUBMIT_METHODS:
                continue
            if not _pool_like(node.func.value):
                continue
            if not node.args:
                continue
            target = node.args[0]
            message = self._target_violation(target, unit)
            if message is not None:
                yield self.finding(unit, target, message)

    @staticmethod
    def _target_violation(
        target: ast.AST, unit: ModuleUnit
    ) -> Optional[str]:
        if isinstance(target, ast.Lambda):
            return (
                "lambda submitted to a pool; lambdas cannot be pickled — "
                "define a module-level function"
            )
        if isinstance(target, ast.Name):
            if target.id in unit.nested_functions:
                return (
                    f"nested function {target.id!r} submitted to a pool; "
                    "functions defined inside another function cannot be "
                    "pickled — move it to module level"
                )
            if target.id in unit.lambda_names:
                return (
                    f"{target.id!r} is bound to a lambda; lambdas cannot "
                    "be pickled — define a module-level function"
                )
            return None
        if isinstance(target, ast.Attribute):
            root: ast.AST = target
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                resolved = unit.import_aliases.get(root.id)
                if resolved is not None:
                    return None  # module.function: picklable
                if root.id == "self":
                    return (
                        "bound method submitted to a pool; the pickled "
                        "method drags its whole instance across the "
                        "process boundary — use a module-level function "
                        "taking the needed fields"
                    )
            return (
                "attribute callable submitted to a pool; bound methods "
                "pickle their instance (or fail) — use a module-level "
                "function"
            )
        return None


@register
class PayloadOpenHandlesRule(Rule):
    """Worker payload dataclasses must not carry open handles."""

    id = "RPL007"
    name = "payload-open-handles"
    summary = "worker payload dataclass field holds an open handle"
    rationale = (
        "Worker payloads (dataclasses named *Payload / *WorkItem, "
        "config: payload_suffixes) are pickled into the child process. "
        "An open file / socket / pipe field appears to work under fork "
        "but references the wrong (or a closed) descriptor in the "
        "child; ship paths and plain data, reopen inside the worker."
    )

    def check(self, unit: ModuleUnit, config: LintConfig) -> Iterator[Finding]:
        assert unit.tree is not None
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                node.name.endswith(suffix) for suffix in config.payload_suffixes
            ):
                continue
            if not self._is_dataclass(node):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                annotation = ast.unparse(stmt.annotation)
                if any(marker in annotation for marker in _HANDLE_MARKERS):
                    field = (
                        stmt.target.id
                        if isinstance(stmt.target, ast.Name)
                        else ast.unparse(stmt.target)
                    )
                    yield self.finding(
                        unit,
                        stmt,
                        f"payload field {field!r} is annotated "
                        f"{annotation!r}: open handles must not cross the "
                        "process boundary — ship a path and reopen in the "
                        "worker",
                    )

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = (
                target.attr
                if isinstance(target, ast.Attribute)
                else getattr(target, "id", "")
            )
            if name == "dataclass":
                return True
        return False
