"""The rule pack.  Importing this package registers every rule.

Rule id map (stable — ids are never reused):

=======  ====================  ==========================================
id       name                  family
=======  ====================  ==========================================
RPL000   parse-error           (engine-internal: unparseable file)
RPL001   no-print              obs discipline
RPL002   obs-name-catalog      obs discipline
RPL003   unseeded-random       determinism
RPL004   wall-clock            determinism
RPL005   atomic-write          atomic-write discipline
RPL006   pool-picklability     multiprocessing safety
RPL007   payload-open-handles  multiprocessing safety
RPL008   exception-hygiene     exception hygiene
=======  ====================  ==========================================
"""

from repro.lint.rules import (  # noqa: F401  (registration side effects)
    atomicio,
    determinism,
    exceptions,
    mp,
    obs,
)
