"""Obs-discipline rules: RPL001 no-print, RPL002 obs-name-catalog."""

from __future__ import annotations

import ast
import difflib
from typing import Iterator

from repro.lint.catalog import EVENT_NAMES, METRIC_NAMES, NAMESPACES
from repro.lint.config import LintConfig, match_path
from repro.lint.engine import Finding, ModuleUnit, Rule, register
from repro.lint.rules._helpers import emitter_call


@register
class NoPrintRule(Rule):
    """Library code must log through ``repro.obs``, not ``print``."""

    id = "RPL001"
    name = "no-print"
    summary = "bare print() in library code (use repro.obs.events)"
    rationale = (
        "Library modules report through repro.obs (events / metrics / "
        "spans) so output is structured, level-filtered, and capturable. "
        "Only the sanctioned console sinks may print: the CLI's own "
        "stdout output and the experiment runner's artifact printing "
        "(config: print_allowed).  Subsumes ruff T201 and the retired "
        "ad-hoc walker tests/test_no_print.py."
    )

    def check(self, unit: ModuleUnit, config: LintConfig) -> Iterator[Finding]:
        if any(match_path(unit.display_path, p) for p in config.print_allowed):
            return
        assert unit.tree is not None
        for node in ast.walk(unit.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    unit, node, "bare print() in library code (use repro.obs.events)"
                )


@register
class ObsNameCatalogRule(Rule):
    """Metric/event name literals must be registered in the catalog."""

    id = "RPL002"
    name = "obs-name-catalog"
    summary = "unregistered metric/event name passed to an obs emitter"
    rationale = (
        "Counter and event names are the join keys of the whole "
        "observability story: GenerationStats.from_metrics reads "
        "camodel.* counters by exact name, the resilience ledger merges "
        "resilience.* counters by exact name, and a typo today surfaces "
        "only at runtime via stats.unknown_keys — or not at all, as a "
        "counter nobody ever reads.  Every name passed to "
        "Metrics.inc/observe/set_gauge or EventLog.emit/debug/info/"
        "warning/error must appear in repro.lint.catalog (module-level "
        "string constants are resolved; dynamic names are skipped)."
    )

    def check(self, unit: ModuleUnit, config: LintConfig) -> Iterator[Finding]:
        assert unit.tree is not None
        registered = METRIC_NAMES | EVENT_NAMES | set(config.extra_names)
        for node in ast.walk(unit.tree):
            matched = emitter_call(node, unit)
            if matched is None:
                continue
            kind, name_arg = matched
            name = unit.resolve_str_arg(name_arg)
            if name is None:  # dynamic name: out of scope
                continue
            if name in registered:
                continue
            namespace = name.split(".", 1)[0] if "." in name else name
            hint = ""
            close = difflib.get_close_matches(name, sorted(registered), n=1)
            if close:
                hint = f" (did you mean {close[0]!r}?)"
            if "." in name and namespace not in NAMESPACES:
                message = (
                    f"{kind} name {name!r} uses unknown namespace "
                    f"{namespace!r}; registered namespaces: "
                    f"{', '.join(sorted(NAMESPACES))}{hint}"
                )
            else:
                message = (
                    f"{kind} name {name!r} is not registered in "
                    f"repro.lint.catalog{hint}"
                )
            yield self.finding(unit, name_arg, message, extra={"name": name})
