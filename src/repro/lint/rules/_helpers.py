"""Shared AST helpers for the rule pack."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.engine import ModuleUnit

#: methods of repro.obs.Metrics that take a metric name first
METRIC_METHODS = frozenset({"inc", "observe", "set_gauge"})
#: methods of repro.obs.EventLog that take an event name first
EVENT_METHODS = frozenset({"emit", "debug", "info", "warning", "error"})


def walk_with_qualname(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, str]]:
    """Yield every node with the dotted qualname of its enclosing scope.

    The qualname is the chain of enclosing class / function names
    (``RunLedger.open``); module level is the empty string.
    """

    def visit(node: ast.AST, stack: List[str]) -> Iterator[Tuple[ast.AST, str]]:
        qualname = ".".join(stack)
        for child in ast.iter_child_nodes(node):
            yield child, qualname
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from visit(child, stack + [child.name])
            else:
                yield from visit(child, stack)

    yield tree, ""
    yield from visit(tree, [])


def obs_receiver_kind(recv: ast.AST, unit: ModuleUnit) -> Optional[str]:
    """Classify *recv* as an obs handle: 'events', 'metrics', or None.

    Recognized shapes (how this repo reaches the obs registries):

    * ``obs.events()`` / ``events()`` / ``repro.obs.metrics()`` — a call
      whose dotted name ends in ``events`` / ``metrics``;
    * a bare name conventionally bound to one: ``registry`` (metrics),
      ``events`` / ``log`` is *not* assumed — only call-shaped receivers
      and ``registry`` are matched, to keep false positives out of
      unrelated ``.info()`` / ``.error()`` methods.
    """
    if isinstance(recv, ast.Call):
        dotted = unit.dotted_name(recv.func)
        if dotted:
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf == "events":
                return "events"
            if leaf == "metrics":
                return "metrics"
    if isinstance(recv, ast.Name) and recv.id == "registry":
        return "metrics"
    if isinstance(recv, ast.Attribute) and recv.attr in ("events", "metrics"):
        if isinstance(recv.value, ast.Name) and recv.value.id == "self":
            return recv.attr
    return None


def emitter_call(
    node: ast.AST, unit: ModuleUnit
) -> Optional[Tuple[str, ast.AST]]:
    """Match an obs metric/event emission call.

    Returns ``(kind, name_arg_node)`` where kind is ``'metric'`` or
    ``'event'``, or None when *node* is not an emission with at least
    one argument.
    """
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return None
    method = node.func.attr
    if method in METRIC_METHODS:
        wanted = "metrics"
        kind = "metric"
    elif method in EVENT_METHODS:
        wanted = "events"
        kind = "event"
    else:
        return None
    if obs_receiver_kind(node.func.value, unit) != wanted:
        return None
    if not node.args:
        return None
    return kind, node.args[0]


def call_mode_literal(call: ast.Call) -> Optional[str]:
    """The ``mode`` argument of an ``open``-style call, if literal."""
    if len(call.args) >= 2:
        arg = call.args[1]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None
    for kw in call.keywords:
        if kw.arg == "mode":
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, str
            ):
                return kw.value.value
            return None
    return "r"
