"""Exception-hygiene rule: RPL008.

The motivating instance: ``repro.resilience.ledger`` used to swallow
every artifact-validation failure as ``except Exception: return False``
— a corrupt model file and a transient decode bug looked identical, and
neither left a trace anywhere.  Broad handlers are allowed, but they
must do something observable with what they caught.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, ModuleUnit, Rule, register
from repro.lint.rules._helpers import emitter_call

_BROAD = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler, unit: ModuleUnit) -> bool:
    if handler.type is None:  # bare except:
        return True
    dotted = unit.dotted_name(handler.type)
    if dotted is None:
        return False
    return dotted.rsplit(".", 1)[-1] in _BROAD


def _handler_is_observable(handler: ast.ExceptHandler, unit: ModuleUnit) -> bool:
    """True when the handler re-raises, classifies, or emits.

    Classifying means the caught exception's identity flows somewhere:
    a Return of a non-constant expression (an error object, a tuple of
    context), or any use of the bound exception name in the handler
    body (building a record, formatting a message).  Every silent
    swallow — ``pass``, ``return False``, ``continue`` — does neither.
    """
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Return) and node.value is not None:
            # a classified error object (a constructor call, a tuple of
            # context, an existing record) counts; a bare constant
            # (`return False` / `return None`) does not — that is the
            # silent-swallow shape this rule exists for.
            if not isinstance(node.value, ast.Constant):
                return True
        if emitter_call(node, unit) is not None:
            return True
    if handler.name:
        for node in ast.walk(handler):
            if isinstance(node, ast.Name) and node.id == handler.name:
                return True
    return False


@register
class ExceptionHygieneRule(Rule):
    """Broad exception handlers must re-raise, classify, or emit."""

    id = "RPL008"
    name = "exception-hygiene"
    summary = "broad except swallows the failure silently"
    rationale = (
        "`except Exception` is legitimate at classification boundaries "
        "(worker trampolines, artifact validators) but every such "
        "handler must make the failure observable: re-raise it, return "
        "a classified error object (not a bare constant), emit a "
        "structured event through repro.obs.EventLog, or at minimum "
        "bind the exception (`as exc`) and use it — building an error "
        "record counts, dropping it on the floor does not.  Handlers "
        "for *specific* exception types are out of scope — `except "
        "OSError: pass` around a best-effort unlink is fine; it is the "
        "broad catch-alls that turn real bugs into silence."
    )

    def check(self, unit: ModuleUnit, config: LintConfig) -> Iterator[Finding]:
        assert unit.tree is not None
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node, unit):
                continue
            if _handler_is_observable(node, unit):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "<bare>"
            )
            yield self.finding(
                unit,
                node,
                f"except {caught} swallows the failure: re-raise, return a "
                "classified error object, or emit through "
                "repro.obs.EventLog (events().warning(...))",
            )
