"""Atomic-write discipline: RPL005.

Run directories and artifact caches are recovered after SIGKILL by
reading whatever is on disk; a torn half-written JSON file poisons
every later load.  The repository's invariant (docs/resilience.md) is
that every write under those paths goes through the one sanctioned
helper — serialize to a same-directory temp file, then ``os.replace``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig, match_path, site_allowed
from repro.lint.engine import Finding, ModuleUnit, Rule, register
from repro.lint.rules._helpers import call_mode_literal, walk_with_qualname

#: Path methods that write the target in place
_DIRECT_WRITERS = frozenset({"write_text", "write_bytes"})


@register
class AtomicWriteRule(Rule):
    """Artifact-path modules must write through the atomic helper."""

    id = "RPL005"
    name = "atomic-write"
    summary = "direct (non-atomic) file write under a run-dir/artifact path"
    rationale = (
        "Crash recovery (RunLedger.recover, cache reload) trusts that "
        "any file present on disk is complete: every state transition "
        "and artifact write must go through the temp-file + os.replace "
        "helper (repro.camodel.io._write_json_atomic) so a SIGKILL at "
        "any instant leaves either the previous or the next consistent "
        "state, never a torn file.  open(path, 'w'/'a'/'x') and "
        "Path.write_text/write_bytes are therefore banned in the scoped "
        "modules (config: atomic_paths) outside the sanctioned writer "
        "implementations (config: atomic_writers)."
    )

    def check(self, unit: ModuleUnit, config: LintConfig) -> Iterator[Finding]:
        if not any(
            match_path(unit.display_path, p) for p in config.atomic_paths
        ):
            return
        assert unit.tree is not None
        for node, qualname in walk_with_qualname(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._violation(node, unit)
            if message is None:
                continue
            if site_allowed(
                unit.display_path, qualname, config.atomic_writers
            ):
                continue
            yield self.finding(unit, node, message)

    @staticmethod
    def _violation(node: ast.Call, unit: ModuleUnit) -> "str | None":
        # builtin open(path, "w") / path.open("w")
        is_open = isinstance(node.func, ast.Name) and node.func.id == "open"
        is_method_open = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "open"
        )
        if is_open or is_method_open:
            mode = call_mode_literal(node)
            if mode is None:
                return None  # dynamic mode: out of scope
            if any(flag in mode for flag in ("w", "a", "x", "+")):
                return (
                    f"direct open(..., {mode!r}) in an artifact path; "
                    "write through the atomic helper "
                    "(temp file + os.replace, see camodel.io._write_json_atomic)"
                )
            return None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DIRECT_WRITERS
        ):
            return (
                f"Path.{node.func.attr}() writes the target in place; "
                "write through the atomic helper (temp file + os.replace)"
            )
        return None
