"""Determinism rules: RPL003 unseeded-random, RPL004 wall-clock.

Both protect the byte-identity guarantees of PR 3/4: batched results
must equal scalar results, and a killed-and-resumed run must assemble a
library byte-identical to an uninterrupted one.  Neither survives an
unseeded RNG, and the second does not survive wall-clock values leaking
into canonical artifacts.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.config import LintConfig, match_path
from repro.lint.engine import Finding, ModuleUnit, Rule, register
from repro.lint.rules._helpers import walk_with_qualname

#: module-global RNG entry points: banned outright (their state is
#: process-wide and implicitly seeded from the OS)
_GLOBAL_RNG = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.uniform",
        "random.gauss",
        "random.normalvariate",
        "random.getrandbits",
        "random.seed",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
        "numpy.random.seed",
    }
)

#: generator constructors: fine *with* an explicit seed argument
_GENERATORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
    }
)

_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _has_seed(call: ast.Call) -> bool:
    """An explicit seed: any positional arg, or seed=/random_state= kwarg
    (an explicit ``None`` does not count — that is the unseeded path)."""
    for arg in call.args:
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return True
    for kw in call.keywords:
        if kw.arg in ("seed", "random_state"):
            if not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            ):
                return True
    return False


@register
class UnseededRandomRule(Rule):
    """Randomness must flow through an explicitly seeded generator."""

    id = "RPL003"
    name = "unseeded-random"
    summary = "module-global or unseeded RNG use in library code"
    rationale = (
        "Reproducibility of sampled cell sets, forest bootstraps and "
        "tuning splits requires every random draw to come from a "
        "generator constructed with an explicit seed (random.Random(seed), "
        "numpy.random.default_rng(seed)) that is threaded through the "
        "call tree.  The module-global functions (random.random, "
        "numpy.random.rand, ...) share hidden process-wide state and are "
        "banned outright; so is seeding them (random.seed), which still "
        "leaves every other caller entangled in shared state."
    )

    def check(self, unit: ModuleUnit, config: LintConfig) -> Iterator[Finding]:
        assert unit.tree is not None
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = unit.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in _GLOBAL_RNG:
                yield self.finding(
                    unit,
                    node,
                    f"module-global RNG {dotted}() is banned; construct an "
                    "explicitly seeded generator instead "
                    "(numpy.random.default_rng(seed) / random.Random(seed))",
                )
            elif dotted == "random.SystemRandom":
                yield self.finding(
                    unit,
                    node,
                    "random.SystemRandom is entropy-seeded by construction "
                    "and can never reproduce; use random.Random(seed)",
                )
            elif dotted in _GENERATORS and not _has_seed(node):
                yield self.finding(
                    unit,
                    node,
                    f"{dotted}() without an explicit seed/random_state "
                    "draws OS entropy; pass the run's seed through",
                )


@register
class WallClockRule(Rule):
    """No wall-clock reads in canonical-artifact construction paths."""

    id = "RPL004"
    name = "wall-clock"
    summary = "wall-clock read in a canonical-artifact module"
    rationale = (
        "Canonical artifacts (CA model JSON, experiment cache entries, "
        "resumable run checkpoints) are compared and resumed byte-for-"
        "byte: a killed-and-resumed run must assemble a library byte-"
        "identical to an uninterrupted one, so wall-clock values must "
        "never reach artifact bytes.  time.time()/perf_counter()/"
        "datetime.now() are banned outright in the scoped modules "
        "(config: wallclock_paths).  There is deliberately no site "
        "allowlist: modules with *reviewed* timing reads (the run "
        "ledger's `created` stamp) are out of scope here and covered by "
        "the whole-program RPL101 instead, which tracks whether the "
        "value actually reaches hashed or committed bytes."
    )

    def check(self, unit: ModuleUnit, config: LintConfig) -> Iterator[Finding]:
        if not any(
            match_path(unit.display_path, p) for p in config.wallclock_paths
        ):
            return
        assert unit.tree is not None
        for node, qualname in walk_with_qualname(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = self._wallclock_name(node, unit)
            if dotted is None:
                continue
            yield self.finding(
                unit,
                node,
                f"wall-clock read {dotted}() in a canonical-artifact module; "
                "keep real timings in the ledger/obs layer and zero them in "
                "artifact bytes (RPL101 tracks reviewed sites by dataflow "
                "instead of an allowlist)",
            )

    @staticmethod
    def _wallclock_name(node: ast.Call, unit: ModuleUnit) -> Optional[str]:
        dotted = unit.dotted_name(node.func)
        if dotted is None:
            return None
        if dotted in _WALLCLOCK:
            return dotted
        # `from datetime import datetime; datetime.now()` resolves to
        # datetime.datetime.now via from_imports; plain `datetime.now`
        # with `import datetime` is already covered above.
        return None
