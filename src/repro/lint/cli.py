"""The ``python -m repro lint`` subcommand.

Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule/format,
unreadable baseline).  Reports go straight to stdout (this module *is*
a sanctioned console sink — it renders the report the way the text/
JSON/SARIF reporter produced it, with no obs indirection);
``--timings`` writes its one stats line to stderr so the stdout
JSON/SARIF contract is unchanged.

``--program`` adds the whole-program pack (RPL101..RPL106, see
:mod:`repro.lint.program`) to the run: one merged report, one SARIF,
one baseline — program findings ride the same machinery as per-file
ones.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig
from repro.lint.engine import all_rules, get_rule, run_lint, select_rules
from repro.lint.reporters import render

USAGE_ERROR = 2


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RPL0xx",
        help="run only these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RPL0xx",
        help="skip these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE.json",
        help="suppress findings whose fingerprint is in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE.json",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, name, summary) and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RPL0xx",
        help="print one rule's full rationale and exit",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help="also run the whole-program pack (RPL101..RPL106)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="parse/check files with N worker processes",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="program-analysis cache directory "
        "(default: .reprolint-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the program-analysis cache for this run",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print a one-line timing/cache-stats summary to stderr",
    )


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def _split_selection(
    ids: Optional[List[str]], program: bool
) -> Tuple[Optional[List[str]], Optional[List[str]]]:
    """Split rule ids between the per-file and program registries."""
    from repro.lint.program.rules import program_rules

    if ids is None:
        return None, None
    perfile_known = {r.id for r in all_rules()}
    program_known = {r.id for r in program_rules()}
    perfile = [i for i in ids if i in perfile_known]
    prog = [i for i in ids if i in program_known]
    unknown = [i for i in ids if i not in perfile_known | program_known]
    if unknown:
        raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
    if prog and not program:
        raise ValueError(
            f"rule ids {', '.join(sorted(prog))} belong to the "
            "whole-program pack; pass --program"
        )
    return perfile, prog


def run(args: argparse.Namespace) -> int:
    from repro.lint.program.rules import program_rules

    out = sys.stdout
    if args.list_rules:
        for rule in list(all_rules()) + list(program_rules()):
            out.write(f"{rule.id}  {rule.name:<24} {rule.summary}\n")
        return 0
    if args.explain:
        rule = get_rule(args.explain)
        if rule is None:
            sys.stderr.write(f"error: unknown rule {args.explain!r}\n")
            return USAGE_ERROR
        out.write(f"{rule.id} ({rule.name}): {rule.summary}\n\n")
        out.write(rule.rationale + "\n")
        return 0
    try:
        select_perfile, select_prog = _split_selection(
            _split_ids(args.select), args.program
        )
        ignore_perfile, ignore_prog = _split_selection(
            _split_ids(args.ignore), args.program
        )
        rules = select_rules(select_perfile, ignore_perfile)
    except ValueError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return USAGE_ERROR
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        sys.stderr.write(f"error: no such path: {', '.join(missing)}\n")
        return USAGE_ERROR
    config = LintConfig()
    report_rules = list(rules)
    if args.program:
        from repro.lint.program.driver import (
            DEFAULT_CACHE_DIR,
            run_program_lint,
        )

        prog_ids = [
            r.id
            for r in program_rules()
            if (select_prog is None or r.id in set(select_prog))
            and (not ignore_prog or r.id not in set(ignore_prog))
        ]
        findings, stats = run_program_lint(
            [Path(p) for p in args.paths],
            rules,
            config,
            program_rule_ids=prog_ids,
            jobs=args.jobs,
            cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
            use_cache=not args.no_cache,
        )
        report_rules += [r for r in program_rules() if r.id in set(prog_ids)]
        if args.timings:
            sys.stderr.write(stats.render() + "\n")
    else:
        findings = run_lint(
            [Path(p) for p in args.paths], rules, config, jobs=args.jobs
        )
    if args.write_baseline:
        path = write_baseline(args.write_baseline, findings)
        out.write(
            f"wrote baseline with {len(findings)} fingerprint(s) to {path}\n"
        )
        return 0
    baselined = 0
    if args.baseline:
        try:
            fingerprints = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            sys.stderr.write(f"error: cannot read baseline: {exc}\n")
            return USAGE_ERROR
        findings, baselined = apply_baseline(findings, fingerprints)
    report = render(findings, report_rules, args.fmt)
    if report:
        out.write(report + "\n")
    if args.fmt == "text" and baselined:
        out.write(f"({baselined} baselined finding(s) suppressed)\n")
    return 1 if findings else 0
