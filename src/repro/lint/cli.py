"""The ``python -m repro lint`` subcommand.

Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule/format,
unreadable baseline).  Reports go straight to stdout (this module *is*
a sanctioned console sink — it renders the report the way the text/
JSON/SARIF reporter produced it, with no obs indirection).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig
from repro.lint.engine import all_rules, get_rule, run_lint, select_rules
from repro.lint.reporters import render

USAGE_ERROR = 2


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RPL0xx",
        help="run only these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RPL0xx",
        help="skip these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE.json",
        help="suppress findings whose fingerprint is in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE.json",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, name, summary) and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RPL0xx",
        help="print one rule's full rationale and exit",
    )


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def run(args: argparse.Namespace) -> int:
    out = sys.stdout
    if args.list_rules:
        for rule in all_rules():
            out.write(f"{rule.id}  {rule.name:<22} {rule.summary}\n")
        return 0
    if args.explain:
        rule = get_rule(args.explain)
        if rule is None:
            sys.stderr.write(f"error: unknown rule {args.explain!r}\n")
            return USAGE_ERROR
        out.write(f"{rule.id} ({rule.name}): {rule.summary}\n\n")
        out.write(rule.rationale + "\n")
        return 0
    try:
        rules = select_rules(_split_ids(args.select), _split_ids(args.ignore))
    except ValueError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return USAGE_ERROR
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        sys.stderr.write(f"error: no such path: {', '.join(missing)}\n")
        return USAGE_ERROR
    findings = run_lint([Path(p) for p in args.paths], rules, LintConfig())
    if args.write_baseline:
        path = write_baseline(args.write_baseline, findings)
        out.write(
            f"wrote baseline with {len(findings)} fingerprint(s) to {path}\n"
        )
        return 0
    baselined = 0
    if args.baseline:
        try:
            fingerprints = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            sys.stderr.write(f"error: cannot read baseline: {exc}\n")
            return USAGE_ERROR
        findings, baselined = apply_baseline(findings, fingerprints)
    report = render(findings, rules, args.fmt)
    if report:
        out.write(report + "\n")
    if args.fmt == "text" and baselined:
        out.write(f"({baselined} baselined finding(s) suppressed)\n")
    return 1 if findings else 0
