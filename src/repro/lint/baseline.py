"""Baseline files: adopt the linter on a codebase with existing debt.

A baseline is a JSON file of finding fingerprints.  ``--baseline FILE``
filters those findings out of the report (they are *known* debt, not
regressions); ``--write-baseline`` records the current findings so the
gate can be ratcheted: new findings fail CI immediately, old ones are
burned down file by file and disappear from the baseline as they are
fixed (rewrite it with ``--write-baseline`` after a cleanup).

Fingerprints hash the rule id, the offending line *text* and an
occurrence index — not the line number, and (since format 2) not the
path — so a baseline survives edits elsewhere in the file *and* file
moves (see :mod:`repro.lint.findings`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple, Union

from repro.lint.findings import Finding

#: format 2 dropped the path from fingerprints (move-stable baselines)
BASELINE_FORMAT = 2


def write_baseline(
    path: Union[str, Path], findings: Sequence[Finding]
) -> Path:
    path = Path(path)
    payload = {
        "format": BASELINE_FORMAT,
        "fingerprints": sorted({f.fingerprint for f in findings}),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_baseline(path: Union[str, Path]) -> Set[str]:
    data = json.loads(Path(path).read_text())
    if data.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"unsupported baseline format {data.get('format')!r} in {path}"
        )
    return set(data.get("fingerprints", []))


def apply_baseline(
    findings: Sequence[Finding], fingerprints: Set[str]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed_count) against a baseline."""
    fresh = [f for f in findings if f.fingerprint not in fingerprints]
    return fresh, len(findings) - len(fresh)
