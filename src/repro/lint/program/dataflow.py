"""Forward taint analysis with per-function summaries, to a fixpoint.

Taint kinds:

``wallclock``
    values derived from ``time.time()`` / ``datetime.now()`` et al.,
``rng``
    values derived from module-global RNG / OS entropy,
``iterorder``
    values whose *order* depends on set/dict-iteration or directory
    listing order,
``artifactpath``
    values derived from ``artifact_path(...)`` (the RPL104 protocol
    tracker, not a nondeterminism kind).

A function's parameters carry symbolic markers (``P:<name>``) so one
pass yields both concrete flows *and* the transfer summary a caller
needs: which params reach the return value, and which params reach a
sink (with the call chain as a witness).  The engine iterates the whole
program until no summary changes — the lattice is finite and all
transfer functions are monotone, so this terminates; in practice a few
passes suffice because the call graph is shallow.

Everything here is resolution-driven: a call either resolves to a
project function (apply its summary), to an external dotted name
(match against source/sanitizer/sink tables), or is unknown
(conservative argument pass-through).
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.program.graph import Project, Resolution
from repro.lint.rules.determinism import _GLOBAL_RNG, _WALLCLOCK

REAL_KINDS = frozenset({"wallclock", "rng", "iterorder", "artifactpath"})
_NONDET = frozenset({"wallclock", "rng", "iterorder"})

WALLCLOCK_SOURCES = frozenset(_WALLCLOCK)
RNG_SOURCES = frozenset(_GLOBAL_RNG) | frozenset(
    {"os.urandom", "uuid.uuid4", "uuid.uuid1", "secrets.token_hex",
     "secrets.token_bytes"}
)
ITERORDER_SOURCES = frozenset(
    {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
)
#: unresolved-method attrs that list a directory in arbitrary order
ITERORDER_METHODS = frozenset({"iterdir", "glob", "rglob", "scandir"})
#: builtins whose result does not carry its inputs' taint at all
FULL_SANITIZERS = frozenset({"len", "bool", "isinstance", "hasattr", "id"})
#: order-insensitive reductions: clear iteration-order taint only
ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "any", "all"})
#: write-ish leaf names that act as RPL104 artifact-path write sinks
WRITE_SINK_LEAVES = frozenset(
    {"_write_json_atomic", "write_text", "write_bytes", "save_model",
     "save_models"}
)

_CHAIN_CAP = 6


def _match_any(name: str, patterns: Tuple[str, ...]) -> bool:
    return any(fnmatch(name, pat) for pat in patterns)


class Roles:
    """Precompiled semantic-role tables from the LintConfig."""

    def __init__(self, config: LintConfig):
        self.hash_sinks = config.taint_hash_sinks
        self.commit_sinks = config.canonical_commit_sinks
        self.sanitizers = config.taint_sanitizers
        self.telemetry_sinks = config.telemetry_writer_sinks

    def is_sanitizer(self, name: Optional[str]) -> bool:
        return bool(name) and _match_any(name, self.sanitizers)

    def hash_sink(self, name: Optional[str]) -> bool:
        return bool(name) and _match_any(name, self.hash_sinks)

    def commit_sink(self, name: Optional[str]) -> bool:
        return bool(name) and _match_any(name, self.commit_sinks)

    def telemetry_sink(self, name: Optional[str]) -> bool:
        return bool(name) and _match_any(name, self.telemetry_sinks)


class Summary:
    """One function's transfer summary (value-compared for the fixpoint)."""

    __slots__ = (
        "returns",
        "param_returns",
        "param_sinks",
        "sink_hits",
        "raw_reach",
        "telemetry_reach",
    )

    def __init__(self) -> None:
        #: real kinds the return value may carry
        self.returns: FrozenSet[str] = frozenset()
        #: param names whose taint reaches the return value
        self.param_returns: FrozenSet[str] = frozenset()
        #: param name -> {(sink_label, chain)} reached by that param
        self.param_sinks: Dict[str, FrozenSet[Tuple[str, Tuple[str, ...]]]] = {}
        #: local flows of a real kind into a sink:
        #: {(kind, sink_label, line, col, chain)}
        self.sink_hits: FrozenSet[Tuple[str, str, int, int, Tuple[str, ...]]] = (
            frozenset()
        )
        #: terminal raw-write site ("display:line desc") -> witness chain
        self.raw_reach: Dict[str, Tuple[str, ...]] = {}
        #: witness chain to a telemetry-shard writer, if reachable
        self.telemetry_reach: Optional[Tuple[str, ...]] = None

    def state(self) -> Tuple[Any, ...]:
        return (
            self.returns,
            self.param_returns,
            tuple(sorted((k, v) for k, v in self.param_sinks.items())),
            self.sink_hits,
            tuple(sorted(self.raw_reach.items())),
            self.telemetry_reach,
        )


class Analysis:
    """Fixpoint result: summaries plus per-function resolution tables."""

    def __init__(self, project: Project, config: LintConfig):
        self.project = project
        self.config = config
        self.roles = Roles(config)
        #: (display, qual) -> Summary
        self.summaries: Dict[Tuple[str, str], Summary] = {}
        #: (display, qual) -> {call_index: Resolution}
        self.resolutions: Dict[Tuple[str, str], Dict[int, Resolution]] = {}
        #: (display, qual) -> inferred var types
        self.var_types: Dict[Tuple[str, str], Dict[str, Tuple[str, str]]] = {}

    def summary(self, display: str, qual: str) -> Summary:
        return self.summaries.get((display, qual), Summary())


def _better_chain(
    old: Optional[Tuple[str, ...]], new: Tuple[str, ...]
) -> Tuple[str, ...]:
    """Deterministic chain choice: shortest wins, ties lexicographic."""
    if old is None:
        return new
    if (len(new), new) < (len(old), old):
        return new
    return old


def _bind_args(
    callee_fn: Dict[str, Any],
    call: Dict[str, Any],
    taint_of: Dict[str, FrozenSet[str]],
    receiver_binds: bool,
) -> List[Tuple[str, FrozenSet[str]]]:
    """Map this call's argument taints onto the callee's param names."""
    params: List[str] = list(callee_fn.get("params", ()))
    out: List[Tuple[str, FrozenSet[str]]] = []

    def taints(nodes: List[str]) -> FrozenSet[str]:
        acc: FrozenSet[str] = frozenset()
        for node in nodes:
            acc |= taint_of.get(node, frozenset())
        return acc

    offset = 0
    if params and params[0] in ("self", "cls"):
        offset = 1
        if receiver_binds:
            recv_nodes = call["callee"].get("receiver") or []
            out.append((params[0], taints(recv_nodes)))
    for i, arg_nodes in enumerate(call["args"]):
        if offset + i < len(params):
            out.append((params[offset + i], taints(arg_nodes)))
    for kwname, nodes in call["kwargs"].items():
        if kwname in params:
            out.append((kwname, taints(nodes)))
    return [(p, t) for p, t in out if t]


def _analyze_function(
    display: str,
    qual: str,
    fn: Dict[str, Any],
    res_map: Dict[int, Resolution],
    analysis: Analysis,
) -> Summary:
    project = analysis.project
    roles = analysis.roles
    summary = Summary()
    taint: Dict[str, FrozenSet[str]] = {}
    for param in fn.get("params", ()):
        taint[f"p:{param}"] = frozenset({f"P:{param}"})
    for kind, node, _line, _col, _desc in fn.get("sources", ()):
        taint[node] = taint.get(node, frozenset()) | {kind}

    for line, col, desc in fn.get("raw_writes", ()):
        site = f"{display}:{line} {desc}"
        summary.raw_reach[site] = (site,)

    param_sinks: Dict[str, set] = {}
    sink_hits: set = set()

    def record_sink(
        label: str,
        kinds_wanted: FrozenSet[str],
        arg_taint: FrozenSet[str],
        line: int,
        col: int,
        chain: Tuple[str, ...],
    ) -> None:
        for t in arg_taint:
            if t.startswith("P:"):
                entry = (label, chain)
                bucket = param_sinks.setdefault(t[2:], set())
                if len(bucket) < 8:
                    bucket.add(entry)
            elif t in kinds_wanted:
                if len(sink_hits) < 64:
                    sink_hits.add((t, label, line, col + 1, chain))

    for _ in range(12):
        changed = False

        for call in fn.get("calls", ()):
            index = call["index"]
            res = res_map.get(index, Resolution("unknown"))
            node = f"c:{index}"
            arg_union: FrozenSet[str] = frozenset()
            for nodes in call["args"]:
                for dep in nodes:
                    arg_union |= taint.get(dep, frozenset())
            for nodes in call["kwargs"].values():
                for dep in nodes:
                    arg_union |= taint.get(dep, frozenset())
            recv_union: FrozenSet[str] = frozenset()
            for dep in call["callee"].get("receiver") or []:
                recv_union |= taint.get(dep, frozenset())
            everything = arg_union | recv_union
            name = res.name or ""
            leaf = name.rsplit(".", 1)[-1]
            frame = f"{display}:{call['line']} {qual or '<module>'}"
            result: FrozenSet[str] = frozenset()

            if roles.is_sanitizer(name):
                result = frozenset()
            elif res.kind == "external":
                if name in WALLCLOCK_SOURCES:
                    result = frozenset({"wallclock"})
                elif name in RNG_SOURCES:
                    result = frozenset({"rng"})
                elif name in ITERORDER_SOURCES or name == "set":
                    result = everything | {"iterorder"}
                elif name in FULL_SANITIZERS:
                    result = frozenset()
                elif name in ORDER_SANITIZERS:
                    result = everything - {"iterorder"}
                elif leaf == "artifact_path":
                    result = frozenset({"artifactpath"})
                else:
                    result = everything
            elif res.kind == "project":
                callee_fn = project.function(res.ref) if res.ref else None
                callee_sum = (
                    analysis.summaries.get(res.ref.key) if res.ref else None
                )
                if leaf == "artifact_path":
                    result = frozenset({"artifactpath"})
                elif callee_fn is None or callee_sum is None:
                    result = everything
                else:
                    result = frozenset(callee_sum.returns)
                    receiver_binds = call["callee"]["kind"] in (
                        "method",
                        "self_method",
                    )
                    for pname, ptaint in _bind_args(
                        callee_fn, call, taint, receiver_binds
                    ):
                        if pname in callee_sum.param_returns:
                            result |= ptaint
                        for label, chain in callee_sum.param_sinks.get(
                            pname, ()
                        ):
                            if len(chain) >= _CHAIN_CAP:
                                continue
                            wanted = (
                                frozenset({"artifactpath"})
                                if label.startswith("write:")
                                else _NONDET
                            )
                            record_sink(
                                label,
                                wanted,
                                ptaint,
                                call["line"],
                                call["col"],
                                (frame,) + chain,
                            )
                    for site, chain in callee_sum.raw_reach.items():
                        if len(chain) >= _CHAIN_CAP:
                            continue
                        summary.raw_reach[site] = _better_chain(
                            summary.raw_reach.get(site), (frame,) + chain
                        )
                    if callee_sum.telemetry_reach is not None and len(
                        callee_sum.telemetry_reach
                    ) < _CHAIN_CAP:
                        summary.telemetry_reach = _better_chain(
                            summary.telemetry_reach,
                            (frame,) + callee_sum.telemetry_reach,
                        )
            else:  # unknown
                attr = call["callee"].get("attr") or ""
                if attr in ITERORDER_METHODS:
                    result = everything | {"iterorder"}
                elif attr == "artifact_path" or leaf == "artifact_path":
                    result = frozenset({"artifactpath"})
                else:
                    result = everything

            # sinks: both direct (real kind) and symbolic (param marker)
            if roles.hash_sink(name):
                record_sink(
                    f"hash:{name}", _NONDET, everything,
                    call["line"], call["col"], (frame,),
                )
            elif roles.commit_sink(name):
                record_sink(
                    f"commit:{leaf}", _NONDET, everything,
                    call["line"], call["col"], (frame,),
                )
            if leaf in WRITE_SINK_LEAVES or (
                call["callee"].get("attr") in WRITE_SINK_LEAVES
            ):
                record_sink(
                    f"write:{leaf if leaf in WRITE_SINK_LEAVES else call['callee'].get('attr')}",
                    frozenset({"artifactpath"}),
                    everything,
                    call["line"],
                    call["col"],
                    (frame,),
                )
            if roles.telemetry_sink(name) or (
                f"*.{call['callee'].get('attr')}" in analysis.roles.telemetry_sinks
            ):
                summary.telemetry_reach = _better_chain(
                    summary.telemetry_reach, (frame,)
                )

            if result - taint.get(node, frozenset()):
                taint[node] = taint.get(node, frozenset()) | result
                changed = True

        for src, dst in fn.get("edges", ()):
            extra = taint.get(src, frozenset()) - taint.get(dst, frozenset())
            if extra:
                taint[dst] = taint.get(dst, frozenset()) | extra
                changed = True

        if not changed:
            break

    ret = taint.get("ret", frozenset())
    summary.returns = frozenset(t for t in ret if t in REAL_KINDS)
    summary.param_returns = frozenset(
        t[2:] for t in ret if t.startswith("P:")
    )
    summary.param_sinks = {
        p: frozenset(entries) for p, entries in param_sinks.items()
    }
    summary.sink_hits = frozenset(sink_hits)
    return summary


def analyze_project(project: Project, config: LintConfig) -> Analysis:
    """Resolve every call, then iterate summaries to a fixpoint."""
    analysis = Analysis(project, config)
    work: List[Tuple[str, str, Dict[str, Any]]] = []
    for display, qual, fn in project.iter_functions():
        key = (display, qual)
        types = project.infer_var_types(display, fn)
        analysis.var_types[key] = types
        res_map: Dict[int, Resolution] = {}
        for call in fn.get("calls", ()):
            res_map[call["index"]] = project.resolve_call(
                display, fn, call, types
            )
        analysis.resolutions[key] = res_map
        analysis.summaries[key] = Summary()
        work.append((display, qual, fn))

    for _ in range(20):
        changed = False
        for display, qual, fn in work:
            key = (display, qual)
            new = _analyze_function(
                display, qual, fn, analysis.resolutions[key], analysis
            )
            if new.state() != analysis.summaries[key].state():
                analysis.summaries[key] = new
                changed = True
        if not changed:
            break
    return analysis
