"""The interprocedural rule pack: RPL101..RPL106.

Each rule consumes the :class:`~repro.lint.program.dataflow.Analysis`
fixpoint rather than ASTs, so every finding comes with a witness — the
call chain the engine followed — embedded in the message and the
``extra`` payload.  Where the per-file pack scoped risky calls with
``path::qualname`` allowlists, these rules prove or refute the actual
flow, so they need no site allowlists at all (suppression comments
remain available for the rare deliberate violation, e.g. fault
injectors).
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.config import LintConfig, match_path
from repro.lint.findings import Finding
from repro.lint.program.dataflow import Analysis
from repro.lint.program.graph import Project
from repro.lint.rules.mp import _HANDLE_MARKERS

_KIND_LABELS = {
    "wallclock": "wall-clock",
    "rng": "RNG",
    "iterorder": "iteration-order",
}

#: distinctive ledger-mutator names safe for the receiver-name heuristic
#: (generic names like ``open``/``save`` require a resolved RunLedger type)
_DISTINCTIVE_MUTATORS = frozenset(
    {
        "mark_running",
        "mark_done",
        "record_failure",
        "mark_quarantined",
        "recover",
        "requeue_quarantined",
        "write_failure_report",
    }
)

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


class ProgramRule:
    """Base class for whole-program rules (duck-compatible with Rule)."""

    id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, analysis: Analysis) -> Iterator[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(
        self,
        project: Project,
        display: str,
        line: int,
        col: int,
        message: str,
        extra: Optional[Dict[str, object]] = None,
    ) -> Finding:
        return Finding(
            rule_id=self.id,
            rule_name=self.name,
            path=display,
            line=line,
            col=col,
            message=message,
            line_text=project.line_text(display, line).strip(),
            extra=extra,
        )


_PROGRAM_REGISTRY: Dict[str, ProgramRule] = {}


def register_program(rule_cls: type) -> type:
    rule = rule_cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} lacks an id/name")
    if rule.id in _PROGRAM_REGISTRY:
        raise ValueError(f"duplicate program rule id {rule.id}")
    _PROGRAM_REGISTRY[rule.id] = rule
    return rule_cls


def program_rules() -> List[ProgramRule]:
    return [_PROGRAM_REGISTRY[rule_id] for rule_id in sorted(_PROGRAM_REGISTRY)]


def get_program_rule(rule_id: str) -> Optional[ProgramRule]:
    return _PROGRAM_REGISTRY.get(rule_id)


def _chain_text(chain: Tuple[str, ...]) -> str:
    return " -> ".join(chain)


@register_program
class TaintIntoArtifactsRule(ProgramRule):
    """RPL101: nondeterminism must never reach artifact content."""

    id = "RPL101"
    name = "taint-into-artifacts"
    summary = "wall-clock/RNG/iteration-order value reaches a content hash or canonical commit"
    rationale = (
        "Canonical artifacts are compared, resumed and deduplicated "
        "byte-for-byte, and content keys must be pure functions of cell "
        "text and options.  This rule replaces the per-file wall-clock "
        "site allowlists (RPL004's wallclock_allowed) with real "
        "reachability: the taint engine follows wall-clock, module-"
        "global-RNG and set-iteration-order values through assignments, "
        "containers and any number of calls, and reports only flows "
        "that actually arrive at a content-hash call "
        "(config: taint_hash_sinks) or a canonical commit "
        "(config: canonical_commit_sinks).  Sanitizers such as "
        "canonical_model_dict (config: taint_sanitizers), which zero "
        "every nondeterministic field, clear the taint — which is "
        "exactly how the engine proves sites like RunLedger.open's "
        "`created` stamp safe: its value reaches ledger.json only, "
        "never a hash or commit, so no allowlist entry is needed."
    )

    def check(self, analysis: Analysis) -> Iterator[Finding]:
        for (display, qual), summ in sorted(
            analysis.summaries.items()
        ):
            for kind, label, line, col, chain in sorted(summ.sink_hits):
                if kind not in _KIND_LABELS:
                    continue
                what, _, sink = label.partition(":")
                if what not in ("hash", "commit"):
                    continue
                sink_desc = (
                    f"content hash {sink}()"
                    if what == "hash"
                    else f"canonical artifact commit {sink}()"
                )
                yield self.finding(
                    analysis.project,
                    display,
                    line,
                    col,
                    f"{_KIND_LABELS[kind]}-tainted value flows into "
                    f"{sink_desc}; canonicalize (zero the field) before "
                    f"hashing/committing [flow: {_chain_text(chain)}]",
                    extra={"kind": kind, "sink": sink, "chain": list(chain)},
                )


@register_program
class ReachableRawWriteRule(ProgramRule):
    """RPL102: atomic-write discipline must survive helper extraction."""

    id = "RPL102"
    name = "reachable-raw-write"
    summary = "run-dir code path reaches a non-atomic write in an unscoped module"
    rationale = (
        "RPL005 bans raw writes inside the run-dir modules "
        "(config: atomic_paths), but a helper one import away can undo "
        "the guarantee: a scoped module calling into an unscoped module "
        "that does open(..., 'w') tears files on kill just the same.  "
        "This rule follows the call graph from every function in a "
        "scoped module and flags calls whose callee (transitively) "
        "performs a non-atomic write in an *unscoped* module — writes "
        "inside scoped modules stay RPL005's jurisdiction, so the two "
        "rules never double-report.  Fix by routing the write through "
        "the sanctioned atomic writers or moving it behind os.replace."
    )

    def check(self, analysis: Analysis) -> Iterator[Finding]:
        config = analysis.config
        project = analysis.project

        def scoped(display: str) -> bool:
            return any(
                match_path(display, pat) for pat in config.atomic_paths
            )

        seen: Set[Tuple[str, int, str]] = set()
        for (display, qual), res_map in sorted(analysis.resolutions.items()):
            if not scoped(display):
                continue
            fn = project.by_path[display]["functions"].get(qual)
            if fn is None:
                continue
            for call in fn.get("calls", ()):
                res = res_map.get(call["index"])
                if res is None or res.kind != "project" or res.ref is None:
                    continue
                if scoped(res.ref.module):
                    continue
                callee_sum = analysis.summaries.get(res.ref.key)
                if callee_sum is None:
                    continue
                for site, chain in sorted(callee_sum.raw_reach.items()):
                    site_display = site.split(":", 1)[0]
                    if scoped(site_display):
                        continue
                    key = (display, call["line"], site)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        project,
                        display,
                        call["line"],
                        call["col"] + 1,
                        f"call into {res.name}() reaches a non-atomic "
                        f"write at {site} from a run-dir code path; "
                        "route it through an atomic writer "
                        f"[path: {_chain_text(chain)}]",
                        extra={"site": site, "chain": list(chain)},
                    )


@register_program
class TransitivePicklabilityRule(ProgramRule):
    """RPL103: payloads must be picklable all the way down."""

    id = "RPL103"
    name = "transitive-picklability"
    summary = "worker payload field reaches an open handle through nested types"
    rationale = (
        "RPL007 checks the annotation surface of *Payload / *WorkItem "
        "dataclasses, but a handle nested one level down — a payload "
        "holding a Config holding a TextIO — crosses the process "
        "boundary just as unpicklably.  This rule resolves each payload "
        "field's annotated type to its project class and walks the "
        "nested field annotations (config: payload_suffixes names the "
        "payload classes), flagging any open-handle annotation "
        "reachable at depth >= 1; depth 0 stays RPL007's.  Ship paths "
        "and plain data; reopen inside the worker."
    )

    def check(self, analysis: Analysis) -> Iterator[Finding]:
        config = analysis.config
        project = analysis.project
        for display, facts in sorted(project.by_path.items()):
            for cls_name, info in sorted(facts["classes"].items()):
                if not info["is_dataclass"]:
                    continue
                if not any(
                    cls_name.endswith(s) for s in config.payload_suffixes
                ):
                    continue
                for fname, finfo in sorted(info["fields"].items()):
                    chain = self._handle_chain(
                        project, display, finfo["ann"], set(), 0
                    )
                    if chain is None:
                        continue
                    yield self.finding(
                        project,
                        display,
                        finfo["line"],
                        1,
                        f"payload field {cls_name}.{fname} reaches an "
                        "open handle through nested types "
                        f"[{' -> '.join(chain)}]; handles cannot cross "
                        "the process boundary — ship a path and reopen "
                        "in the worker",
                        extra={"chain": list(chain)},
                    )

    def _handle_chain(
        self,
        project: Project,
        display: str,
        annotation: str,
        visited: Set[Tuple[str, str]],
        depth: int,
    ) -> Optional[List[str]]:
        if depth >= 4:
            return None
        for token in _IDENT.findall(annotation):
            cls = project.resolve_class(display, token)
            if cls is None or cls in visited:
                continue
            visited.add(cls)
            info = project.by_path[cls[0]]["classes"].get(cls[1])
            if info is None:
                continue
            for fname, finfo in sorted(info["fields"].items()):
                frame = f"{cls[1]}.{fname}: {finfo['ann']}"
                if any(m in finfo["ann"] for m in _HANDLE_MARKERS):
                    return [frame]
                sub = self._handle_chain(
                    project, cls[0], finfo["ann"], visited, depth + 1
                )
                if sub is not None:
                    return [frame] + sub
        return None


@register_program
class LeaseCommitDisciplineRule(ProgramRule):
    """RPL104: the service's exactly-once protocol, checked."""

    id = "RPL104"
    name = "lease-commit-discipline"
    summary = "service code mutates the ledger or writes artifacts outside the protocol"
    rationale = (
        "The characterization service's exactly-once guarantee rests on "
        "three rules: only the coordinator side mutates the run ledger "
        "(config: ledger_writer_paths; workers read with RunLedger.load "
        "only), every artifact byte lands via commit_artifact's "
        "hardlink-into-CAS rendezvous (config: canonical_commit_sinks), "
        "and commits happen only while a lease claim is held.  This "
        "rule checks all three over the call graph: ledger-mutator "
        "calls (config: ledger_mutators on config: ledger_types) "
        "resolved outside the writer modules, artifact_path-derived "
        "values flowing into any writer other than commit_artifact "
        "inside service modules (config: service_paths), and "
        "commit_artifact calls in functions with no lease in scope "
        "(no lease/claim parameter and no claim()/acquire() call — a "
        "function-level approximation of claim dominance)."
    )

    def check(self, analysis: Analysis) -> Iterator[Finding]:
        config = analysis.config
        project = analysis.project
        ledger_types = set(config.ledger_types)
        mutators = set(config.ledger_mutators)
        dotted_mutators = tuple(
            f"{cls}.{m}" for cls in ledger_types for m in mutators
        )
        for (display, qual), res_map in sorted(analysis.resolutions.items()):
            fn = project.by_path[display]["functions"].get(qual)
            if fn is None:
                continue
            in_service = any(
                match_path(display, pat) for pat in config.service_paths
            )
            may_write_ledger = any(
                match_path(display, pat)
                for pat in config.ledger_writer_paths
            )
            is_commit_impl = any(
                qual.rsplit(".", 1)[-1] == pat.rsplit(".", 1)[-1]
                for pat in config.canonical_commit_sinks
            )
            var_types = analysis.var_types.get((display, qual), {})
            for call in fn.get("calls", ()):
                res = res_map.get(call["index"])
                if res is None:
                    continue
                if not may_write_ledger:
                    mutated = self._ledger_mutation(
                        call, res, var_types, ledger_types, mutators,
                        dotted_mutators,
                    )
                    if mutated:
                        yield self.finding(
                            project,
                            display,
                            call["line"],
                            call["col"] + 1,
                            f"ledger mutation {mutated}() outside the "
                            "coordinator (config: ledger_writer_paths); "
                            "workers must treat the ledger as read-only "
                            "and report through the coordinator",
                        )
                if in_service and not is_commit_impl:
                    if analysis.roles.commit_sink(res.name or "") and not (
                        self._claim_evidence(fn)
                    ):
                        yield self.finding(
                            project,
                            display,
                            call["line"],
                            call["col"] + 1,
                            "commit_artifact() called with no lease claim "
                            "in scope (no lease/claim parameter, no "
                            "claim()/acquire() call); commits are only "
                            "exactly-once while the cell's lease is held",
                        )
            if in_service and not is_commit_impl:
                summ = analysis.summaries.get((display, qual))
                if summ is None:
                    continue
                for kind, label, line, col, chain in sorted(summ.sink_hits):
                    if kind != "artifactpath" or not label.startswith(
                        "write:"
                    ):
                        continue
                    yield self.finding(
                        project,
                        display,
                        line,
                        col,
                        f"artifact path written via {label.split(':', 1)[1]}() "
                        "instead of commit_artifact(); direct writes "
                        "break the exactly-once CAS rendezvous "
                        f"[flow: {_chain_text(chain)}]",
                        extra={"chain": list(chain)},
                    )

    @staticmethod
    def _ledger_mutation(
        call: Dict[str, Any],
        res: Any,
        var_types: Dict[str, Tuple[str, str]],
        ledger_types: Set[str],
        mutators: Set[str],
        dotted_mutators: Tuple[str, ...],
    ) -> Optional[str]:
        attr = call["callee"].get("attr") or ""
        if res.kind == "project" and res.ref is not None:
            qual = res.ref.qual
            if "." in qual:
                cls, _, meth = qual.rpartition(".")
                if cls.rsplit(".", 1)[-1] in ledger_types and meth in mutators:
                    return meth
            return None
        name = res.name or ""
        if any(name.endswith("." + dm) or name == dm for dm in dotted_mutators):
            return name.rsplit(".", 1)[-1]
        if attr in mutators:
            recv = call["callee"].get("recv_name")
            recv_type = var_types.get(recv) if recv else None
            if recv_type is not None and recv_type[1] in ledger_types:
                return attr
            if (
                attr in _DISTINCTIVE_MUTATORS
                and recv
                and (recv == "ledger" or recv.endswith("_ledger"))
            ):
                return attr
        return None

    @staticmethod
    def _claim_evidence(fn: Dict[str, Any]) -> bool:
        for param in fn.get("params", ()):
            if "lease" in param or "claim" in param:
                return True
        for ann in fn.get("param_annotations", {}).values():
            if "Lease" in ann:
                return True
        for call in fn.get("calls", ()):
            attr = call["callee"].get("attr") or (
                call["callee"].get("name") or ""
            ).rsplit(".", 1)[-1]
            if attr in ("claim", "acquire", "heartbeat"):
                return True
        return False


@register_program
class SwallowedTelemetryRule(ProgramRule):
    """RPL105: silent except around telemetry-shard writes."""

    id = "RPL105"
    name = "swallowed-telemetry"
    summary = "broad except silently swallows failures on a telemetry-write path"
    rationale = (
        "Telemetry shards are the only durable record of what a run "
        "did; a `except Exception: pass` wrapped (however indirectly) "
        "around a shard write means a full disk or serialization bug "
        "silently drops the evidence.  RPL008 already demands broad "
        "handlers re-raise or emit; this rule is its interprocedural "
        "sharpening for telemetry: it flags only broad handlers that "
        "neither re-raise nor emit *and* whose try body (transitively) "
        "reaches a shard writer (config: telemetry_writer_sinks), so "
        "ordinary defensive handlers stay unflagged."
    )

    def check(self, analysis: Analysis) -> Iterator[Finding]:
        project = analysis.project
        roles = analysis.roles
        for (display, qual), res_map in sorted(analysis.resolutions.items()):
            fn = project.by_path[display]["functions"].get(qual)
            if fn is None:
                continue
            for handler in fn.get("handlers", ()):
                if handler["raises"] or handler["emits"]:
                    continue
                start, end = handler["try_calls"]
                witness: Optional[Tuple[str, ...]] = None
                for index in range(start, end):
                    call = fn["calls"][index]
                    res = res_map.get(index)
                    if res is None:
                        continue
                    frame = f"{display}:{call['line']} {qual or '<module>'}"
                    attr = call["callee"].get("attr") or ""
                    if roles.telemetry_sink(res.name or "") or (
                        attr and f"*.{attr}" in roles.telemetry_sinks
                    ):
                        witness = (frame,)
                        break
                    if res.kind == "project" and res.ref is not None:
                        callee_sum = analysis.summaries.get(res.ref.key)
                        if (
                            callee_sum is not None
                            and callee_sum.telemetry_reach is not None
                        ):
                            witness = (frame,) + callee_sum.telemetry_reach
                            break
                if witness is None:
                    continue
                yield self.finding(
                    project,
                    display,
                    handler["line"],
                    handler["col"] + 1,
                    "broad except swallows failures on a path that "
                    "writes telemetry shards "
                    f"[{_chain_text(witness)}]; re-raise or emit an "
                    "event so dropped shards leave evidence",
                    extra={"chain": list(witness)},
                )


@register_program
class CatalogLivenessRule(ProgramRule):
    """RPL106: every registered obs name must be emitted somewhere."""

    id = "RPL106"
    name = "catalog-liveness"
    summary = "metric/event name registered in the catalog but never emitted"
    rationale = (
        "RPL002 stops unregistered names at the call site; this is the "
        "inverse: a name registered in the reprolint catalog "
        "(METRIC_NAMES / EVENT_NAMES in */lint/catalog.py) that no "
        "analyzed module ever emits is dead weight — usually a leftover "
        "from a refactor, sometimes a typo'd registration shadowing the "
        "real name.  The rule counts an emission when an obs emitter "
        "call's name argument resolves to the string — literally, "
        "through a module-level constant, or through an imported "
        "constant.  It only activates when a catalog module is inside "
        "the analyzed tree, so linting a subdirectory never "
        "false-positives."
    )

    def check(self, analysis: Analysis) -> Iterator[Finding]:
        project = analysis.project
        catalogs = [
            (display, facts["catalog"])
            for display, facts in sorted(project.by_path.items())
            if facts.get("catalog")
        ]
        if not catalogs:
            return
        used: Set[str] = set(analysis.config.extra_names)
        for display, facts in project.by_path.items():
            for fn in facts["functions"].values():
                for name in fn.get("emit_names", ()):
                    if name.startswith("@"):
                        resolved = self._resolve_constant(project, name[1:])
                        if resolved:
                            used.add(resolved)
                    else:
                        used.add(name)
        for display, decls in catalogs:
            for decl_name, names in sorted(decls.items()):
                for name, line in sorted(names.items()):
                    if name in used:
                        continue
                    yield self.finding(
                        project,
                        display,
                        line,
                        1,
                        f"{decl_name} entry {name!r} is never emitted by "
                        "any analyzed module; remove the registration or "
                        "wire up the emission",
                    )

    @staticmethod
    def _resolve_constant(project: Project, dotted: str) -> Optional[str]:
        display = project._module_prefix(dotted)
        if display is None:
            return None
        facts = project.by_path[display]
        remainder = dotted[len(facts["module"]) :].lstrip(".")
        return facts["constants"].get(remainder)
