"""Whole-program analysis layer for :mod:`repro.lint`.

The per-file rules (RPL001..RPL008) see one :class:`ModuleUnit` at a
time; this package sees the project.  It builds a project-wide symbol
table and import graph (:mod:`repro.lint.program.facts`,
:mod:`repro.lint.program.graph`), a conservative call graph with
annotation-driven method resolution, and a forward taint/dataflow
engine with per-function summaries computed to a fixpoint
(:mod:`repro.lint.program.dataflow`).  The RPL101..RPL106 rule pack
(:mod:`repro.lint.program.rules`) runs on that substrate, and
:mod:`repro.lint.program.driver` orchestrates extraction, caching and
parallel parsing behind ``python -m repro lint --program``.
"""

from repro.lint.program.driver import (  # noqa: F401
    ProgramStats,
    run_program_lint,
)
from repro.lint.program.rules import (  # noqa: F401
    get_program_rule,
    program_rules,
)
