"""Driver for ``python -m repro lint --program``.

Orchestrates: file discovery, per-module fact extraction (optionally
in a process pool, ``--jobs N``), project-graph construction, the
dataflow fixpoint, the RPL101..RPL106 rules, and the two-level
analysis cache.

Cache design (``.reprolint-cache/`` by default, content-addressed):

* ``facts-<key>.json`` — one entry per module, keyed on the module's
  content hash (+ analyzer version + config + per-file rule selection).
  Holds the extracted facts *and* the module's per-file findings, so a
  warm run parses nothing.
* ``program-<key>.json`` — one entry per module, keyed on the module's
  *import-closure* hash.  Editing any module changes the closure hash
  of every transitive importer, so stale interprocedural findings drop
  out along reverse-dependency edges with no invalidation walk.
* ``global-<key>.json`` — the RPL106 catalog-liveness findings, keyed
  on the hash of every module (liveness is a whole-program property).

When every program entry hits, the dataflow fixpoint is skipped
entirely.  A corrupt or truncated entry is treated as a miss and
rewritten — the cache can always be deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.config import LintConfig, match_path
from repro.lint.engine import all_rules, check_unit, iter_python_files
from repro.lint.engine import ModuleUnit
from repro.lint.findings import (
    Finding,
    finding_from_cache_dict,
    finding_to_cache_dict,
    number_occurrences,
)
from repro.lint.program import facts as facts_mod
from repro.lint.program.dataflow import analyze_project
from repro.lint.program.facts import MODULE_BODY
from repro.lint.program.graph import Project, module_name_for
from repro.lint.program.rules import program_rules

DEFAULT_CACHE_DIR = ".reprolint-cache"

# lint.program observability (registered in repro.lint.catalog; the
# RPL106 rule itself keeps these alive)
M_MODULES = "lint.program.modules"
M_CACHE_HITS = "lint.program.cache_hits"
M_CACHE_MISSES = "lint.program.cache_misses"
M_FINDINGS = "lint.program.findings"


@dataclass
class ProgramStats:
    """What one ``--program`` run did (rendered by ``--timings``)."""

    modules: int = 0
    parsed: int = 0
    facts_hits: int = 0
    program_hits: int = 0
    seconds: float = 0.0
    cache_dir: Optional[str] = None
    jobs: int = 1
    extra: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return (
            f"reprolint-program: modules={self.modules} "
            f"parsed={self.parsed} "
            f"facts_cache={self.facts_hits}/{self.modules} "
            f"program_cache={self.program_hits}/{self.modules} "
            f"jobs={self.jobs} seconds={self.seconds:.3f}"
        )


def _config_key(config: LintConfig, rule_ids: Sequence[str]) -> str:
    blob = repr(config) + "|" + ",".join(sorted(rule_ids)) + (
        f"|v{facts_mod.ANALYZER_VERSION}"
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _cache_read(path: Path) -> Optional[Dict[str, Any]]:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    return data


def _cache_write(path: Path, payload: Dict[str, Any]) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except OSError:
        pass  # a cache that cannot be written is just a slow cache


def _package_prefix(root: Path) -> str:
    """Dotted package path *of the scan root itself*.

    Linting ``src/repro/service`` directly must still produce module
    names like ``repro.service.worker`` (what project imports say), so
    walk up from the root while ``__init__.py`` keeps appearing.
    """
    prefix_parts: List[str] = []
    try:
        cur = root.resolve()
        if cur.is_file():
            cur = cur.parent
        while (cur / "__init__.py").is_file():
            prefix_parts.append(cur.name)
            cur = cur.parent
    except OSError:
        return ""
    return ".".join(reversed(prefix_parts))


def _extract_one(
    item: Tuple[str, str, str, LintConfig]
) -> Tuple[str, Dict[str, Any], List[Dict[str, Any]]]:
    """Worker: parse one file -> (display, facts, per-file finding dicts).

    Module-level so ``--jobs`` can ship it to a process pool.  Per-file
    findings are computed with *all* registered rules; selection is a
    cheap post-filter, which keeps cache entries selection-independent.
    """
    fs_path, display, module_name, config = item
    text = Path(fs_path).read_text()
    facts = facts_mod.extract_module_facts(text, display, module_name)
    unit = ModuleUnit(Path(fs_path), display, text)
    findings = check_unit(unit, all_rules(), config)
    return display, facts, [finding_to_cache_dict(f) for f in findings]


def _is_suppressed(facts: Dict[str, Any], rule_id: str, line: int) -> bool:
    file_ids = set(facts.get("file_suppressed", ()))
    if "all" in file_ids or rule_id in file_ids:
        return True
    ids = facts.get("suppressed", {}).get(str(line)) or ()
    return "all" in ids or rule_id in ids


def run_program_lint(
    paths: Sequence[Path],
    rules: Optional[Sequence[Any]] = None,
    config: Optional[LintConfig] = None,
    *,
    program_rule_ids: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
) -> Tuple[List[Finding], ProgramStats]:
    """Run the per-file rules *and* the whole-program pack over *paths*.

    Returns ``(findings, stats)`` with findings ordered by
    ``(path, line, col, rule)`` and occurrence-numbered.  *rules*
    filters the per-file pack; *program_rule_ids* filters RPL101+.
    """
    t0 = time.perf_counter()
    config = config if config is not None else LintConfig()
    perfile_rules = list(rules) if rules is not None else all_rules()
    perfile_ids = {r.id for r in perfile_rules}
    prog_rules = [
        r
        for r in program_rules()
        if program_rule_ids is None or r.id in set(program_rule_ids)
    ]
    stats = ProgramStats(jobs=jobs or 1)

    # -- discovery ----------------------------------------------------
    files: List[Tuple[Path, str, str]] = []
    for root in paths:
        root_str = str(root)
        prefix = _package_prefix(Path(root))
        for path, display in iter_python_files([Path(root)]):
            if any(match_path(display, pat) for pat in config.exclude):
                continue
            name = module_name_for(display, root_str)
            if prefix:
                name = f"{prefix}.{name}" if name != MODULE_BODY else prefix
            files.append((path, display, name))
    stats.modules = len(files)

    cache_root = Path(cache_dir) if (use_cache and cache_dir) else None
    stats.cache_dir = str(cache_root) if cache_root else None
    cfg_key = _config_key(config, sorted({r.id for r in program_rules()}))

    # -- per-module facts + per-file findings -------------------------
    modules: Dict[str, Dict[str, Any]] = {}
    perfile_findings: List[Finding] = []
    misses: List[Tuple[str, str, str, LintConfig]] = []
    hashes: Dict[str, str] = {}
    for path, display, module_name in files:
        digest = facts_mod.content_hash(path.read_bytes())
        hashes[display] = digest
        entry = None
        if cache_root is not None:
            entry = _cache_read(cache_root / f"facts-{cfg_key}-{digest}.json")
            if entry is not None and (
                entry.get("version") != facts_mod.ANALYZER_VERSION
                or "facts" not in entry
                or "findings" not in entry
                or entry["facts"].get("module") != module_name
            ):
                entry = None
        if entry is not None:
            stats.facts_hits += 1
            facts = entry["facts"]
            facts["_fs_path"] = str(path)
            modules[display] = facts
            for item in entry["findings"]:
                finding = finding_from_cache_dict(item)
                if finding.rule_id in perfile_ids or finding.rule_id == "RPL000":
                    perfile_findings.append(finding)
        else:
            misses.append((str(path), display, module_name, config))

    stats.parsed = len(misses)
    if misses:
        if jobs and jobs > 1 and len(misses) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                extracted = list(
                    pool.map(_extract_one, misses, chunksize=4)
                )
        else:
            # the file SET iterated here is sorted upstream and the hash
            # inside is per-file content, not order-sensitive
            extracted = [_extract_one(item) for item in misses]  # reprolint: disable=RPL101
        fs_by_display = {display: fs for fs, display, _, _ in misses}
        for display, facts, finding_dicts in extracted:
            facts["_fs_path"] = fs_by_display[display]
            modules[display] = facts
            for item in finding_dicts:
                finding = finding_from_cache_dict(item)
                if finding.rule_id in perfile_ids or finding.rule_id == "RPL000":
                    perfile_findings.append(finding)
            if cache_root is not None:
                digest = facts["content_hash"]
                payload = {
                    "version": facts_mod.ANALYZER_VERSION,
                    "facts": {
                        k: v for k, v in facts.items() if k != "_fs_path"
                    },
                    "findings": finding_dicts,
                }
                _cache_write(
                    cache_root / f"facts-{cfg_key}-{digest}.json", payload
                )

    project = Project(modules)

    # -- program findings: per-module closure cache -------------------
    program_findings: List[Finding] = []
    prog_ids = [r.id for r in prog_rules]
    pending: List[str] = []
    closure_keys: Dict[str, str] = {}
    global_key = f"{cfg_key}-{project.global_hash()}"
    for display in sorted(modules):
        # closure_hash iterates tuple(sorted(...)) — order-stable by design
        closure_keys[display] = f"{cfg_key}-{project.closure_hash(display)}"  # reprolint: disable=RPL101
    global_entry = (
        _cache_read(cache_root / f"global-{global_key}.json")
        if cache_root is not None
        else None
    )
    cached_program: Dict[str, List[Finding]] = {}
    for display in sorted(modules):
        entry = None
        if cache_root is not None:
            entry = _cache_read(
                cache_root / f"program-{closure_keys[display]}.json"
            )
            if entry is not None and entry.get("display") != display:
                entry = None
        if entry is not None:
            stats.program_hits += 1
            cached_program[display] = [
                finding_from_cache_dict(item) for item in entry["findings"]
            ]
        else:
            pending.append(display)

    if pending or global_entry is None:
        analysis = analyze_project(project, config)
        fresh: Dict[str, List[Finding]] = {d: [] for d in modules}
        global_findings: List[Finding] = []
        for rule in program_rules():
            for finding in rule.check(analysis):
                facts = modules.get(finding.path)
                if facts is not None and _is_suppressed(
                    facts, finding.rule_id, finding.line
                ):
                    continue
                if rule.id == "RPL106":
                    global_findings.append(finding)
                elif finding.path in fresh:
                    fresh[finding.path].append(finding)
        if cache_root is not None:
            for display in pending:
                _cache_write(
                    cache_root / f"program-{closure_keys[display]}.json",
                    {
                        "display": display,
                        "findings": [
                            finding_to_cache_dict(f)
                            for f in fresh[display]
                        ],
                    },
                )
            _cache_write(
                cache_root / f"global-{global_key}.json",
                {
                    "findings": [
                        finding_to_cache_dict(f) for f in global_findings
                    ]
                },
            )
        for display in sorted(modules):
            source = (
                cached_program[display]
                if display in cached_program
                else fresh[display]
            )
            program_findings.extend(source)
        program_findings.extend(global_findings)
    else:
        for display in sorted(modules):
            program_findings.extend(cached_program[display])
        program_findings.extend(
            finding_from_cache_dict(item)
            for item in global_entry.get("findings", ())
        )

    selected_prog = set(prog_ids)
    program_findings = [
        f for f in program_findings if f.rule_id in selected_prog
    ]

    merged = perfile_findings + program_findings
    merged.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    merged = number_occurrences(merged)
    stats.seconds = time.perf_counter() - t0
    stats.extra["findings"] = len(merged)
    _emit_metrics(stats)
    return merged, stats


def _emit_metrics(stats: ProgramStats) -> None:
    try:
        from repro import obs
    except ImportError:  # pragma: no cover - obs is part of this package
        return
    metrics = obs.metrics()
    metrics.inc(M_MODULES, stats.modules)
    metrics.inc(M_CACHE_HITS, stats.facts_hits + stats.program_hits)
    metrics.inc(
        M_CACHE_MISSES,
        (stats.modules - stats.facts_hits)
        + (stats.modules - stats.program_hits),
    )
    metrics.inc(M_FINDINGS, float(stats.extra.get("findings", 0)))
