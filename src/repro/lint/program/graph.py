"""Project graph: module table, import edges, call resolution.

Built from the per-module facts dicts, never from ASTs.  Call
resolution is deliberately *conservative* and only ever follows import
edges — a call either resolves to a project function we have facts
for, stays an external dotted name (``time.time``), or is unknown.
That discipline is what makes per-module caching sound: everything the
analysis can learn about a module is a function of its import closure,
so a cache entry keyed on the closure's content hashes can never go
stale through an unseen edge.

Method calls resolve through the annotated types the strict-mypy wave
put on every signature: a receiver's class comes from its parameter /
``AnnAssign`` annotation, from ``ClassName(...)`` construction, or from
the return annotation of a resolved call (covering the
``RunLedger.load(...)`` classmethod-constructor idiom).
"""

from __future__ import annotations

import hashlib
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.program.facts import MODULE_BODY

#: unwrap one layer of Optional[...] / quoted forward refs
_OPTIONAL = re.compile(r"^Optional\[(.+)\]$")


def _base_type_name(annotation: Optional[str]) -> Optional[str]:
    """``Optional['RunLedger']`` -> ``RunLedger`` (best effort)."""
    if not annotation:
        return None
    ann = annotation.strip().strip("'\"")
    match = _OPTIONAL.match(ann)
    if match:
        ann = match.group(1).strip().strip("'\"")
    if "[" in ann or " " in ann:
        return None
    return ann or None


class FunctionRef:
    """A resolved project function: ``(module, qualname)``."""

    __slots__ = ("module", "qual")

    def __init__(self, module: str, qual: str):
        self.module = module
        self.qual = qual

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module, self.qual)

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.qual}" if self.qual else self.module

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionRef({self.dotted})"


class Resolution:
    """Outcome of resolving one call: project / external / unknown."""

    __slots__ = ("kind", "ref", "name", "result_type")

    def __init__(
        self,
        kind: str,
        ref: Optional[FunctionRef] = None,
        name: Optional[str] = None,
        result_type: Optional[Tuple[str, str]] = None,
    ):
        self.kind = kind  # 'project' | 'external' | 'unknown'
        self.ref = ref
        self.name = name  # dotted external name, or project dotted
        self.result_type = result_type  # (module, ClassName) if known


class Project:
    """All module facts plus the derived graphs."""

    def __init__(self, modules: Dict[str, Dict[str, Any]]):
        #: display path -> facts
        self.by_path = modules
        #: dotted module name -> display path (collisions dropped)
        self.by_name: Dict[str, str] = {}
        collided = set()
        for display, facts in modules.items():
            name = facts["module"]
            if name in self.by_name:
                collided.add(name)
            else:
                self.by_name[name] = display
        for name in collided:
            del self.by_name[name]
        #: module display -> display paths it imports (project-internal)
        self.import_edges: Dict[str, List[str]] = {}
        for display, facts in modules.items():
            targets = set()
            candidates = list(facts["import_modules"])
            candidates.extend(facts["imports"].values())
            for dotted in candidates:
                hit = self._module_prefix(dotted)
                if hit is not None and hit != display:
                    targets.add(hit)
            self.import_edges[display] = sorted(targets)
        self._closure_cache: Dict[str, Tuple[str, ...]] = {}
        self._text_cache: Dict[str, List[str]] = {}

    # -- lookup -------------------------------------------------------
    def _module_prefix(self, dotted: str) -> Optional[str]:
        """Longest module-table prefix of a dotted name, as a display path."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            name = ".".join(parts[:end])
            display = self.by_name.get(name)
            if display is not None:
                return display
        return None

    def facts(self, display: str) -> Dict[str, Any]:
        return self.by_path[display]

    def function(self, ref: FunctionRef) -> Optional[Dict[str, Any]]:
        facts = self.by_path.get(ref.module)
        if facts is None:
            return None
        return facts["functions"].get(ref.qual)

    def iter_functions(self):
        for display, facts in sorted(self.by_path.items()):
            for qual, fn in sorted(facts["functions"].items()):
                yield display, qual, fn

    # -- import closure ----------------------------------------------
    def closure(self, display: str) -> Tuple[str, ...]:
        """Transitive import closure of one module (display paths)."""
        cached = self._closure_cache.get(display)
        if cached is not None:
            return cached
        seen = {display}
        stack = [display]
        while stack:
            for dep in self.import_edges.get(stack.pop(), ()):
                if dep not in seen:
                    seen.add(dep)
                    stack.append(dep)
        out = tuple(sorted(seen))
        self._closure_cache[display] = out
        return out

    def closure_hash(self, display: str) -> str:
        """Hash over the content hashes of the import closure.

        This is the reverse-dependency invalidation mechanism: editing
        any module changes the closure hash of every importer, so their
        cached program findings drop out without a dependency walk.
        """
        # the module's own display leads the blob: modules in an import
        # cycle share one closure *set*, and must not share a cache key
        blob = "\x1f".join(
            [display]
            + [
                f"{dep}={self.by_path[dep]['content_hash']}"
                for dep in self.closure(display)
            ]
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    def global_hash(self) -> str:
        blob = "\x1f".join(
            f"{display}={facts['content_hash']}"
            for display, facts in sorted(self.by_path.items())
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    # -- source lines (for finding text; lazy, content is hash-pinned) --
    def line_text(self, display: str, line: int) -> str:
        lines = self._text_cache.get(display)
        if lines is None:
            try:
                with open(self.by_path[display]["_fs_path"]) as handle:
                    lines = handle.read().splitlines()
            except (OSError, KeyError):
                lines = []
            self._text_cache[display] = lines
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""

    # -- class / type resolution --------------------------------------
    def resolve_class(
        self, display: str, type_name: Optional[str]
    ) -> Optional[Tuple[str, str]]:
        """Resolve a class *name* seen in *display* to (module, Class)."""
        name = _base_type_name(type_name)
        if not name:
            return None
        facts = self.by_path.get(display)
        if facts is None:
            return None
        leaf = name.rsplit(".", 1)[-1]
        if name in facts["classes"] or leaf in facts["classes"]:
            return (display, leaf if leaf in facts["classes"] else name)
        dotted = facts["imports"].get(name.split(".")[0])
        if dotted:
            full = ".".join([dotted] + name.split(".")[1:])
        else:
            full = name
        target = self._module_prefix(full)
        if target is None:
            return None
        remainder = full[len(self.by_path[target]["module"]) :].lstrip(".")
        cls = remainder.split(".")[0] if remainder else ""
        if cls and cls in self.by_path[target]["classes"]:
            return (target, cls)
        return None

    def class_method(
        self, cls: Tuple[str, str], attr: str
    ) -> Optional[FunctionRef]:
        """Find ``Class.attr`` on the class or its (project) bases."""
        seen = set()
        stack = [cls]
        while stack:
            module, name = stack.pop()
            if (module, name) in seen:
                continue
            seen.add((module, name))
            facts = self.by_path.get(module)
            if facts is None:
                continue
            info = facts["classes"].get(name)
            if info is None:
                continue
            qual = f"{info['qualname']}.{attr}"
            if qual in facts["functions"]:
                return FunctionRef(module, qual)
            for base in info["bases"]:
                resolved = self.resolve_class(module, base)
                if resolved:
                    stack.append(resolved)
        return None

    # -- call resolution ----------------------------------------------
    def resolve_dotted(
        self, display: str, dotted: str
    ) -> Resolution:
        """Resolve an alias-expanded dotted name from *display*."""
        target = self._module_prefix(dotted)
        if target is None:
            return Resolution("external", name=dotted)
        target_facts = self.by_path[target]
        remainder = dotted[len(target_facts["module"]) :].lstrip(".")
        if not remainder:
            return Resolution("unknown", name=dotted)
        if remainder in target_facts["functions"]:
            return Resolution(
                "project",
                ref=FunctionRef(target, remainder),
                name=f"{target_facts['module']}.{remainder}",
            )
        parts = remainder.split(".")
        if parts[0] in target_facts["classes"]:
            cls = (target, parts[0])
            if len(parts) == 1:
                # constructor: resolves to __init__ when present
                ref = self.class_method(cls, "__init__")
                return Resolution(
                    "project" if ref else "unknown",
                    ref=ref,
                    name=dotted,
                    result_type=cls,
                )
            method = self.class_method(cls, parts[1])
            if method is not None:
                res = Resolution(
                    "project",
                    ref=method,
                    name=f"{target_facts['module']}.{'.'.join(parts[:2])}",
                )
                fn = self.function(method)
                if fn is not None:
                    res.result_type = self.resolve_class(
                        method.module, fn.get("returns_annotation")
                    )
                return res
        return Resolution("unknown", name=dotted)

    def resolve_call(
        self,
        display: str,
        fn: Dict[str, Any],
        call: Dict[str, Any],
        var_types: Dict[str, Tuple[str, str]],
    ) -> Resolution:
        """Resolve one CallFact from function *fn* in module *display*."""
        callee = call["callee"]
        kind = callee["kind"]
        facts = self.by_path[display]
        if kind == "name":
            name = callee["name"]
            if name in facts["functions"]:
                res = Resolution(
                    "project",
                    ref=FunctionRef(display, name),
                    name=f"{facts['module']}.{name}",
                )
                target = facts["functions"][name]
                res.result_type = self.resolve_class(
                    display, target.get("returns_annotation")
                )
                return res
            if name in facts["classes"]:
                cls = (display, name)
                ref = self.class_method(cls, "__init__")
                return Resolution(
                    "project" if ref else "unknown",
                    ref=ref,
                    name=name,
                    result_type=cls,
                )
            return Resolution("external", name=name)
        if kind == "dotted":
            return self.resolve_dotted(display, callee["name"])
        if kind == "self_method":
            class_name = fn.get("class_name")
            if class_name:
                method = self.class_method((display, class_name), callee["attr"])
                if method is not None:
                    res = Resolution(
                        "project",
                        ref=method,
                        name=f"{facts['module']}.{class_name}.{callee['attr']}",
                    )
                    target = self.function(method)
                    if target is not None:
                        res.result_type = self.resolve_class(
                            method.module, target.get("returns_annotation")
                        )
                    return res
            return Resolution("unknown", name=f"self.{callee['attr']}")
        if kind == "method":
            recv = callee.get("recv_name")
            recv_type = var_types.get(recv) if recv else None
            if recv_type is None and recv:
                # ``RunLedger.load(...)``: the receiver is a class name
                # (same module or imported), not a typed variable
                recv_type = self.resolve_class(display, recv)
                if recv_type is not None and self.class_method(
                    recv_type, callee["attr"]
                ) is None:
                    recv_type = None
            if recv_type is not None:
                method = self.class_method(recv_type, callee["attr"])
                if method is not None:
                    res = Resolution(
                        "project",
                        ref=method,
                        name=(
                            f"{self.by_path[recv_type[0]]['module']}."
                            f"{recv_type[1]}.{callee['attr']}"
                        ),
                    )
                    target = self.function(method)
                    if target is not None:
                        res.result_type = self.resolve_class(
                            method.module, target.get("returns_annotation")
                        )
                    return res
            return Resolution("unknown", name=callee["attr"])
        return Resolution("unknown")

    def infer_var_types(
        self, display: str, fn: Dict[str, Any]
    ) -> Dict[str, Tuple[str, str]]:
        """Local type environment: annotations + constructor results.

        Two passes so a ``ledger = RunLedger.load(...)`` result type is
        available when the later ``ledger.save()`` call resolves.
        """
        types: Dict[str, Tuple[str, str]] = {}
        for var, ann in fn.get("param_annotations", {}).items():
            resolved = self.resolve_class(display, ann)
            if resolved:
                types[var] = resolved
        for var, ann in fn.get("var_annotations", {}).items():
            resolved = self.resolve_class(display, ann)
            if resolved:
                types[var] = resolved
        class_name = fn.get("class_name")
        if class_name and fn.get("params") and fn["params"][0] == "self":
            if class_name in self.by_path[display]["classes"]:
                types["self"] = (display, class_name)
        for _ in range(2):
            for call in fn["calls"]:
                if not call.get("assigns"):
                    continue
                res = self.resolve_call(display, fn, call, types)
                if res.result_type is not None:
                    for var in call["assigns"]:
                        types.setdefault(var, res.result_type)
        return types


def module_name_for(display_path: str, root: str) -> str:
    """Dotted module name for *display_path* under scan root *root*.

    ``src/repro/camodel/io.py`` under root ``src`` -> ``repro.camodel.io``;
    a leading ``src`` segment inside the relative part is stripped too so
    linting ``.`` and linting ``src`` agree.  ``__init__.py`` maps to its
    package.
    """
    rel = display_path
    root = root.rstrip("/")
    if root and root != "." and rel.startswith(root + "/"):
        rel = rel[len(root) + 1 :]
    if rel.startswith("./"):
        rel = rel[2:]
    if rel.startswith("src/"):
        rel = rel[4:]
    if rel.endswith(".py"):
        rel = rel[: -3]
    parts = [p for p in rel.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or MODULE_BODY
