"""Per-module fact extraction: the cacheable IR of the program layer.

One :class:`ModuleFacts` is extracted per source file and is the *only*
thing the whole-program engine ever looks at — never the AST itself.
Facts are plain JSON-serializable dicts and depend on nothing but the
file's text (no config, no other modules), so they can be cached keyed
on the content hash alone and shipped across process boundaries by the
``--jobs`` parallel parser.

The function IR is a coarse dataflow graph over named nodes:

``p:<name>``
    a parameter (``self`` included),
``v:<name>``
    a local or module-level variable (field-insensitive: storing into
    ``obj.attr`` taints ``obj``),
``c:<i>``
    the result of the *i*-th call in the function,
``d:<i>``
    the *i*-th set display / set comprehension (an iteration-order
    taint source),
``ret``
    the return-value accumulator.

Edges mean "taint flows from src to dst".  Calls are kept as structured
:data:`CallFact` records with an *unresolved* callee reference — local
names and alias-expanded dotted names; resolution against the project
happens in :mod:`repro.lint.program.graph` so facts stay per-file pure.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

#: bump to invalidate every cached facts entry
ANALYZER_VERSION = 1

#: methods of repro.obs handles that take a metric/event name first
#: (kept in sync with repro.lint.rules._helpers)
_EMIT_METHODS = frozenset(
    {"inc", "observe", "set_gauge", "emit", "debug", "info", "warning", "error"}
)

#: names whose assignment in a ``*/lint/catalog.py`` module declares the
#: registered-name catalog RPL106 checks liveness of
_CATALOG_DECLS = ("METRIC_NAMES", "EVENT_NAMES")

MODULE_BODY = "<module>"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:24]


def _ann_str(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover
        return None


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else getattr(target, "id", "")
        )
        if name == "dataclass":
            return True
    return False


class _ModuleScan:
    """Module-level tables shared by every function extraction."""

    def __init__(self, tree: ast.Module, module_name: str):
        self.module_name = module_name
        #: local name -> dotted target (both import styles, merged)
        self.imports: Dict[str, str] = {}
        #: dotted modules this module imports (project-graph edges)
        self.import_modules: Set[str] = set()
        #: module-level NAME = "string" assignments
        self.constants: Dict[str, str] = {}
        self._scan(tree)

    def _scan(self, tree: ast.Module) -> None:
        package = self.module_name.rpartition(".")[0]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_modules.add(alias.name)
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level:
                    # relative import: resolve against our package
                    base = self.module_name.split(".")
                    base = base[: len(base) - (node.level - 1) - 1]
                    prefix = ".".join(base)
                    module = f"{prefix}.{module}" if module else prefix
                if not module:
                    continue
                self.import_modules.add(module)
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{module}.{alias.name}"
                    )
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                self.constants[stmt.targets[0].id] = stmt.value.value
        if package:
            self.import_modules.discard(self.module_name)

    def dotted(self, node: ast.AST) -> Optional[str]:
        """``np.random.rand`` -> ``numpy.random.rand`` (or None)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(parts))


class _FunctionScan:
    """Extract one function's dataflow IR."""

    def __init__(
        self,
        scan: _ModuleScan,
        qualname: str,
        node: Optional[ast.AST],
        class_name: Optional[str],
    ):
        self.scan = scan
        self.qualname = qualname
        self.class_name = class_name
        self.params: List[str] = []
        self.param_annotations: Dict[str, str] = {}
        self.var_annotations: Dict[str, str] = {}
        self.returns_annotation: Optional[str] = None
        self.edges: Set[Tuple[str, str]] = set()
        self.calls: List[Dict[str, Any]] = []
        self.sources: List[List[Any]] = []
        self.return_nodes: Set[str] = set()
        self.raw_writes: List[List[Any]] = []
        self.handlers: List[Dict[str, Any]] = []
        self.emit_names: List[str] = []
        self._displays = 0
        self.line = getattr(node, "lineno", 1) if node is not None else 1
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scan_signature(node)
            for stmt in node.body:
                self._stmt(stmt)

    # -- signature ----------------------------------------------------
    def _scan_signature(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        for group in (args.posonlyargs, args.args, args.kwonlyargs):
            for arg in group:
                self.params.append(arg.arg)
                ann = _ann_str(arg.annotation)
                if ann:
                    self.param_annotations[arg.arg] = ann
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                self.params.append(extra.arg)
        self.returns_annotation = _ann_str(
            node.returns  # type: ignore[attr-defined]
        )

    # -- nodes --------------------------------------------------------
    def _var_node(self, name: str) -> str:
        return f"p:{name}" if name in self.params else f"v:{name}"

    def _target_nodes(self, target: ast.AST) -> List[str]:
        if isinstance(target, ast.Name):
            return [self._var_node(target.id)]
        if isinstance(target, (ast.Tuple, ast.List)):
            out: List[str] = []
            for elt in target.elts:
                out.extend(self._target_nodes(elt))
            return out
        if isinstance(target, ast.Starred):
            return self._target_nodes(target.value)
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            # field-insensitive: a store into obj.attr / obj[k] taints obj
            return self.deps(target.value)
        return []

    # -- expressions --------------------------------------------------
    def deps(self, expr: Optional[ast.AST]) -> List[str]:
        if expr is None:
            return []
        if isinstance(expr, ast.Name):
            return [self._var_node(expr.id)]
        if isinstance(expr, ast.Constant):
            return []
        if isinstance(expr, ast.Call):
            return [self._call(expr)]
        if isinstance(expr, ast.Attribute):
            return self.deps(expr.value)
        if isinstance(expr, ast.Subscript):
            return self.deps(expr.value) + self.deps(expr.slice)
        if isinstance(expr, (ast.Set,)):
            node = f"d:{self._displays}"
            self._displays += 1
            self.sources.append(
                ["iterorder", node, expr.lineno, expr.col_offset, "set display"]
            )
            for elt in expr.elts:
                for dep in self.deps(elt):
                    self.edges.add((dep, node))
            return [node]
        if isinstance(expr, ast.SetComp):
            node = f"d:{self._displays}"
            self._displays += 1
            self.sources.append(
                [
                    "iterorder",
                    node,
                    expr.lineno,
                    expr.col_offset,
                    "set comprehension",
                ]
            )
            for dep in self._comprehension_deps(expr, [expr.elt]):
                self.edges.add((dep, node))
            return [node]
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            return self._comprehension_deps(expr, [expr.elt])
        if isinstance(expr, ast.DictComp):
            return self._comprehension_deps(expr, [expr.key, expr.value])
        if isinstance(expr, ast.Lambda):
            return []
        if isinstance(expr, ast.NamedExpr):
            val = self.deps(expr.value)
            targets = self._target_nodes(expr.target)
            for dep in val:
                for tgt in targets:
                    self.edges.add((dep, tgt))
            return targets or val
        out: List[str] = []
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, (ast.expr, ast.keyword)):
                value = child.value if isinstance(child, ast.keyword) else child
                out.extend(self.deps(value))
        return out

    def _comprehension_deps(
        self, comp: ast.AST, elements: Sequence[Optional[ast.AST]]
    ) -> List[str]:
        for gen in comp.generators:  # type: ignore[attr-defined]
            iter_deps = self.deps(gen.iter)
            for tgt in self._target_nodes(gen.target):
                for dep in iter_deps:
                    self.edges.add((dep, tgt))
            for cond in gen.ifs:
                self.deps(cond)
        out: List[str] = []
        for element in elements:
            out.extend(self.deps(element))
        return out

    # -- calls --------------------------------------------------------
    def _callee_ref(self, func: ast.AST) -> Dict[str, Any]:
        if isinstance(func, ast.Name):
            name = func.id
            dotted = self.scan.imports.get(name)
            if dotted:
                return {"kind": "dotted", "name": dotted}
            return {"kind": "name", "name": name}
        if isinstance(func, ast.Attribute):
            root: ast.AST = func
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                if root.id == "self":
                    if isinstance(func.value, ast.Name):
                        return {"kind": "self_method", "attr": func.attr}
                    return {
                        "kind": "method",
                        "attr": func.attr,
                        "receiver": self.deps(func.value),
                        "recv_name": None,
                    }
                if root.id in self.scan.imports:
                    dotted = self.scan.dotted(func)
                    if dotted:
                        return {"kind": "dotted", "name": dotted}
            # a call through a local/param/global object: keep the
            # receiver nodes so its taint and inferred type survive
            recv = self.deps(func.value)
            recv_name = None
            if isinstance(func.value, ast.Name):
                recv_name = func.value.id
            elif isinstance(func.value, ast.Attribute):
                recv_name = func.value.attr
            return {
                "kind": "method",
                "attr": func.attr,
                "receiver": recv,
                "recv_name": recv_name,
            }
        return {"kind": "opaque", "deps": self.deps(func)}

    def _call(self, call: ast.Call) -> str:
        index = len(self.calls)
        node = f"c:{index}"
        # reserve the slot first so nested calls get higher indices but
        # the outer call keeps evaluation order in the window ranges
        fact: Dict[str, Any] = {"index": index}
        self.calls.append(fact)
        callee = self._callee_ref(call.func)
        args = [self.deps(arg) for arg in call.args]
        kwargs = {
            kw.arg: self.deps(kw.value)
            for kw in call.keywords
            if kw.arg is not None
        }
        for kw in call.keywords:
            if kw.arg is None:  # **kwargs splat
                for dep in self.deps(kw.value):
                    kwargs.setdefault("**", []).append(dep)
        arg_texts = [_ann_str(arg) or "" for arg in call.args]
        fact.update(
            {
                "line": call.lineno,
                "col": call.col_offset,
                "callee": callee,
                "args": args,
                "kwargs": kwargs,
                "arg_texts": arg_texts,
                "assigns": [],
            }
        )
        self._detect_raw_write(call, callee)
        self._detect_emit(call, callee)
        return node

    def _detect_raw_write(
        self, call: ast.Call, callee: Dict[str, Any]
    ) -> None:
        """RPL005-shaped non-atomic write sites (scope applied rule-time)."""
        name = callee.get("name") or callee.get("attr") or ""
        leaf = name.rsplit(".", 1)[-1]
        if leaf in ("write_text", "write_bytes"):
            self.raw_writes.append(
                [call.lineno, call.col_offset, f"{leaf}()"]
            )
            return
        if leaf == "open":
            mode = self._mode_literal(call)
            if mode and any(ch in mode for ch in "wax+"):
                self.raw_writes.append(
                    [call.lineno, call.col_offset, f"open(mode={mode!r})"]
                )

    @staticmethod
    def _mode_literal(call: ast.Call) -> Optional[str]:
        if len(call.args) >= 2:
            arg = call.args[1]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
            return None
        for kw in call.keywords:
            if kw.arg == "mode":
                if isinstance(kw.value, ast.Constant) and isinstance(
                    kw.value.value, str
                ):
                    return kw.value.value
                return None
        return "r"

    def _detect_emit(self, call: ast.Call, callee: Dict[str, Any]) -> None:
        attr = callee.get("attr") or (callee.get("name") or "").rsplit(
            ".", 1
        )[-1]
        if attr not in _EMIT_METHODS or not call.args:
            return
        arg = call.args[0]
        name: Optional[str] = None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
        elif isinstance(arg, ast.Name):
            name = self.scan.constants.get(arg.id)
            if name is None and arg.id in self.scan.imports:
                # imported constant: record its dotted name for the
                # RPL106 rule to resolve against the defining module
                name = "@" + self.scan.imports[arg.id]
        elif isinstance(arg, ast.Attribute):
            dotted = self.scan.dotted(arg)
            if dotted:
                name = "@" + dotted
        if name:
            self.emit_names.append(name)

    # -- statements ---------------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are extracted as their own functions
        if isinstance(stmt, ast.Assign):
            deps = self.deps(stmt.value)
            assigned = self._assigned_names(stmt.targets)
            self._record_assigns(deps, assigned)
            for target in stmt.targets:
                for tgt in self._target_nodes(target):
                    for dep in deps:
                        self.edges.add((dep, tgt))
        elif isinstance(stmt, ast.AnnAssign):
            ann = _ann_str(stmt.annotation)
            if isinstance(stmt.target, ast.Name) and ann:
                self.var_annotations[stmt.target.id] = ann
            if stmt.value is not None:
                deps = self.deps(stmt.value)
                assigned = self._assigned_names([stmt.target])
                self._record_assigns(deps, assigned)
                for tgt in self._target_nodes(stmt.target):
                    for dep in deps:
                        self.edges.add((dep, tgt))
        elif isinstance(stmt, ast.AugAssign):
            deps = self.deps(stmt.value)
            for tgt in self._target_nodes(stmt.target):
                for dep in deps:
                    self.edges.add((dep, tgt))
        elif isinstance(stmt, ast.Return):
            for dep in self.deps(stmt.value):
                self.edges.add((dep, "ret"))
                self.return_nodes.add(dep)
        elif isinstance(stmt, ast.Expr):
            self.deps(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_deps = self.deps(stmt.iter)
            for tgt in self._target_nodes(stmt.target):
                for dep in iter_deps:
                    self.edges.add((dep, tgt))
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
        elif isinstance(stmt, (ast.While, ast.If)):
            self.deps(stmt.test)
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                deps = self.deps(item.context_expr)
                if item.optional_vars is not None:
                    for tgt in self._target_nodes(item.optional_vars):
                        for dep in deps:
                            self.edges.add((dep, tgt))
            for child in stmt.body:
                self._stmt(child)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        elif isinstance(stmt, ast.Raise):
            self.deps(stmt.exc)
            self.deps(stmt.cause)
        elif isinstance(stmt, ast.Assert):
            self.deps(stmt.test)
            self.deps(stmt.msg)
        elif isinstance(stmt, (ast.Delete, ast.Global, ast.Nonlocal, ast.Pass)):
            pass
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._stmt(child)
                elif isinstance(child, ast.expr):
                    self.deps(child)

    def _assigned_names(self, targets: Sequence[ast.AST]) -> List[str]:
        names: List[str] = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.extend(self._assigned_names(target.elts))
        return names

    def _record_assigns(self, deps: List[str], names: List[str]) -> None:
        """Bind call-result nodes to the vars they land in (for typing)."""
        if not names:
            return
        for dep in deps:
            if dep.startswith("c:"):
                self.calls[int(dep[2:])]["assigns"] = list(names)

    def _try(self, stmt: ast.Try) -> None:
        call_start = len(self.calls)
        for child in stmt.body:
            self._stmt(child)
        call_end = len(self.calls)
        for handler in stmt.handlers:
            broad = self._is_broad(handler.type)
            h_start = len(self.calls)
            raises = False
            for child in handler.body:
                self._stmt(child)
            for inner in handler.body:
                for node in ast.walk(inner):
                    if isinstance(node, ast.Raise):
                        raises = True
            h_end = len(self.calls)
            emits = any(
                self._call_is_emit(i) for i in range(h_start, h_end)
            )
            if broad:
                self.handlers.append(
                    {
                        "line": handler.lineno,
                        "col": handler.col_offset,
                        "raises": raises,
                        "emits": emits,
                        "try_calls": [call_start, call_end],
                        "handler_calls": h_end - h_start,
                    }
                )
        for child in stmt.orelse + stmt.finalbody:
            self._stmt(child)

    def _call_is_emit(self, index: int) -> bool:
        callee = self.calls[index]["callee"]
        attr = callee.get("attr") or (callee.get("name") or "").rsplit(
            ".", 1
        )[-1]
        return attr in _EMIT_METHODS

    def _is_broad(self, type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        dotted = self.scan.dotted(type_node)
        return dotted in ("Exception", "BaseException", "builtins.Exception")

    # -- output -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "class_name": self.class_name,
            "params": self.params,
            "param_annotations": self.param_annotations,
            "var_annotations": self.var_annotations,
            "returns_annotation": self.returns_annotation,
            "edges": sorted(self.edges),
            "calls": self.calls,
            "sources": self.sources,
            "return_nodes": sorted(self.return_nodes),
            "raw_writes": self.raw_writes,
            "handlers": self.handlers,
            "emit_names": self.emit_names,
        }


def _scan_suppressions(
    text: str,
) -> Tuple[Dict[str, List[str]], List[str]]:
    """Same comment-token scan the per-file engine does (JSON-keyed).

    Program findings honor the exact same ``# reprolint: disable=...``
    directives; keys are stringified line numbers so the tables survive
    a JSON cache round-trip unchanged.
    """
    import io
    import tokenize

    from repro.lint.engine import _SUPPRESS

    suppressed: Dict[str, List[str]] = {}
    file_suppressed: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS.search(tok.string)
        if not match:
            continue
        kind = match.group(1)
        ids = {p.strip() for p in match.group(2).split(",") if p.strip()}
        if kind == "disable-file":
            file_suppressed |= ids
        else:
            line = tok.start[0] + (1 if kind == "disable-next-line" else 0)
            bucket = suppressed.setdefault(str(line), [])
            bucket.extend(sorted(ids - set(bucket)))
    return suppressed, sorted(file_suppressed)


def _catalog_decl(tree: ast.Module) -> Optional[Dict[str, Dict[str, int]]]:
    """Parse METRIC_NAMES/EVENT_NAMES frozenset declarations, if any."""
    decls: Dict[str, Dict[str, int]] = {}
    for stmt in tree.body:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id in _CATALOG_DECLS
        ):
            continue
        value = stmt.value
        names: Dict[str, int] = {}
        for node in ast.walk(value):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                names[node.value] = node.lineno
        decls[stmt.targets[0].id] = names
    return decls or None


def extract_module_facts(
    text: str,
    display_path: str,
    module_name: str,
) -> Dict[str, Any]:
    """Extract one module's facts dict (see module docstring).

    On a syntax error the dict carries ``parse_error`` and empty tables
    — the per-file layer owns reporting RPL000; the program layer just
    skips the module.
    """
    digest = content_hash(text.encode())
    suppressed, file_suppressed = _scan_suppressions(text)
    base: Dict[str, Any] = {
        "version": ANALYZER_VERSION,
        "module": module_name,
        "display_path": display_path,
        "content_hash": digest,
        "imports": {},
        "import_modules": [],
        "functions": {},
        "classes": {},
        "constants": {},
        "catalog": None,
        "suppressed": suppressed,
        "file_suppressed": file_suppressed,
        "parse_error": None,
    }
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        base["parse_error"] = {
            "line": exc.lineno or 1,
            "col": (exc.offset or 0),
            "msg": exc.msg or "syntax error",
        }
        return base
    scan = _ModuleScan(tree, module_name)
    base["imports"] = dict(scan.imports)
    base["import_modules"] = sorted(scan.import_modules)
    base["constants"] = dict(scan.constants)
    base["catalog"] = _catalog_decl(tree)

    functions: Dict[str, Dict[str, Any]] = {}
    classes: Dict[str, Dict[str, Any]] = {}

    def visit(
        body: Sequence[ast.stmt], prefix: str, class_name: Optional[str]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                fn = _FunctionScan(scan, qual, stmt, class_name)
                functions[qual] = fn.to_dict()
                visit(stmt.body, f"{qual}.", None)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}{stmt.name}"
                fields: Dict[str, Any] = {}
                methods: List[str] = []
                for item in stmt.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        ann = _ann_str(item.annotation)
                        if ann:
                            fields[item.target.id] = {
                                "ann": ann,
                                "line": item.lineno,
                            }
                    elif isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        methods.append(f"{qual}.{item.name}")
                classes[stmt.name if not prefix else qual] = {
                    "qualname": qual,
                    "line": stmt.lineno,
                    "bases": [
                        b for b in (scan.dotted(base_) for base_ in stmt.bases)
                        if b
                    ],
                    "is_dataclass": _is_dataclass_def(stmt),
                    "fields": fields,
                    "methods": methods,
                }
                visit(stmt.body, f"{qual}.", stmt.name)

    visit(tree.body, "", None)

    # module-level statements form a pseudo-function so module-scope
    # flows (common in scripts and fixtures) are analyzed too
    module_fn = _FunctionScan(scan, MODULE_BODY, None, None)
    for stmt in tree.body:
        module_fn._stmt(stmt)
    functions[MODULE_BODY] = module_fn.to_dict()

    base["functions"] = functions
    base["classes"] = classes
    return base
