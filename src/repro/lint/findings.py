"""Finding record and stable fingerprints.

A finding is one rule violation at one source location.  Its
*fingerprint* is what the baseline mechanism stores: a hash over the
rule id, the normalized text of the offending line, and the occurrence
index of that (rule, line text) pair across the whole run.  Line
*numbers* are deliberately excluded so a baseline survives unrelated
edits above the finding, and the *path* is excluded so moving a file
(a display-path change only) does not orphan its baseline entries.
The occurrence index keeps identical offending lines distinguishable;
because it is assigned globally, the *set* of fingerprints produced by
a run is invariant under file renames (the multiset of offending lines
is unchanged, so the numbering 0..k-1 is too, whichever files the
lines now live in).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    rule_name: str
    path: str  # posix path as given on the command line
    line: int  # 1-based
    col: int  # 1-based (SARIF convention)
    message: str
    #: normalized source text of the offending line ('' if unavailable)
    line_text: str = ""
    #: disambiguates identical (rule, line_text) pairs within one file
    occurrence: int = 0
    #: optional extra structured context for the JSON reporter
    extra: Optional[Dict[str, object]] = field(default=None, compare=False)

    @property
    def fingerprint(self) -> str:
        blob = "\x1f".join(
            (self.rule_id, self.line_text.strip(), str(self.occurrence))
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:20]

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "name": self.rule_name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def number_occurrences(findings: List[Finding]) -> List[Finding]:
    """Assign occurrence indices so identical findings fingerprint apart.

    Numbering is global across the run (not per file): the fingerprint
    omits the path, so keying occurrences on ``(rule, line text)`` alone
    keeps the run's fingerprint *set* stable when a file moves.
    """
    seen: Dict[object, int] = {}
    out: List[Finding] = []
    for f in findings:
        key = (f.rule_id, f.line_text.strip())
        index = seen.get(key, 0)
        seen[key] = index + 1
        if index != f.occurrence:
            f = replace(f, occurrence=index)
        out.append(f)
    return out


def finding_to_cache_dict(f: Finding) -> Dict[str, object]:
    """Full round-trippable form (unlike :meth:`Finding.to_dict`)."""
    out: Dict[str, object] = {
        "rule_id": f.rule_id,
        "rule_name": f.rule_name,
        "path": f.path,
        "line": f.line,
        "col": f.col,
        "message": f.message,
        "line_text": f.line_text,
        "occurrence": f.occurrence,
    }
    if f.extra:
        out["extra"] = dict(f.extra)
    return out


def finding_from_cache_dict(data: Dict[str, object]) -> Finding:
    return Finding(
        rule_id=str(data["rule_id"]),
        rule_name=str(data["rule_name"]),
        path=str(data["path"]),
        line=int(data["line"]),  # type: ignore[arg-type]
        col=int(data["col"]),  # type: ignore[arg-type]
        message=str(data["message"]),
        line_text=str(data.get("line_text", "")),
        occurrence=int(data.get("occurrence", 0)),  # type: ignore[arg-type]
        extra=data.get("extra"),  # type: ignore[arg-type]
    )
