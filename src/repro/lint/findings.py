"""Finding record and stable fingerprints.

A finding is one rule violation at one source location.  Its
*fingerprint* is what the baseline mechanism stores: a hash over the
rule id, the file's path relative to the lint root, the normalized text
of the offending line, and the occurrence index of that (rule, line
text) pair within the file.  Line *numbers* are deliberately excluded so
a baseline survives unrelated edits above the finding; the occurrence
index keeps two identical offending lines distinguishable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    rule_name: str
    path: str  # posix path as given on the command line
    line: int  # 1-based
    col: int  # 1-based (SARIF convention)
    message: str
    #: normalized source text of the offending line ('' if unavailable)
    line_text: str = ""
    #: disambiguates identical (rule, line_text) pairs within one file
    occurrence: int = 0
    #: optional extra structured context for the JSON reporter
    extra: Optional[Dict[str, object]] = field(default=None, compare=False)

    @property
    def fingerprint(self) -> str:
        blob = "\x1f".join(
            (self.rule_id, self.path, self.line_text.strip(), str(self.occurrence))
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:20]

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "name": self.rule_name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def number_occurrences(findings: List[Finding]) -> List[Finding]:
    """Assign occurrence indices so identical findings fingerprint apart."""
    seen: Dict[object, int] = {}
    out: List[Finding] = []
    for f in findings:
        key = (f.rule_id, f.path, f.line_text.strip())
        index = seen.get(key, 0)
        seen[key] = index + 1
        if index != f.occurrence:
            f = Finding(
                rule_id=f.rule_id,
                rule_name=f.rule_name,
                path=f.path,
                line=f.line,
                col=f.col,
                message=f.message,
                line_text=f.line_text,
                occurrence=index,
                extra=f.extra,
            )
        out.append(f)
    return out
