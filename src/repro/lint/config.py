"""Lint configuration: path scopes and allowlists for the rule pack.

The defaults encode *this repository's* invariants — which modules
construct canonical artifacts, which console sinks may print, which
function is the one sanctioned atomic writer.  Patterns are matched
with :func:`fnmatch.fnmatch` against the posix form of each file's
path, so ``*/resilience/*`` scopes both ``src/repro/resilience/...``
in a real run and ``tests/lint_corpus/resilience/...`` in the fixture
corpus (the corpus mirrors the scoped directory names on purpose).

Site allowlists use ``<path-pattern>::<qualname>`` — e.g.
``*/camodel/io.py::_write_json_atomic`` sanctions the raw write inside
the one blessed atomic-writer implementation.  The whole-program pack
(``repro.lint.program``) deliberately has *no* site allowlists: its
fields below declare semantic roles (sinks, sanitizers, protocol
parties) and the dataflow engine proves what reaches them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fnmatch import fnmatch
from typing import Tuple


def match_path(path: str, pattern: str) -> bool:
    """fnmatch on posix paths, also accepting bare-suffix patterns."""
    return fnmatch(path, pattern) or fnmatch(path, "*/" + pattern)


def site_allowed(
    path: str, qualname: str, allowlist: Tuple[str, ...]
) -> bool:
    """True when ``path::qualname`` matches a sanctioned-site entry.

    Used for *implementation* roles (the atomic writer helpers are the
    one place allowed to write non-atomically).  The qualname side
    matches exactly, or as a prefix so nested helpers are covered.
    """
    for entry in allowlist:
        pattern, _, allowed_qual = entry.partition("::")
        if not match_path(path, pattern):
            continue
        if not allowed_qual or qualname == allowed_qual:
            return True
        if qualname.startswith(allowed_qual + "."):
            return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Path scopes and allowlists consumed by the rule pack."""

    #: paths never linted (match against the full posix path)
    exclude: Tuple[str, ...] = ("*/__pycache__/*",)

    # -- RPL001 no-print -------------------------------------------------
    #: the sanctioned console sinks (mirrors ruff T201 per-file-ignores)
    print_allowed: Tuple[str, ...] = (
        "*/repro/cli.py",
        "*/repro/experiments/runner.py",
    )

    # -- RPL002 obs-name-catalog ----------------------------------------
    #: extra registered names (tests / corpus add theirs here)
    extra_names: Tuple[str, ...] = ()

    # -- RPL003 unseeded-random ------------------------------------------
    #: nothing to configure: seeded generator objects are always the fix

    # -- RPL004 wall-clock -----------------------------------------------
    #: modules reachable from canonical-artifact construction.  The
    #: ledger is deliberately *not* listed: the whole-program pack's
    #: RPL101 tracks its wall-clock reads by dataflow instead, and has
    #: proven that ``RunLedger.open``'s ``created`` stamp only ever
    #: reaches ``ledger.json`` (not canonical) — the old
    #: ``RunLedger.open`` site allowlist is retired.
    wallclock_paths: Tuple[str, ...] = (
        "*/camodel/io.py",
        "*/camodel/merge.py",
        "*/camodel/model.py",
        "*/experiments/cache.py",
    )

    # -- RPL005 atomic-write ---------------------------------------------
    #: run-dir / artifact code paths where every write must be atomic
    atomic_paths: Tuple[str, ...] = (
        "*/resilience/*",
        "*/camodel/io.py",
        "*/experiments/cache.py",
        "*/obs/store.py",
        "*/service/*",
    )
    #: the sanctioned atomic writer implementations
    atomic_writers: Tuple[str, ...] = (
        "*/camodel/io.py::_write_json_atomic",
        "*/obs/store.py::_atomic_write",
        "*/service/lease.py::_atomic_write",
    )

    # -- RPL007 payload-open-handles -------------------------------------
    #: dataclasses treated as cross-process worker payloads
    payload_suffixes: Tuple[str, ...] = ("Payload", "WorkItem")

    # ---------------------------------------------------------------
    # Whole-program pack (RPL101..RPL106).  These are *semantic role
    # declarations* — which callables hash content, sanitize taint, or
    # commit artifacts — not violation allowlists; the dataflow engine
    # decides what actually reaches them.  Patterns are fnmatch globs
    # over dotted callable names as resolved by the project graph
    # (``repro.service.worker.commit_artifact``), so corpus fixtures
    # match via the ``*.`` prefix.
    # ---------------------------------------------------------------

    # -- RPL101 taint-into-artifacts --------------------------------------
    #: content-hash sinks: tainted bytes here poison content keys
    taint_hash_sinks: Tuple[str, ...] = (
        "hashlib.sha256",
        "hashlib.sha1",
        "hashlib.sha512",
        "hashlib.md5",
        "hashlib.blake2b",
        "hashlib.new",
    )
    #: canonical-artifact commit sinks: tainted values here end up in
    #: content-addressed artifacts that must be byte-identical on rerun
    canonical_commit_sinks: Tuple[str, ...] = ("*.commit_artifact",)
    #: callables whose return value is clean regardless of inputs
    #: (they zero every nondeterministic field)
    taint_sanitizers: Tuple[str, ...] = ("*.canonical_model_dict",)

    # -- RPL104 lease/commit discipline -----------------------------------
    #: service-layer modules where the protocol rules apply
    service_paths: Tuple[str, ...] = ("*/service/*",)
    #: class names treated as the run ledger
    ledger_types: Tuple[str, ...] = ("RunLedger",)
    #: RunLedger methods that mutate ledger state
    ledger_mutators: Tuple[str, ...] = (
        "open",
        "save",
        "mark_running",
        "mark_done",
        "record_failure",
        "mark_quarantined",
        "recover",
        "requeue_quarantined",
        "write_failure_report",
    )
    #: the only modules allowed to mutate the ledger (the coordinator
    #: side of the protocol; workers read with ``RunLedger.load`` only)
    ledger_writer_paths: Tuple[str, ...] = (
        "*/resilience/*",
        "*/service/coordinator.py",
        "*/service/api.py",
    )

    # -- RPL105 swallowed telemetry ---------------------------------------
    #: callables that persist telemetry shards; a broad handler that can
    #: silently swallow a failure on a path reaching one of these drops
    #: observability data on the floor
    telemetry_writer_sinks: Tuple[str, ...] = (
        "*.write_attempt_shard",
        "*.write_worker_shard",
        "*.write_session",
    )

    def with_extra_names(self, *names: str) -> "LintConfig":
        """Copy of this config with *names* added to the RPL002 catalog."""
        return replace(self, extra_names=self.extra_names + tuple(names))
