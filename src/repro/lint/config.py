"""Lint configuration: path scopes and allowlists for the rule pack.

The defaults encode *this repository's* invariants — which modules
construct canonical artifacts, which console sinks may print, which
function is the one sanctioned atomic writer.  Patterns are matched
with :func:`fnmatch.fnmatch` against the posix form of each file's
path, so ``*/resilience/*`` scopes both ``src/repro/resilience/...``
in a real run and ``tests/lint_corpus/resilience/...`` in the fixture
corpus (the corpus mirrors the scoped directory names on purpose).

Site allowlists use ``<path-pattern>::<qualname>`` — e.g.
``*/resilience/ledger.py::RunLedger.open`` sanctions wall-clock reads
inside that one method (the ledger's ``created`` stamp lives in
``ledger.json``, never in a canonical artifact).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Tuple


def match_path(path: str, pattern: str) -> bool:
    """fnmatch on posix paths, also accepting bare-suffix patterns."""
    return fnmatch(path, pattern) or fnmatch(path, "*/" + pattern)


def site_allowed(
    path: str, qualname: str, allowlist: Tuple[str, ...]
) -> bool:
    """True when ``path::qualname`` matches an allowlist entry.

    The qualname side matches exactly, or as a prefix (allowing
    ``RunLedger.open`` to also cover nested helpers defined inside it).
    """
    for entry in allowlist:
        pattern, _, allowed_qual = entry.partition("::")
        if not match_path(path, pattern):
            continue
        if not allowed_qual or qualname == allowed_qual:
            return True
        if qualname.startswith(allowed_qual + "."):
            return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Path scopes and allowlists consumed by the rule pack."""

    #: paths never linted (match against the full posix path)
    exclude: Tuple[str, ...] = ("*/__pycache__/*",)

    # -- RPL001 no-print -------------------------------------------------
    #: the sanctioned console sinks (mirrors ruff T201 per-file-ignores)
    print_allowed: Tuple[str, ...] = (
        "*/repro/cli.py",
        "*/repro/experiments/runner.py",
    )

    # -- RPL002 obs-name-catalog ----------------------------------------
    #: extra registered names (tests / corpus add theirs here)
    extra_names: Tuple[str, ...] = ()

    # -- RPL003 unseeded-random ------------------------------------------
    #: nothing to configure: seeded generator objects are always the fix

    # -- RPL004 wall-clock -----------------------------------------------
    #: modules reachable from canonical-artifact construction
    wallclock_paths: Tuple[str, ...] = (
        "*/camodel/io.py",
        "*/camodel/merge.py",
        "*/camodel/model.py",
        "*/resilience/ledger.py",
        "*/experiments/cache.py",
    )
    #: sanctioned timing sites inside those modules
    wallclock_allowed: Tuple[str, ...] = (
        # the ledger's own `created` stamp: real wall-clock by design —
        # it lives in ledger.json, which is not a canonical artifact
        "*/resilience/ledger.py::RunLedger.open",
    )

    # -- RPL005 atomic-write ---------------------------------------------
    #: run-dir / artifact code paths where every write must be atomic
    atomic_paths: Tuple[str, ...] = (
        "*/resilience/*",
        "*/camodel/io.py",
        "*/experiments/cache.py",
        "*/obs/store.py",
        "*/service/*",
    )
    #: the sanctioned atomic writer implementations
    atomic_writers: Tuple[str, ...] = (
        "*/camodel/io.py::_write_json_atomic",
        "*/obs/store.py::_atomic_write",
        "*/service/lease.py::_atomic_write",
    )

    # -- RPL007 payload-open-handles -------------------------------------
    #: dataclasses treated as cross-process worker payloads
    payload_suffixes: Tuple[str, ...] = ("Payload", "WorkItem")

    def with_extra_names(self, *names: str) -> "LintConfig":
        """Copy of this config with *names* added to the RPL002 catalog."""
        return LintConfig(
            exclude=self.exclude,
            print_allowed=self.print_allowed,
            extra_names=self.extra_names + tuple(names),
            wallclock_paths=self.wallclock_paths,
            wallclock_allowed=self.wallclock_allowed,
            atomic_paths=self.atomic_paths,
            atomic_writers=self.atomic_writers,
            payload_suffixes=self.payload_suffixes,
        )
