"""Command-line interface.

Subcommands mirror the flows of the paper::

    python -m repro generate  CELL.sp -o model.json     # Fig. 1
    python -m repro batch     CELLS.sp --run-dir RUN    # resumable runs
    python -m repro inspect   RUN summary               # run telemetry
    python -m repro watch     RUN                       # live progress
    python -m repro rename    CELL.sp                   # Section III
    python -m repro predict   CELL.sp -t models.json    # Fig. 2
    python -m repro hybrid    CELLS.sp -t models.json   # Fig. 7
    python -m repro catalog                             # list functions
    python -m repro build soi28 NAND2 -d 2              # emit a cell
    python -m repro table II                            # paper tables

Cells are read from SPICE subcircuit files; ``-t/--training`` takes a CA
model library JSON produced by ``generate`` (or by the experiment cache).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.camatrix import rename_transistors, training_matrix
from repro.camodel import generate_ca_model, load_models, save_model, save_models
from repro.flow import HybridFlow
from repro.library import build_cell, function_names, get_technology
from repro.spice import parse_library, write_cell


def _load_cells(path: str):
    text = Path(path).read_text()
    return parse_library(text)


def _load_training_samples(paths: List[str]):
    from repro.learning.datasets import CellSample

    samples = []
    for path in paths:
        for model in load_models(path):
            # rebuild the cell from the registered technology if possible
            cell = None
            for tech_name in ("soi28", "c40", "c28"):
                tech = get_technology(tech_name)
                if model.cell_name.startswith(tech.cell_prefix + "_"):
                    cell = _cell_from_name(tech, model.cell_name)
                    break
            if cell is None:
                print(
                    f"warning: cannot rebuild cell {model.cell_name}; skipped",
                    file=sys.stderr,
                )
                continue
            matrix = training_matrix(cell, model)
            samples.append(CellSample(cell=cell, model=model, matrix=matrix))
    return samples


def _cell_from_name(tech, cell_name: str):
    """Rebuild a builder cell from its canonical name."""
    remainder = cell_name[len(tech.cell_prefix) + 1 :]
    flavor_name = "STD"
    if "_" in remainder:
        remainder, flavor_name = remainder.split("_", 1)
    function, _, drive_text = remainder.rpartition("X")
    flavor = next((f for f in tech.flavors if f.name == flavor_name), None)
    if flavor is None or not drive_text.isdigit():
        return None
    try:
        return build_cell(tech, function, int(drive_text), flavor)
    except KeyError:
        return None


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_generate(args) -> int:
    cells = _load_cells(args.netlist)
    batched = not getattr(args, "scalar", False)
    packed = getattr(args, "packed", False)
    phase_cache = getattr(args, "phase_cache", None)
    if args.processes and args.processes > 1:
        from repro.camodel import generate_library

        by_name = generate_library(
            cells,
            policy=args.policy,
            processes=args.processes,
            parallelism=args.parallelism,
            batched=batched,
            packed=packed,
            phase_cache=phase_cache,
        )
        models = [by_name[cell.name] for cell in cells]
    elif packed and batched and len(cells) > 1 and not args.parallelism:
        from repro.camodel import run_throughput

        by_name = run_throughput(
            cells, policy=args.policy, phase_cache=phase_cache
        )
        models = [by_name[cell.name] for cell in cells]
    else:
        models = [
            generate_ca_model(
                cell,
                policy=args.policy,
                parallelism=args.parallelism,
                batched=batched,
                packed=packed,
                phase_cache=phase_cache,
            )
            for cell in cells
        ]
    for cell, model in zip(cells, models):
        print(f"{cell.name}: {model.summary()}")
        if args.stats and model.stats is not None:
            stats = model.stats
            print(
                f"  generation: workers={stats.workers} solves={stats.solves} "
                f"batched={stats.batched_phases} "
                f"cache_hits={stats.cache_hits} "
                f"(hit rate {stats.cache_hit_rate:.1%}), "
                f"golden {stats.golden_seconds:.3f}s + "
                f"defects {stats.defect_seconds:.3f}s + "
                f"merge {stats.merge_seconds:.3f}s "
                f"= {stats.total_seconds:.3f}s"
            )
    if args.stats:
        registry = obs.metrics()
        if "camodel.seconds.per_cell" in registry.histograms:
            print(
                "per-cell seconds: "
                f"p50={registry.percentile('camodel.seconds.per_cell', 0.50):.3f} "
                f"p95={registry.percentile('camodel.seconds.per_cell', 0.95):.3f} "
                f"p99={registry.percentile('camodel.seconds.per_cell', 0.99):.3f}"
            )
    if args.output:
        if len(models) == 1:
            save_model(models[0], args.output)
        else:
            save_models(models, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_batch(args) -> int:
    """Checkpointed library characterization with resume and quarantine."""
    from repro.resilience import FaultPlan, RunDirError
    from repro.resilience.runner import run_library

    cells = _load_cells(args.netlist)
    fault_plan = FaultPlan.load(args.faults) if args.faults else None
    try:
        result = run_library(
            cells,
            run_dir=args.run_dir,
            policy=args.policy,
            processes=args.processes,
            resume=args.resume,
            retries=args.retries,
            cell_timeout=args.cell_timeout,
            retry_backoff=args.retry_backoff,
            fault_plan=fault_plan,
            parallelism=args.parallelism,
            batched=not args.scalar,
            packed=args.packed,
            phase_cache=args.phase_cache,
            output=args.output,
        )
    except RunDirError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    resumed = set(result.resumed)
    for cell in cells:
        if cell.name in result.models:
            tag = " (resumed)" if cell.name in resumed else ""
            print(f"{cell.name}: {result.models[cell.name].summary()}{tag}")
        else:
            errors = result.quarantined.get(cell.name, [])
            kind = errors[-1].get("kind", "?") if errors else "?"
            print(f"{cell.name}: QUARANTINED ({kind}, {len(errors)} attempts)")
    counts = result.report["counts"]
    print(
        f"done {counts['done']}/{len(cells)} "
        f"(resumed {len(result.resumed)}, quarantined {counts['quarantined']})"
    )
    if args.output:
        print(f"wrote {args.output}")
    if result.quarantined:
        print(f"failure report: {result.run_dir / 'failures.json'}")
        return 3
    return 0


def cmd_serve(args) -> int:
    """Coordinate a leased multi-worker characterization of a run dir."""
    from repro.resilience import FaultPlan, RunDirError
    from repro.service import Job, serve, submit_library

    try:
        if args.netlist:
            cells = _load_cells(args.netlist)
            fault_plan = FaultPlan.load(args.faults) if args.faults else None
            job = submit_library(
                cells,
                run_dir=args.run_dir,
                policy=args.policy,
                resume=args.resume,
                retries=args.retries,
                lease_ttl=args.lease_ttl,
                fault_plan=fault_plan,
                parallelism=args.parallelism,
                batched=not args.scalar,
                packed=args.packed,
                phase_cache=args.phase_cache,
            )
        else:
            job = Job.attach(args.run_dir)
        result = serve(
            args.run_dir,
            workers=args.workers,
            resume=args.resume,
            output=args.output,
        )
    except RunDirError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    names = job.manifest.names()
    resumed = set(result.resumed)
    for name in names:
        if name in result.models:
            tag = " (resumed)" if name in resumed else ""
            print(f"{name}: {result.models[name].summary()}{tag}")
        else:
            errors = result.quarantined.get(name, [])
            kind = errors[-1].get("kind", "?") if errors else "?"
            print(f"{name}: QUARANTINED ({kind}, {len(errors)} attempts)")
    counts = result.report["counts"]
    print(
        f"done {counts['done']}/{len(names)} "
        f"(resumed {len(result.resumed)}, quarantined {counts['quarantined']})"
    )
    if args.output:
        print(f"wrote {args.output}")
    if result.quarantined:
        print(f"failure report: {result.run_dir / 'failures.json'}")
        return 3
    return 0


def cmd_worker(args) -> int:
    """Run one stateless leased worker against a submitted run directory."""
    from repro.resilience import RunDirError
    from repro.service import worker_loop

    try:
        completed = worker_loop(
            args.run_dir, owner=args.owner, max_cells=args.max_cells
        )
    except RunDirError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"worker exit: committed {completed} cell(s)")
    return 0


def cmd_inspect(args) -> int:
    """Render one analysis report over a run directory's telemetry."""
    from repro.obs import inspect as obs_inspect
    from repro.obs.store import RunTelemetry
    from repro.resilience import RunDirError

    try:
        tel = RunTelemetry.load(args.run_dir)
    except RunDirError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    obs.metrics().inc(obs_inspect.M_REPORTS)
    if args.report == "summary":
        print(obs_inspect.report_summary(tel))
    elif args.report == "stragglers":
        print(obs_inspect.report_stragglers(tel, top=args.top))
    elif args.report == "cache":
        print(obs_inspect.report_cache(tel))
    elif args.report == "failures":
        print(obs_inspect.report_failures(tel))
    elif args.report == "workers":
        print(obs_inspect.report_workers(tel))
    else:  # trace
        out = args.chrome or str(Path(args.run_dir) / "trace.json")
        tel.write_chrome(out)
        print(f"wrote {out} ({len(tel.merged_spans())} spans)")
    return 0


def cmd_watch(args) -> int:
    """Live progress tail of a run directory's ledger + shard store."""
    import time as _time

    from repro.obs import inspect as obs_inspect
    from repro.resilience import RunDirError

    window = obs_inspect.WatchWindow()
    refreshes = 0
    while True:
        try:
            snapshot = obs_inspect.watch_snapshot(args.run_dir)
        except RunDirError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        done = snapshot["counts"].get("done", 0)
        rate = window.update(snapshot["time"], done)
        obs.metrics().inc(obs_inspect.M_WATCH_REFRESHES)
        print(obs_inspect.render_watch(snapshot, rate), flush=True)
        refreshes += 1
        if args.iterations is not None and refreshes >= args.iterations:
            return 0
        if obs_inspect.watch_complete(snapshot):
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0


def cmd_rename(args) -> int:
    for cell in _load_cells(args.netlist):
        renamed = rename_transistors(cell)
        print(f"cell {cell.name}  group={cell.group_key}")
        print(f"  signature: {renamed.signature}")
        for branch in renamed.branches:
            print(
                f"  branch {branch.index} level={branch.level} "
                f"exit={branch.exit_net}  {branch.equation.named(renamed.mapping)}"
            )
        for old, new in sorted(renamed.mapping.items(), key=lambda kv: kv[1]):
            print(f"  {old:>8} -> {new:<4} activity={renamed.activity[new]}")
    return 0


def cmd_predict(args) -> int:
    samples = _load_training_samples(args.training)
    if not samples:
        print("no usable training models", file=sys.stderr)
        return 1
    flow = HybridFlow(samples)
    for cell in _load_cells(args.netlist):
        decision = flow.generate(cell, policy=args.policy)
        print(
            f"{cell.name}: match={decision.match} route={decision.route} "
            f"({decision.seconds:.2f}s)"
        )
        if args.output and decision.model is not None:
            save_model(decision.model, args.output)
            print(f"wrote {args.output}")
    return 0


def cmd_hybrid(args) -> int:
    samples = _load_training_samples(args.training)
    if not samples:
        print("no usable training models", file=sys.stderr)
        return 1
    flow = HybridFlow(samples)
    report = flow.run(_load_cells(args.netlist), policy=args.policy)
    for decision in report.decisions:
        print(f"  {decision.cell_name}: {decision.match} -> {decision.route}")
    for key, value in report.summary().items():
        print(f"{key}: {value}")
    return 0


def cmd_catalog(_args) -> int:
    from repro.library import CATALOG

    for name in function_names():
        fdef = CATALOG[name]
        print(f"{name:<8} inputs={fdef.n_inputs}  {fdef.formula}")
    return 0


def cmd_build(args) -> int:
    tech = get_technology(args.technology)
    cell = build_cell(tech, args.function, args.drive)
    sys.stdout.write(write_cell(cell, tech.dialect))
    return 0


def cmd_lint(args) -> int:
    from repro.lint import cli as lint_cli

    return lint_cli.run(args)


def cmd_table(args) -> int:
    from repro import experiments

    regenerators = {
        "I": experiments.table1_training_rows,
        "II": experiments.table2_activity,
        "III": experiments.table3_defect_columns,
        "fig4": experiments.fig4_partial_matrix,
        "fig5": experiments.fig5_branch_equations,
        "fig6": experiments.fig6_equivalence_demo,
    }
    try:
        print(regenerators[args.which]())
    except KeyError:
        print(f"unknown table {args.which!r}; choose from {sorted(regenerators)}")
        return 1
    return 0


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability flags, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="FILE.json",
        help=(
            "record spans for the whole run and write them on exit "
            "(Chrome-trace JSON; use a .jsonl name for raw span lines)"
        ),
    )
    group.add_argument(
        "--log-json",
        metavar="FILE.jsonl",
        help="append structured obs events to a JSONL file",
    )
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more event output on stderr (-v info, -vv debug)",
    )
    group.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="only error events on stderr",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="learning-based CA model generation"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    obs_parent = _obs_parent()

    p = sub.add_parser(
        "generate",
        help="conventional CA generation (Fig. 1)",
        parents=[obs_parent],
    )
    p.add_argument("netlist")
    p.add_argument("-o", "--output")
    p.add_argument("--policy", default="auto")
    p.add_argument(
        "-j",
        "--parallelism",
        type=int,
        default=None,
        help="worker processes for the per-defect simulation loop of each cell",
    )
    p.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker processes across cells (alternative to -j for many small cells)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-cell generation cost accounting (solves, caches, timings)",
    )
    p.add_argument(
        "--scalar",
        action="store_true",
        help="force the scalar reference solver (disable the vectorized "
        "batch kernel; results are byte-identical either way)",
    )
    p.add_argument(
        "--packed",
        action="store_true",
        help="pack phase batches across cells/defects into multi-topology "
        "kernel calls (byte-identical models, higher library throughput)",
    )
    p.add_argument(
        "--phase-cache",
        metavar="DIR",
        default=None,
        help="directory persisting solved phases across runs (warm runs "
        "skip the solves; results and counters stay byte-identical)",
    )
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser(
        "batch",
        help="resumable, fault-tolerant library characterization",
        parents=[obs_parent],
    )
    p.add_argument("netlist")
    p.add_argument(
        "--run-dir",
        required=True,
        help="directory for the run ledger and per-cell model checkpoints",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue a previous run of this directory (reuses completed "
        "cells; exits 3 if quarantined cells remain)",
    )
    p.add_argument("-o", "--output", help="write the assembled library JSON")
    p.add_argument("--policy", default="auto")
    p.add_argument(
        "--processes",
        type=int,
        default=None,
        help="concurrent cell workers (each cell runs in its own process)",
    )
    p.add_argument(
        "-j",
        "--parallelism",
        type=int,
        default=None,
        help="worker processes for the per-defect loop inside each cell",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="failed attempts allowed per cell before quarantine (default 1)",
    )
    p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="wall-clock seconds per cell attempt before the worker is killed",
    )
    p.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        help="base retry delay in seconds, doubling per attempt (default 0.1)",
    )
    p.add_argument(
        "--faults",
        metavar="PLAN.json",
        help="inject a deterministic FaultPlan (chaos testing; see "
        "docs/resilience.md)",
    )
    p.add_argument(
        "--scalar",
        action="store_true",
        help="force the scalar reference solver",
    )
    p.add_argument(
        "--packed",
        action="store_true",
        help="solve each worker's defect slice through the packed "
        "multi-topology kernel (byte-identical artifacts)",
    )
    p.add_argument(
        "--phase-cache",
        metavar="DIR",
        default=None,
        help="directory persisting solved phases across runs and retries "
        "(identity-preserving; not part of the run fingerprint)",
    )
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "serve",
        help="coordinator + leased workers over a shared run directory",
        parents=[obs_parent],
    )
    p.add_argument(
        "run_dir",
        help="run directory shared by the coordinator and every worker",
    )
    p.add_argument(
        "--netlist",
        default=None,
        help="SPICE library to submit into RUN_DIR first (omit to serve "
        "an already-submitted job.json)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="local worker processes to spawn (0: coordinate external "
        "`repro worker RUN_DIR` processes only; default 2)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue a previous run (requeues quarantined cells with a "
        "fresh retry budget; exits 3 if quarantined cells remain)",
    )
    p.add_argument("-o", "--output", help="write the assembled library JSON")
    p.add_argument("--policy", default="auto")
    p.add_argument(
        "-j",
        "--parallelism",
        type=int,
        default=None,
        help="worker processes for the per-defect loop inside each cell",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="failed attempts allowed per cell before quarantine (default 1)",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=15.0,
        help="seconds a cell lease survives without a heartbeat before "
        "the coordinator re-leases it (default 15)",
    )
    p.add_argument(
        "--faults",
        metavar="PLAN.json",
        help="inject a deterministic FaultPlan (chaos testing; `hang` "
        "mode is unsupported under the service — see docs/resilience.md)",
    )
    p.add_argument(
        "--scalar", action="store_true", help="force the scalar solver"
    )
    p.add_argument(
        "--packed",
        action="store_true",
        help="solve through the packed multi-topology kernel",
    )
    p.add_argument(
        "--phase-cache",
        metavar="DIR",
        default=None,
        help="directory persisting solved phases across runs and retries",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="one stateless leased worker (join a served run directory)",
        parents=[obs_parent],
    )
    p.add_argument(
        "run_dir",
        help="run directory holding a submitted job.json (possibly on a "
        "shared filesystem; see docs/resilience.md for the multi-machine "
        "recipe)",
    )
    p.add_argument(
        "--owner",
        default=None,
        help="lease owner id (default: pid-derived, unique per process)",
    )
    p.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="exit after committing N cells (default: run until the job "
        "completes)",
    )
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "inspect",
        help="analyze a run directory's telemetry store",
        parents=[obs_parent],
    )
    p.add_argument("run_dir", help="run directory of a batch run")
    p.add_argument(
        "report",
        nargs="?",
        default="summary",
        choices=["summary", "stragglers", "cache", "failures", "workers", "trace"],
        help="subreport to render (default: summary)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=5,
        help="rows in the stragglers report (default 5)",
    )
    p.add_argument(
        "--chrome",
        metavar="OUT.json",
        default=None,
        help="output path for the trace report's merged Chrome trace "
        "(default RUN_DIR/trace.json)",
    )
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser(
        "watch",
        help="live progress of a (possibly running) run directory",
        parents=[obs_parent],
    )
    p.add_argument("run_dir", help="run directory of a batch run")
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default 2)",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N refreshes (default: until the run completes)",
    )
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser(
        "rename", help="canonical transistor renaming", parents=[obs_parent]
    )
    p.add_argument("netlist")
    p.set_defaults(func=cmd_rename)

    p = sub.add_parser(
        "predict", help="ML CA prediction for one netlist", parents=[obs_parent]
    )
    p.add_argument("netlist")
    p.add_argument("-t", "--training", action="append", required=True)
    p.add_argument("-o", "--output")
    p.add_argument("--policy", default="auto")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser(
        "hybrid", help="hybrid generation flow (Fig. 7)", parents=[obs_parent]
    )
    p.add_argument("netlist")
    p.add_argument("-t", "--training", action="append", required=True)
    p.add_argument("--policy", default="auto")
    p.set_defaults(func=cmd_hybrid)

    p = sub.add_parser(
        "catalog", help="list cell functions", parents=[obs_parent]
    )
    p.set_defaults(func=cmd_catalog)

    p = sub.add_parser(
        "build", help="emit one synthetic cell as SPICE", parents=[obs_parent]
    )
    p.add_argument("technology")
    p.add_argument("function")
    p.add_argument("-d", "--drive", type=int, default=1)
    p.set_defaults(func=cmd_build)

    p = sub.add_parser(
        "table", help="print a paper table / figure", parents=[obs_parent]
    )
    p.add_argument("which")
    p.set_defaults(func=cmd_table)

    p = sub.add_parser(
        "lint",
        help="project-invariant static analysis (see docs/static-analysis.md)",
        parents=[obs_parent],
    )
    from repro.lint import cli as lint_cli

    lint_cli.add_arguments(p)
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    verbosity = -1 if args.quiet else args.verbose
    with obs.session(
        trace_path=args.trace,
        log_json=args.log_json,
        verbosity=verbosity,
        root=f"cli.{args.command}",
    ):
        status = args.func(args)
    if args.trace:
        print(f"wrote {args.trace}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
