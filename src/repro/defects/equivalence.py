"""Defect equivalence classification.

After simulation, "all cell-internal defects are classified into defect
equivalence classes with their detection information" (paper, Section I).
Two defects are equivalent when their detection rows are identical over the
full stimulus set: no test can distinguish them, so the CA model keeps one
representative per class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class EquivalenceClass:
    """A set of test-indistinguishable defects."""

    representative: str
    members: Tuple[str, ...]
    #: shared detection row over the stimulus set
    detection: Tuple[int, ...]

    @property
    def is_undetectable(self) -> bool:
        return not any(self.detection)

    def __len__(self) -> int:
        return len(self.members)


def equivalence_classes(
    detection: np.ndarray, defect_names: Sequence[str]
) -> List[EquivalenceClass]:
    """Group defects with identical detection rows.

    *detection* is a (defects x stimuli) 0/1 matrix; row order matches
    *defect_names*.  Classes are returned in order of first appearance, so
    the representative is the lowest-numbered member.
    """
    if detection.shape[0] != len(defect_names):
        raise ValueError(
            f"{detection.shape[0]} detection rows for {len(defect_names)} names"
        )
    buckets: Dict[bytes, List[int]] = {}
    order: List[bytes] = []
    compact = np.ascontiguousarray(detection.astype(np.int8))
    for i in range(compact.shape[0]):
        key = compact[i].tobytes()
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(i)
    classes: List[EquivalenceClass] = []
    for key in order:
        rows = buckets[key]
        classes.append(
            EquivalenceClass(
                representative=defect_names[rows[0]],
                members=tuple(defect_names[i] for i in rows),
                detection=tuple(int(v) for v in compact[rows[0]]),
            )
        )
    return classes


def collapse_ratio(classes: Sequence[EquivalenceClass], n_defects: int) -> float:
    """Fraction of the universe removed by equivalence collapsing."""
    if n_defects == 0:
        return 0.0
    return 1.0 - len(classes) / n_defects
