"""Enumeration of the defect universe of a cell.

The conventional CA flow simulates "each potential defect" (paper, Fig. 1).
For a cell with T transistors the default universe is:

* 4T terminal opens (D, G, S, B per device),
* 6T intra-transistor terminal-pair shorts (C(4,2) pairs per device),
* optionally, inter-transistor shorts between distinct non-rail nets.

Defects are named ``D0, D1, ...`` in enumeration order; the order is a
deterministic function of the netlist's transistor order, so equivalent
cells enumerate equivalent universes once transistors are renamed.
"""

from __future__ import annotations

import itertools
from typing import List

from repro.defects.model import INTER_SHORT, OPEN, SHORT, Defect
from repro.spice.netlist import TERMINALS, CellNetlist

#: terminal pairs for intra-transistor shorts, in CA-matrix column order
TERMINAL_PAIRS = tuple(itertools.combinations(TERMINALS, 2))


def enumerate_opens(cell: CellNetlist, start: int = 0) -> List[Defect]:
    """All terminal-open defects of *cell*."""
    out: List[Defect] = []
    counter = itertools.count(start)
    for t in cell.transistors:
        for term in TERMINALS:
            out.append(Defect(f"D{next(counter)}", OPEN, (t.name, term)))
    return out


def enumerate_shorts(cell: CellNetlist, start: int = 0) -> List[Defect]:
    """All intra-transistor terminal-pair shorts of *cell*."""
    out: List[Defect] = []
    counter = itertools.count(start)
    for t in cell.transistors:
        for a, b in TERMINAL_PAIRS:
            out.append(Defect(f"D{next(counter)}", SHORT, (t.name, a, b)))
    return out


def enumerate_inter_shorts(cell: CellNetlist, start: int = 0) -> List[Defect]:
    """Shorts between distinct non-rail nets (not in the default universe,
    mirroring the paper's scope)."""
    nets = sorted(cell.nets() - set(cell.rails))
    out: List[Defect] = []
    counter = itertools.count(start)
    for net_a, net_b in itertools.combinations(nets, 2):
        out.append(Defect(f"D{next(counter)}", INTER_SHORT, (net_a, net_b)))
    return out


def default_universe(
    cell: CellNetlist,
    include_opens: bool = True,
    include_shorts: bool = True,
    include_inter_shorts: bool = False,
) -> List[Defect]:
    """The defect universe characterized by the CA flow for *cell*."""
    out: List[Defect] = []
    if include_opens:
        out.extend(enumerate_opens(cell, start=len(out)))
    if include_shorts:
        out.extend(enumerate_shorts(cell, start=len(out)))
    if include_inter_shorts:
        out.extend(enumerate_inter_shorts(cell, start=len(out)))
    return out
