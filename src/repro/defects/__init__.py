"""Cell-internal defect models, universes and equivalence classes."""

from repro.defects.model import Defect, INTER_SHORT, OPEN, SHORT
from repro.defects.universe import (
    TERMINAL_PAIRS,
    default_universe,
    enumerate_inter_shorts,
    enumerate_opens,
    enumerate_shorts,
)
from repro.defects.weights import WeightModel, defect_weights, weighted_coverage
from repro.defects.equivalence import (
    EquivalenceClass,
    collapse_ratio,
    equivalence_classes,
)

__all__ = [
    "Defect",
    "OPEN",
    "SHORT",
    "INTER_SHORT",
    "TERMINAL_PAIRS",
    "default_universe",
    "enumerate_opens",
    "enumerate_shorts",
    "enumerate_inter_shorts",
    "EquivalenceClass",
    "equivalence_classes",
    "collapse_ratio",
    "WeightModel",
    "defect_weights",
    "weighted_coverage",
]
