"""Defect likelihood weighting (critical-area style).

Industrial CA flows weight defects by layout critical area so that
coverage numbers reflect *silicon* likelihood, not universe counting.
Without layout, geometry is a solid proxy:

* shorts between a device's terminals scale with its gate area (W x L);
* opens on a terminal scale with the contact/finger width (~W);
* bulk-terminal defects carry a small constant weight.

Weighted coverage then answers "what fraction of *likely* defects does
this pattern set catch?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.defects.model import Defect, INTER_SHORT, OPEN, SHORT
from repro.spice.netlist import CellNetlist


@dataclass(frozen=True)
class WeightModel:
    """Coefficients of the geometric likelihood model."""

    open_per_width: float = 1.0
    short_per_area: float = 4.0
    bulk_factor: float = 0.1
    inter_short_base: float = 0.5

    def weight(self, defect: Defect, cell: CellNetlist) -> float:
        """Relative likelihood of one defect."""
        if defect.kind == OPEN:
            name, terminal = defect.location
            device = cell.transistor(name)
            base = self.open_per_width * device.w
            return base * self.bulk_factor if terminal == "B" else base
        if defect.kind == SHORT:
            name, term_a, term_b = defect.location
            device = cell.transistor(name)
            base = self.short_per_area * device.w * device.l
            if "B" in (term_a, term_b):
                return base * self.bulk_factor
            return base
        if defect.kind == INTER_SHORT:
            return self.inter_short_base
        raise ValueError(f"unknown defect kind {defect.kind!r}")


def defect_weights(
    cell: CellNetlist,
    defects: Sequence[Defect],
    model: Optional[WeightModel] = None,
    normalize: bool = True,
) -> np.ndarray:
    """Weight vector aligned with *defects*."""
    weight_model = model or WeightModel()
    weights = np.array(
        [weight_model.weight(d, cell) for d in defects], dtype=np.float64
    )
    if normalize and weights.sum() > 0:
        weights = weights / weights.sum()
    return weights


def weighted_coverage(
    detection: np.ndarray,
    weights: np.ndarray,
    stimulus_subset: Optional[Sequence[int]] = None,
) -> float:
    """Likelihood-weighted detected fraction.

    *detection* is (defects x stimuli); with *stimulus_subset* only those
    columns count (coverage of a compacted pattern set).
    """
    detection = np.asarray(detection, dtype=bool)
    weights = np.asarray(weights, dtype=np.float64)
    if detection.shape[0] != len(weights):
        raise ValueError(
            f"{detection.shape[0]} detection rows vs {len(weights)} weights"
        )
    if stimulus_subset is not None:
        detection = detection[:, list(stimulus_subset)]
    if weights.sum() == 0:
        return 0.0
    detected = detection.any(axis=1)
    return float(weights[detected].sum() / weights.sum())
