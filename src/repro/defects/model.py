"""Cell-internal defect models (Section IV of the paper).

Two families are enumerated:

* **Intra-transistor defects** — opens on one terminal (D/G/S/B) and shorts
  between a pair of terminals of the same device.
* **Inter-transistor defects** — shorts between two nets of the cell.  The
  paper notes its matrix representation covers them but does not evaluate
  them; this reproduction implements them and keeps them out of the default
  universe, matching the paper.

Every defect can be lowered to a
:class:`~repro.simulation.switchgraph.DefectEffect` for simulation and to a
set of affected (transistor, terminal) pairs for the CA-matrix defect
columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.simulation.switchgraph import DefectEffect
from repro.spice.netlist import TERMINALS, CellNetlist

OPEN = "open"
SHORT = "short"
INTER_SHORT = "inter_short"


@dataclass(frozen=True)
class Defect:
    """One potential cell-internal defect.

    ``location`` is interpreted per *kind*:

    * ``open`` — ``(transistor_name, terminal)``
    * ``short`` — ``(transistor_name, terminal_a, terminal_b)``
    * ``inter_short`` — ``(net_a, net_b)``
    """

    name: str
    kind: str
    location: Tuple[str, ...]

    def __post_init__(self) -> None:
        expected = {OPEN: 2, SHORT: 3, INTER_SHORT: 2}
        if self.kind not in expected:
            raise ValueError(f"unknown defect kind {self.kind!r}")
        if len(self.location) != expected[self.kind]:
            raise ValueError(
                f"{self.kind} defect needs {expected[self.kind]} location "
                f"fields, got {self.location}"
            )

    # ------------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self.kind == OPEN

    @property
    def is_short(self) -> bool:
        return self.kind in (SHORT, INTER_SHORT)

    def describe(self) -> str:
        """Human-readable one-liner."""
        if self.kind == OPEN:
            t, term = self.location
            return f"{self.name}: open on {t}.{term}"
        if self.kind == SHORT:
            t, a, b = self.location
            return f"{self.name}: short {t}.{a}-{t}.{b}"
        a, b = self.location
        return f"{self.name}: short net {a} - net {b}"

    # ------------------------------------------------------------------
    def affected_terminals(self, cell: CellNetlist) -> FrozenSet[Tuple[str, str]]:
        """(transistor, terminal) pairs marked '1' in the defect columns.

        For an inter-transistor short, every terminal attached to either
        shorted net is marked, which is how Table III of the paper encodes
        its "net0 & P0-source short" example.
        """
        if self.kind == OPEN:
            t, term = self.location
            return frozenset({(t, term)})
        if self.kind == SHORT:
            t, a, b = self.location
            return frozenset({(t, a), (t, b)})
        net_a, net_b = self.location
        marked = set()
        for t in cell.transistors:
            for term in TERMINALS:
                if t.terminal(term) in (net_a, net_b):
                    marked.add((t.name, term))
        return frozenset(marked)

    # ------------------------------------------------------------------
    def effect(self, cell: CellNetlist, short_resistance: float) -> DefectEffect:
        """Lower the defect to a simulatable graph modification."""
        if self.kind == OPEN:
            t_name, term = self.location
            cell.transistor(t_name)  # validate existence
            if term in ("D", "S"):
                return DefectEffect(removed=frozenset({t_name}))
            if term == "G":
                return DefectEffect(gate_open=frozenset({t_name}))
            # Bulk open: marginal body-bias effect only -> logically benign.
            return DefectEffect(benign=True)
        if self.kind == SHORT:
            t_name, a, b = self.location
            t = cell.transistor(t_name)
            net_a, net_b = t.terminal(a), t.terminal(b)
            if net_a == net_b:
                return DefectEffect(benign=True)
            return DefectEffect(bridges=((net_a, net_b, short_resistance),))
        net_a, net_b = self.location
        if net_a == net_b:
            return DefectEffect(benign=True)
        return DefectEffect(bridges=((net_a, net_b, short_resistance),))
