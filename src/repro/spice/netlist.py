"""Transistor-level netlist object model.

This is the common in-memory representation every other subsystem works on.
A :class:`CellNetlist` is what the paper calls the "SPICE netlist
representation of a standard cell" (Fig. 1): a flat list of MOS transistors
connected by named nets, with declared input/output ports and power/ground
rails.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Set, Tuple

NMOS = "nmos"
PMOS = "pmos"

#: Order of the terminal fields on a transistor; also the order in which the
#: CA-matrix lists defect columns (Section IV of the paper).
TERMINALS = ("D", "G", "S", "B")


class NetlistError(ValueError):
    """Raised for structurally invalid netlists."""


@dataclass(frozen=True)
class Transistor:
    """A single MOS device.

    Terminal order follows SPICE M-card convention: drain, gate, source,
    bulk.  ``w`` and ``l`` are in micrometres; ``model`` is the foundry
    device-model name as it appeared in the source netlist.
    """

    name: str
    ttype: str
    drain: str
    gate: str
    source: str
    bulk: str
    w: float = 1.0
    l: float = 0.1
    model: str = ""

    def __post_init__(self) -> None:
        if self.ttype not in (NMOS, PMOS):
            raise NetlistError(f"bad transistor type {self.ttype!r} on {self.name}")
        if self.w <= 0 or self.l <= 0:
            raise NetlistError(f"non-positive geometry on {self.name}")

    @property
    def is_nmos(self) -> bool:
        return self.ttype == NMOS

    @property
    def is_pmos(self) -> bool:
        return self.ttype == PMOS

    def terminal(self, which: str) -> str:
        """Net attached to terminal ``'D' | 'G' | 'S' | 'B'``."""
        try:
            return {"D": self.drain, "G": self.gate, "S": self.source, "B": self.bulk}[which]
        except KeyError:
            raise NetlistError(f"unknown terminal {which!r}") from None

    def channel_nets(self) -> Tuple[str, str]:
        """The (drain, source) pair — the conduction channel endpoints."""
        return (self.drain, self.source)

    def renamed(self, new_name: str) -> "Transistor":
        """A copy of this device under another name."""
        return replace(self, name=new_name)


@dataclass
class CellNetlist:
    """A standard cell as a flat transistor netlist.

    Parameters
    ----------
    name:
        Cell name, e.g. ``"ND2X1"``.
    inputs / outputs:
        Ordered logical port lists.  Multi-output cells are supported by the
        data model; the generation flow currently characterizes one output
        at a time.
    power / ground:
        Rail net names (``VDD``/``VSS`` by default, but dialects differ).
    transistors:
        The devices.  Names must be unique.
    """

    name: str
    inputs: List[str]
    outputs: List[str]
    transistors: List[Transistor] = field(default_factory=list)
    power: str = "VDD"
    ground: str = "VSS"
    function: str = ""
    technology: str = ""

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rails(self) -> Tuple[str, str]:
        return (self.power, self.ground)

    def nets(self) -> Set[str]:
        """All nets referenced anywhere in the cell."""
        out: Set[str] = {self.power, self.ground}
        out.update(self.inputs)
        out.update(self.outputs)
        for t in self.transistors:
            out.update((t.drain, t.gate, t.source, t.bulk))
        return out

    def internal_nets(self) -> Set[str]:
        """Nets that are neither ports nor rails."""
        return self.nets() - set(self.inputs) - set(self.outputs) - set(self.rails)

    def transistor(self, name: str) -> Transistor:
        """Look a device up by name."""
        for t in self.transistors:
            if t.name == name:
                return t
        raise NetlistError(f"no transistor named {name!r} in cell {self.name}")

    def transistor_names(self) -> List[str]:
        return [t.name for t in self.transistors]

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_transistors(self) -> int:
        return len(self.transistors)

    @property
    def group_key(self) -> Tuple[int, int]:
        """The (number of inputs, number of transistors) grouping key the
        paper uses to pool training cells (Section II.B)."""
        return (self.n_inputs, self.n_transistors)

    def gate_loads(self, net: str) -> List[Transistor]:
        """Devices whose gate is driven by *net*."""
        return [t for t in self.transistors if t.gate == net]

    def channel_neighbors(self, net: str) -> List[Transistor]:
        """Devices with *net* on their drain or source."""
        return [t for t in self.transistors if net in t.channel_nets()]

    # ------------------------------------------------------------------
    # Validation / transforms
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`NetlistError` on structural problems."""
        if not self.name:
            raise NetlistError("cell has no name")
        if not self.outputs:
            raise NetlistError(f"cell {self.name} has no output")
        seen: Set[str] = set()
        for t in self.transistors:
            if t.name in seen:
                raise NetlistError(f"duplicate transistor name {t.name!r} in {self.name}")
            seen.add(t.name)
        overlap = set(self.inputs) & set(self.outputs)
        if overlap:
            raise NetlistError(f"ports {sorted(overlap)} are both input and output")
        if self.power == self.ground:
            raise NetlistError("power and ground rails must differ")

    def with_transistors(self, transistors: Iterable[Transistor]) -> "CellNetlist":
        """A shallow copy with a different device list."""
        return CellNetlist(
            name=self.name,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            transistors=list(transistors),
            power=self.power,
            ground=self.ground,
            function=self.function,
            technology=self.technology,
        )

    def renamed_nets(self, mapping: Dict[str, str]) -> "CellNetlist":
        """A copy with nets renamed according to *mapping* (identity for
        unmapped nets)."""

        def m(net: str) -> str:
            return mapping.get(net, net)

        devices = [
            Transistor(
                name=t.name,
                ttype=t.ttype,
                drain=m(t.drain),
                gate=m(t.gate),
                source=m(t.source),
                bulk=m(t.bulk),
                w=t.w,
                l=t.l,
                model=t.model,
            )
            for t in self.transistors
        ]
        return CellNetlist(
            name=self.name,
            inputs=[m(n) for n in self.inputs],
            outputs=[m(n) for n in self.outputs],
            transistors=devices,
            power=m(self.power),
            ground=m(self.ground),
            function=self.function,
            technology=self.technology,
        )

    def check_connected(self) -> List[str]:
        """Return a list of human-readable connectivity warnings.

        An empty list means every input drives at least one gate, every
        output is reachable from a channel, and no device floats.
        """
        warnings: List[str] = []
        gate_nets = {t.gate for t in self.transistors}
        channel_nets: Set[str] = set()
        for t in self.transistors:
            channel_nets.update(t.channel_nets())
        for pin in self.inputs:
            if pin not in gate_nets and pin not in channel_nets:
                warnings.append(f"input {pin} drives nothing")
        for pin in self.outputs:
            if pin not in channel_nets:
                warnings.append(f"output {pin} is not driven by any channel")
        return warnings


def bulk_rail(ttype: str, power: str = "VDD", ground: str = "VSS") -> str:
    """Conventional bulk connection: NMOS to ground, PMOS to power."""
    return ground if ttype == NMOS else power
