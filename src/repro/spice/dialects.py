"""SPICE netlist dialects.

Different foundry kits write the "same" cell very differently: device name
prefixes, model names, rail names, parameter spelling and unit suffixes all
vary.  The paper stresses (Section II.A) that this variability is exactly
what breaks naive learning across libraries — so the reproduction keeps it:
each synthetic technology emits its own dialect, and the parser normalizes
all of them back into :class:`repro.spice.netlist.CellNetlist`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class Dialect:
    """Textual conventions of one library's SPICE/CDL netlists."""

    name: str
    #: model card name per device type, e.g. {"nmos": "nch", "pmos": "pch"}
    models: Dict[str, str]
    power: str = "VDD"
    ground: str = "VSS"
    #: prefix prepended to transistor instance names ('M', 'MM', 'XM', ...)
    device_prefix: str = "M"
    #: printf-style templates for geometry parameters
    w_format: str = "W={w:g}u"
    l_format: str = "L={l:g}u"
    #: whether parameters are written lowercase
    lowercase_params: bool = False
    #: extra constant parameters appended to every device card
    extra_params: Tuple[str, ...] = field(default_factory=tuple)

    def model_for(self, ttype: str) -> str:
        return self.models[ttype]

    def ttype_for_model(self, model: str) -> str:
        lowered = model.lower()
        for ttype, name in self.models.items():
            if name.lower() == lowered:
                return ttype
        raise KeyError(model)


#: Generic dialect used when writing netlists without a technology context.
GENERIC = Dialect(
    name="generic",
    models={"nmos": "nmos", "pmos": "pmos"},
)

#: Registry of known dialects, extended by repro.library.technology.
REGISTRY: Dict[str, Dialect] = {"generic": GENERIC}


def register(dialect: Dialect) -> Dialect:
    """Add a dialect to the registry (idempotent) and return it."""
    REGISTRY[dialect.name] = dialect
    return dialect


def get(name: str) -> Dialect:
    """Fetch a registered dialect by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dialect {name!r}; known: {sorted(REGISTRY)}"
        ) from None


# ----------------------------------------------------------------------
# Model-name classification for parsing foreign netlists
# ----------------------------------------------------------------------

#: Substrings that identify a PMOS model name in the wild.
_PMOS_HINTS = ("pmos", "pch", "pfet", "ph", "pe", "p_")
_NMOS_HINTS = ("nmos", "nch", "nfet", "nh", "ne", "n_")


def classify_model(model: str) -> str:
    """Best-effort mapping of a foundry model name to ``nmos``/``pmos``.

    Checks the registry first, then falls back to naming heuristics
    (the approach real CA flows use when reading third-party CDL).
    """
    lowered = model.lower()
    for dialect in REGISTRY.values():
        for ttype, name in dialect.models.items():
            if name.lower() == lowered:
                return ttype
    for hint in _PMOS_HINTS:
        if lowered.startswith(hint) or hint in lowered:
            return "pmos"
    for hint in _NMOS_HINTS:
        if lowered.startswith(hint) or hint in lowered:
            return "nmos"
    raise ValueError(f"cannot classify device model {model!r}")
