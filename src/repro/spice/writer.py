"""SPICE netlist writer.

Writes :class:`~repro.spice.netlist.CellNetlist` objects back to text in a
chosen :class:`~repro.spice.dialects.Dialect`, so that round-tripping
through a foreign library's conventions can be exercised in tests and
examples (the paper's Section II.A observation that "a transistor label
does not always correspond to the same transistor in two similar cells").
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.spice.dialects import Dialect, GENERIC
from repro.spice.netlist import CellNetlist, Transistor


def format_device(t: Transistor, dialect: Dialect = GENERIC, index: Optional[int] = None) -> str:
    """Format one MOS instance card."""
    name = t.name
    if index is not None:
        name = f"{dialect.device_prefix}{index}"
    elif not name.upper().startswith(dialect.device_prefix.upper()):
        name = f"{dialect.device_prefix}{name}"
    model = dialect.model_for(t.ttype)
    w = dialect.w_format.format(w=t.w)
    l = dialect.l_format.format(l=t.l)
    if dialect.lowercase_params:
        w, l = w.lower(), l.lower()
    parts = [name, t.drain, t.gate, t.source, t.bulk, model, w, l]
    parts.extend(dialect.extra_params)
    return " ".join(parts)


def write_cell(
    cell: CellNetlist,
    dialect: Dialect = GENERIC,
    renumber: bool = False,
    header_comment: str = "",
) -> str:
    """Serialize one cell as a ``.SUBCKT`` block."""
    ports = list(cell.inputs) + list(cell.outputs) + [cell.power, cell.ground]
    lines: List[str] = []
    if header_comment:
        lines.append(f"* {header_comment}")
    lines.append(f".SUBCKT {cell.name} " + " ".join(ports))
    for i, t in enumerate(cell.transistors):
        lines.append(format_device(t, dialect, index=i if renumber else None))
    lines.append(".ENDS")
    return "\n".join(lines) + "\n"


def write_library(
    cells: Iterable[CellNetlist],
    dialect: Dialect = GENERIC,
    renumber: bool = False,
    title: str = "",
) -> str:
    """Serialize a whole library."""
    chunks: List[str] = []
    if title:
        chunks.append(f"* {title}\n")
    for cell in cells:
        chunks.append(write_cell(cell, dialect, renumber=renumber))
    return "\n".join(chunks)
