"""SPICE / CDL subcircuit parser.

Parses the subset of SPICE every standard-cell library netlist uses:

* ``.SUBCKT name port...`` / ``.ENDS`` blocks,
* MOSFET instance cards ``Mname drain gate source bulk model [params]``
  (``X``-prefixed instance cards wrapping a MOS primitive are accepted too),
* ``+`` line continuations, ``*`` comments, ``$``/``;`` trailing comments,
* engineering unit suffixes on parameters (``u``, ``n``, ``m``, ...).

The parser is deliberately forgiving about dialect: rail nets are detected
by conventional names, device polarity is resolved through
:func:`repro.spice.dialects.classify_model`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.spice import dialects
from repro.spice.netlist import CellNetlist, Transistor

_RAIL_POWER = ("vdd", "vcc", "vpwr", "vddd")
_RAIL_GROUND = ("vss", "gnd", "vgnd", "vssd", "0")

_UNIT = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_NUMBER_RE = re.compile(
    r"^([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)(meg|[tgkmunpf])?$", re.IGNORECASE
)


class SpiceSyntaxError(ValueError):
    """Raised when the input text is not parseable SPICE."""


def parse_value(text: str) -> float:
    """Parse a SPICE number with optional engineering suffix."""
    match = _NUMBER_RE.match(text.strip())
    if not match:
        raise SpiceSyntaxError(f"bad numeric value {text!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    if suffix:
        base *= _UNIT[suffix.lower()]
    return base


def _logical_lines(text: str) -> List[str]:
    """Strip comments and join ``+`` continuations."""
    lines: List[str] = []
    for raw in text.splitlines():
        line = raw.split("$", 1)[0].split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not lines:
                raise SpiceSyntaxError("continuation line with nothing to continue")
            lines[-1] += " " + stripped[1:]
        else:
            lines.append(stripped)
    return lines


def _split_params(tokens: Sequence[str]) -> Tuple[List[str], Dict[str, str]]:
    """Separate positional tokens from key=value parameters."""
    positional: List[str] = []
    params: Dict[str, str] = {}
    for tok in tokens:
        if "=" in tok:
            key, _, value = tok.partition("=")
            params[key.lower()] = value
        else:
            positional.append(tok)
    return positional, params


def _is_power(net: str) -> bool:
    return net.lower() in _RAIL_POWER


def _is_ground(net: str) -> bool:
    return net.lower() in _RAIL_GROUND


def parse_library(
    text: str,
    technology: str = "",
    power: Optional[str] = None,
    ground: Optional[str] = None,
) -> List[CellNetlist]:
    """Parse every ``.SUBCKT`` in *text* into a :class:`CellNetlist`.

    Ports are classified as: rails (by name convention or the explicit
    *power*/*ground* arguments), outputs (nets driven by a transistor
    channel but not driving any gate outside... by convention, the ports
    connected to drain/source and never used purely as gates), and inputs
    (everything else).  Standard-cell netlists follow this convention
    reliably; anything ambiguous raises.
    """
    lines = _logical_lines(text)
    cells: List[CellNetlist] = []
    i = 0
    while i < len(lines):
        line = lines[i]
        upper = line.upper()
        if upper.startswith(".SUBCKT"):
            j = i + 1
            while j < len(lines) and not lines[j].upper().startswith(".ENDS"):
                j += 1
            if j >= len(lines):
                raise SpiceSyntaxError(f"unterminated .SUBCKT at line {i}")
            cells.append(
                _parse_subckt(lines[i], lines[i + 1 : j], technology, power, ground)
            )
            i = j + 1
        else:
            i += 1
    return cells


def parse_cell(text: str, technology: str = "", **kw) -> CellNetlist:
    """Parse exactly one subcircuit."""
    cells = parse_library(text, technology=technology, **kw)
    if len(cells) != 1:
        raise SpiceSyntaxError(f"expected exactly one .SUBCKT, found {len(cells)}")
    return cells[0]


def _parse_subckt(
    header: str,
    body: Sequence[str],
    technology: str,
    power: Optional[str],
    ground: Optional[str],
) -> CellNetlist:
    tokens = header.split()
    if len(tokens) < 3:
        raise SpiceSyntaxError(f"malformed .SUBCKT header: {header!r}")
    name = tokens[1]
    ports = tokens[2:]

    transistors: List[Transistor] = []
    for line in body:
        device = _parse_device(line)
        if device is not None:
            transistors.append(device)

    pwr = power or next((p for p in ports if _is_power(p)), None)
    gnd = ground or next((p for p in ports if _is_ground(p)), None)
    if pwr is None or gnd is None:
        raise SpiceSyntaxError(
            f"cannot identify rails among ports {ports} of {name}; "
            "pass power=/ground= explicitly"
        )

    gate_nets = {t.gate for t in transistors}
    channel_nets = set()
    for t in transistors:
        channel_nets.update(t.channel_nets())

    inputs: List[str] = []
    outputs: List[str] = []
    for port in ports:
        if port in (pwr, gnd):
            continue
        if port in channel_nets:
            outputs.append(port)
        elif port in gate_nets:
            inputs.append(port)
        else:
            # Unconnected port: treat as input so the cell still loads.
            inputs.append(port)

    if not outputs:
        raise SpiceSyntaxError(f"cell {name} has no channel-driven port (no output)")

    return CellNetlist(
        name=name,
        inputs=inputs,
        outputs=outputs,
        transistors=transistors,
        power=pwr,
        ground=gnd,
        technology=technology,
    )


def _parse_device(line: str) -> Optional[Transistor]:
    tokens = line.split()
    card = tokens[0]
    kind = card[0].upper()
    if kind not in ("M", "X"):
        if kind in ("R", "C", "D"):
            # Parasitic / decoupling elements in DSPF-flavoured netlists are
            # accepted and ignored: the switch-level model does not use them.
            return None
        raise SpiceSyntaxError(f"unsupported element card: {line!r}")

    positional, params = _split_params(tokens[1:])
    if len(positional) < 5:
        raise SpiceSyntaxError(f"MOS card needs 4 nets + model: {line!r}")
    drain, gate, source, bulk, model = positional[:5]

    ttype = dialects.classify_model(model)
    w = parse_value(params["w"]) * 1e6 if "w" in params else 1.0
    l = parse_value(params["l"]) * 1e6 if "l" in params else 0.1

    return Transistor(
        name=card,
        ttype=ttype,
        drain=drain,
        gate=gate,
        source=source,
        bulk=bulk,
        w=w,
        l=l,
        model=model,
    )
