"""Verilog switch-level export.

Section III.A of the paper notes that "a Verilog simulation, with a CDL
netlist that should be written using NMOS and PMOS primitives, can replace
the single defect-free electrical simulation" for active/passive
identification.  This module emits exactly that artifact: a structural
Verilog module built from the ``nmos`` / ``pmos`` switch primitives, one
per transistor, plus ``supply1``/``supply0`` rails.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.spice.netlist import CellNetlist

_KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "supply0", "supply1",
    "nmos", "pmos", "assign", "begin", "end",
}


def _identifier(net: str) -> str:
    """Make a net name a legal Verilog identifier."""
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in net)
    if not out or out[0].isdigit() or out.lower() in _KEYWORDS:
        out = "n_" + out
    return out


def to_verilog(cell: CellNetlist) -> str:
    """Emit *cell* as a switch-level Verilog module.

    Verilog MOS primitives take ``(drain, source, gate)`` in that order;
    conduction polarity matches the simulator's (NMOS on at 1, PMOS on
    at 0), so a Verilog simulation of this module reproduces the golden
    switch-level behaviour.
    """
    rename: Dict[str, str] = {net: _identifier(net) for net in cell.nets()}
    lines: List[str] = []
    lines.append(f"// generated from cell {cell.name}")
    lines.append(f"module {_identifier(cell.name)} (")
    declarations = [f"  input  {rename[p]}" for p in cell.inputs]
    declarations += [f"  output {rename[p]}" for p in cell.outputs]
    lines.append(",\n".join(declarations))
    lines.append(");")
    lines.append(f"  supply1 {rename[cell.power]};")
    lines.append(f"  supply0 {rename[cell.ground]};")
    internal = sorted(cell.internal_nets())
    for net in internal:
        lines.append(f"  wire {rename[net]};")
    lines.append("")
    for t in cell.transistors:
        primitive = "nmos" if t.is_nmos else "pmos"
        lines.append(
            f"  {primitive} {_identifier(t.name)} "
            f"({rename[t.drain]}, {rename[t.source]}, {rename[t.gate]});"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def to_verilog_library(cells: Iterable[CellNetlist]) -> str:
    """Emit several cells into one Verilog source."""
    return "\n".join(to_verilog(cell) for cell in cells)
