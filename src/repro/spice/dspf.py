"""DSPF-lite parasitic netlist handling.

The conventional flow starts "with a SPICE netlist representation of a
standard cell which is usually derived from a layout description" in DSPF
(Detailed Spice Parasitic Format): logical nets are split into segments
joined by parasitic resistors, with capacitors to ground and between
segments (paper, Section I / Fig. 1).

This module provides the preprocessing a CA flow performs on such input:

* :func:`annotate` — turn a clean cell into a DSPF-flavoured netlist text
  (net segmentation + R/C elements), used by tests and examples to
  exercise the reader;
* :func:`reduce_parasitics` — recover the logical netlist from parsed
  DSPF text by collapsing resistor-connected segment groups back into one
  net (capacitors are dropped; the switch-level model has no use for
  them).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.spice.netlist import CellNetlist
from repro.spice.parser import SpiceSyntaxError, _logical_lines, parse_value


def annotate(
    cell: CellNetlist,
    segments_per_net: int = 2,
    resistance: float = 12.0,
    capacitance: float = 0.15e-15,
) -> str:
    """Serialize *cell* as DSPF-lite text with segmented internal nets.

    Every internal net ``n`` becomes segments ``n`` , ``n__1``, ... joined
    by parasitic resistors; device terminals are spread round-robin over
    the segments; every segment gets a ground capacitor.
    """
    internal = sorted(cell.internal_nets() | set(cell.outputs))
    segment_names: Dict[str, List[str]] = {}
    for net in internal:
        segment_names[net] = [net] + [
            f"{net}__{i}" for i in range(1, segments_per_net)
        ]

    counters: Dict[str, int] = {net: 0 for net in internal}

    def segment_of(net: str) -> str:
        if net not in segment_names:
            return net
        names = segment_names[net]
        index = counters[net] % len(names)
        counters[net] += 1
        return names[index]

    lines = [f".SUBCKT {cell.name} " + " ".join(
        list(cell.inputs) + list(cell.outputs) + [cell.power, cell.ground]
    )]
    for t in cell.transistors:
        drain = segment_of(t.drain)
        gate = segment_of(t.gate)
        source = segment_of(t.source)
        lines.append(
            f"M{t.name} {drain} {gate} {source} {t.bulk} "
            f"{t.model or t.ttype} W={t.w:g}u L={t.l:g}u"
        )
    element = 0
    for net, names in segment_names.items():
        for a, b in zip(names, names[1:]):
            lines.append(f"R{element} {a} {b} {resistance:g}")
            element += 1
        for name in names:
            lines.append(f"C{element} {name} {cell.ground} {capacitance:g}")
            element += 1
    lines.append(".ENDS")
    return "\n".join(lines) + "\n"


def reduce_parasitics(
    text: str,
    power: Optional[str] = None,
    ground: Optional[str] = None,
    max_resistance: float = 1_000.0,
) -> CellNetlist:
    """Parse DSPF-lite text and collapse parasitic segments.

    Resistors up to *max_resistance* are treated as net joints (layout
    parasitics); larger resistors are rejected, since silently merging
    them would hide genuine resistive defects.
    """
    lines = _logical_lines(text)
    if not lines or not lines[0].upper().startswith(".SUBCKT"):
        raise SpiceSyntaxError("DSPF input must start with .SUBCKT")
    header = lines[0].split()
    name, ports = header[1], header[2:]

    # Union-find over nets joined by parasitic resistors.
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(primary: str, secondary: str) -> None:
        ra, rb = find(primary), find(secondary)
        if ra != rb:
            parent[rb] = ra

    device_cards: List[List[str]] = []
    for line in lines[1:]:
        if line.upper().startswith(".ENDS"):
            break
        kind = line[0].upper()
        tokens = line.split()
        if kind == "R":
            if len(tokens) < 4:
                raise SpiceSyntaxError(f"malformed resistor card: {line!r}")
            value = parse_value(tokens[3])
            if value > max_resistance:
                raise SpiceSyntaxError(
                    f"resistor {tokens[0]} ({value:g} ohm) exceeds the "
                    f"parasitic threshold {max_resistance:g}"
                )
            union(tokens[1], tokens[2])
        elif kind == "C":
            continue
        elif kind in ("M", "X"):
            device_cards.append(tokens)
        else:
            raise SpiceSyntaxError(f"unsupported DSPF element: {line!r}")

    # Representative of each joined group: a port name when the group
    # touches one, else the lexicographically smallest member.
    groups: Dict[str, List[str]] = {}
    for net in parent:
        groups.setdefault(find(net), []).append(net)
    canonical: Dict[str, str] = {}
    port_set = set(ports)
    for root, members in groups.items():
        in_ports = sorted(set(members) & port_set)
        canonical[root] = in_ports[0] if in_ports else min(members)

    def resolve(net: str) -> str:
        if net not in parent:
            return net
        return canonical[find(net)]

    body = []
    for tokens in device_cards:
        card = tokens[0] + " " + " ".join(
            [resolve(tokens[1]), resolve(tokens[2]), resolve(tokens[3]), tokens[4]]
            + tokens[5:]
        )
        body.append(card)
    clean = ".SUBCKT {} {}\n{}\n.ENDS\n".format(
        name, " ".join(ports), "\n".join(body)
    )
    from repro.spice.parser import parse_cell

    return parse_cell(clean, power=power, ground=ground)
