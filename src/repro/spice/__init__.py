"""SPICE/CDL netlist model, parser and writer."""

from repro.spice.netlist import (
    NMOS,
    PMOS,
    TERMINALS,
    CellNetlist,
    NetlistError,
    Transistor,
    bulk_rail,
)
from repro.spice.parser import SpiceSyntaxError, parse_cell, parse_library, parse_value
from repro.spice.writer import format_device, write_cell, write_library
from repro.spice.dialects import Dialect, GENERIC, classify_model
from repro.spice.dspf import annotate, reduce_parasitics
from repro.spice.verilog import to_verilog, to_verilog_library

__all__ = [
    "NMOS",
    "PMOS",
    "TERMINALS",
    "Transistor",
    "CellNetlist",
    "NetlistError",
    "bulk_rail",
    "parse_cell",
    "parse_library",
    "parse_value",
    "SpiceSyntaxError",
    "write_cell",
    "write_library",
    "format_device",
    "Dialect",
    "GENERIC",
    "classify_model",
    "annotate",
    "reduce_parasitics",
    "to_verilog",
    "to_verilog_library",
]
