"""The hybrid CA model generation flow (Fig. 7 of the paper).

For every cell to characterize:

1. **Structural analysis** — check whether the training set holds a cell
   with an identical or equivalent structure (Fig. 6) in the same group.
2. **ML path** — if yes, build the CA-matrix and let the group's trained
   classifier predict the detection table; parse it into a CA model.
3. **Simulation path** — otherwise run the conventional flow, and feed
   the newly simulated model back into the training set ("a feedback loop
   uses this new simulated CA model to supplement the training datasets").

Time accounting runs through :class:`~repro.flow.cost.CostModel`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro import obs
from repro.camatrix.matrix import build_matrix
from repro.camatrix.rename import RenamedCell, rename_transistors
from repro.camodel.generate import generate_ca_model
from repro.camodel.model import CAModel
from repro.flow.cost import CostModel, GenerationLedger
from repro.flow.similarity import SimilarityIndex
from repro.flow.structure import EQUIVALENT, IDENTICAL, NONE, StructuralIndex

#: routing verdict of the relaxed (similarity-based) structural analysis
RELAXED = "relaxed"
from repro.learning.datasets import CellSample, GroupKey, stack_group
from repro.learning.evaluate import (
    ClassifierFactory,
    DEFAULT_MAX_GROUP_ROWS,
    default_classifier_factory,
    _apply_parallelism,
    _cap_rows,
)
from repro.library.technology import ElectricalParams
from repro.spice.netlist import CellNetlist


@dataclass
class CellDecision:
    """Outcome of the hybrid flow for one cell."""

    cell_name: str
    group_key: GroupKey
    match: str  # identical / equivalent / none
    route: str  # 'ml' or 'simulate'
    seconds: float
    model: Optional[CAModel] = None
    #: ML prediction accuracy against a reference model, when one was
    #: provided; always ``None`` on the simulation route (the simulated
    #: model *is* the reference)
    accuracy: Optional[float] = None


@dataclass
class HybridReport:
    """Aggregate of one hybrid-flow run (the Section V.C study)."""

    decisions: List[CellDecision] = field(default_factory=list)
    ledger: GenerationLedger = field(default_factory=GenerationLedger)

    def count(self, match: str) -> int:
        return sum(1 for d in self.decisions if d.match == match)

    def fractions(self) -> Dict[str, float]:
        total = max(len(self.decisions), 1)
        out = {
            IDENTICAL: self.count(IDENTICAL) / total,
            EQUIVALENT: self.count(EQUIVALENT) / total,
            NONE: self.count(NONE) / total,
        }
        relaxed = self.count(RELAXED)
        if relaxed:
            out[RELAXED] = relaxed / total
        return out

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {"cells": len(self.decisions)}
        out.update(
            {f"match_{k}": round(v, 4) for k, v in self.fractions().items()}
        )
        out.update(self.ledger.summary())
        # Only ML-routed cells carry a prediction accuracy; simulated cells
        # ARE the reference, and averaging them in (as trivially perfect
        # scores) would overstate the classifier's accuracy.
        accuracies = [
            d.accuracy
            for d in self.decisions
            if d.route == "ml" and d.accuracy is not None
        ]
        if accuracies:
            out["ml_mean_accuracy"] = round(float(np.mean(accuracies)), 4)
        return out


class HybridFlow:
    """Stateful hybrid generator seeded with an existing CA model library."""

    def __init__(
        self,
        training_samples: Sequence[CellSample],
        params: Optional[ElectricalParams] = None,
        classifier_factory: Optional[ClassifierFactory] = None,
        cost_model: Optional[CostModel] = None,
        kinds: Optional[Set[str]] = None,
        max_group_rows: int = DEFAULT_MAX_GROUP_ROWS,
        router: str = "strict",
        similarity_threshold: float = 0.6,
        parallelism: Optional[int] = None,
    ) -> None:
        if router not in ("strict", "relaxed"):
            raise ValueError(f"unknown router {router!r}")
        self.params = params
        self.classifier_factory = classifier_factory or default_classifier_factory(
            parallelism=parallelism
        )
        self.parallelism = parallelism
        self.cost_model = cost_model or CostModel()
        self.kinds = kinds
        self.max_group_rows = max_group_rows
        self.router = router
        self.similarity_threshold = similarity_threshold

        self.report = HybridReport()
        self.index = StructuralIndex()
        self.similarity = SimilarityIndex()
        self._groups: Dict[GroupKey, List[CellSample]] = {}
        for sample in training_samples:
            self._groups.setdefault(sample.group_key, []).append(sample)
            self.index.add(sample.matrix.renamed)
            self.similarity.add(sample.matrix.renamed)
        self._classifiers: Dict[GroupKey, object] = {}

    # ------------------------------------------------------------------
    def _classifier(self, key: GroupKey) -> object:
        clf = self._classifiers.get(key)
        if clf is None:
            group = self._groups[key]
            cap = _cap_rows(group, self.max_group_rows)
            X, y = stack_group(group, kinds=self.kinds, max_rows_per_cell=cap)
            clf = _apply_parallelism(self.classifier_factory(), self.parallelism)
            with obs.tracer().span(
                "learning.fit", group=str(key), rows=len(y), cells=len(group)
            ):
                clf.fit(X, y)
            self._classifiers[key] = clf
        return clf

    def decide(self, cell: CellNetlist, renamed: Optional[RenamedCell] = None) -> str:
        """Structural analysis verdict for one cell."""
        renamed = renamed or rename_transistors(cell, params=self.params)
        return self.index.match(renamed)

    # ------------------------------------------------------------------
    def generate(
        self,
        cell: CellNetlist,
        reference: Optional[CAModel] = None,
        policy: str = "auto",
        quarantined: bool = False,
    ) -> CellDecision:
        """Characterize one cell through the hybrid flow.

        The whole per-cell window — structural analysis (rename + match)
        plus whichever path ran — is one ``flow.cell`` span, and on the ML
        route the *same* wall-clock window is what the ledger records, so
        ledger seconds and span durations agree by construction.  The
        routing verdict is emitted as a structured ``hybrid.route`` event
        with the reason.

        ``quarantined=True`` marks a cell a resilient characterization
        run quarantined (see :mod:`repro.resilience`): it is routed
        straight to the simulation lane — its previous failures mean no
        trustworthy model or training row exists for it — and, like any
        simulated cell, feeds the training set on success.
        """
        tracer = obs.tracer()
        started = time.perf_counter()
        with tracer.span("flow.cell", cell=cell.name) as cell_span:
            with tracer.span("flow.structure", cell=cell.name) as structure_span:
                renamed = rename_transistors(cell, params=self.params)
                if quarantined:
                    match = NONE
                    reason = (
                        "quarantined by characterization run; "
                        "routed to simulation lane"
                    )
                else:
                    match = self.index.match(renamed)
                    reason = f"structural match: {match}"
                    if match == NONE and self.router == "relaxed":
                        # Section V.C extension: admit structurally
                        # *similar* cells.
                        if self.similarity.admits(
                            renamed, self.similarity_threshold
                        ):
                            match = RELAXED
                            reason = (
                                "similarity >= "
                                f"{self.similarity_threshold} (relaxed router)"
                            )
                structure_span.set("match", match)
            route = "ml" if match != NONE else "simulate"
            if route == "simulate" and not quarantined:
                reason = "no structural or similar match in training set"
            obs.events().info(
                "hybrid.route",
                cell=cell.name,
                route=route,
                match=match,
                reason=reason,
                quarantined=quarantined,
            )
            cell_span.set("route", route)
            cell_span.set("match", match)
            cell_span.set("reason", reason)

            if match != NONE:
                with tracer.span("flow.ml", cell=cell.name):
                    with tracer.span("camatrix.build", cell=cell.name):
                        matrix = build_matrix(
                            cell, model=reference, params=self.params,
                            policy=policy, renamed=renamed,
                        )
                    clf = self._classifier(cell.group_key)
                    with tracer.span(
                        "learning.predict", cell=cell.name, rows=matrix.n_rows
                    ):
                        predicted_labels = clf.predict(matrix.features)
                    model = matrix.to_model(predicted_labels)
                # The ML wall time covers rename AND predict: the window
                # opened before the structural analysis, because renaming
                # is work the ML path pays (the simulation path would have
                # paid it anyway, but its cost there is noise).
                seconds = time.perf_counter() - started
                accuracy = None
                if reference is not None and matrix.labels is not None:
                    accuracy = float(
                        (np.asarray(predicted_labels) == matrix.labels).mean()
                    )
                self.ledger_record_ml(cell, seconds, policy)
                decision = CellDecision(
                    cell_name=cell.name,
                    group_key=cell.group_key,
                    match=match,
                    route="ml",
                    seconds=seconds,
                    model=model,
                    accuracy=accuracy,
                )
            else:
                model = generate_ca_model(cell, params=self.params, policy=policy)
                seconds = time.perf_counter() - started
                self.report.ledger.record_simulated(
                    self.cost_model.spice_seconds_for_model(model)
                )
                # Feedback: the simulated model supplements the training set.
                with tracer.span("flow.feedback", cell=cell.name):
                    self._feedback(cell, model)
                # No accuracy for simulated cells: the conventional flow is the
                # reference, so a score here would always be a meaningless 1.0.
                decision = CellDecision(
                    cell_name=cell.name,
                    group_key=cell.group_key,
                    match=match,
                    route="simulate",
                    seconds=seconds,
                    model=model,
                    accuracy=None,
                )
            cell_span.set("seconds", seconds)
        self.report.decisions.append(decision)
        return decision

    def ledger_record_ml(self, cell: CellNetlist, seconds: float, policy: str) -> None:
        self.report.ledger.record_predicted(
            ml_seconds=seconds,
            avoided_spice_seconds=self.cost_model.spice_seconds(cell, policy),
        )

    def _feedback(self, cell: CellNetlist, model: CAModel) -> None:
        from repro.camatrix.pipeline import training_matrix

        matrix = training_matrix(cell, model, self.params)
        sample = CellSample(cell=cell, model=model, matrix=matrix)
        self._groups.setdefault(cell.group_key, []).append(sample)
        self.index.add(matrix.renamed)
        self.similarity.add(matrix.renamed)
        self._classifiers.pop(cell.group_key, None)  # retrain lazily

    # ------------------------------------------------------------------
    def run(
        self,
        cells: Iterable[CellNetlist],
        references: Optional[Dict[str, CAModel]] = None,
        policy: str = "auto",
        quarantined: Optional[Iterable[str]] = None,
    ) -> HybridReport:
        """Characterize a set of cells; returns the aggregate report.

        ``quarantined`` names cells a resilient characterization run
        quarantined (e.g. from
        :func:`repro.resilience.quarantined_cells`); they bypass the ML
        path and go straight to the simulation lane.
        """
        self.report = HybridReport()
        quarantine = set(quarantined or ())
        for cell in cells:
            reference = references.get(cell.name) if references else None
            self.generate(
                cell,
                reference=reference,
                policy=policy,
                quarantined=cell.name in quarantine,
            )
        return self.report
