"""Generation-time cost model (Section V.C arithmetic).

The paper quantifies the hybrid flow's benefit in SPICE-license time:
204 simulated cells cost ~172 days while 205 ML-predicted cells cost
21947 s (~6 h), a 99.7 % reduction on the ML-covered half and ~38 %
overall.  Our substrate is a switch-level simulator, so wall-clock numbers
cannot be compared directly; instead this cost model converts *electrical
simulation counts* into SPICE-license seconds at a calibratable rate and
measures the ML path's real runtime.

The default rate is derived from the paper's own figures: 172 days over
204 cells is ~72.9 ks per cell; industrial cells in that experiment
average tens of thousands of defect/stimulus transient simulations, which
puts the per-simulation cost at roughly two seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.camodel.model import CAModel
from repro.camodel.stimuli import expected_count
from repro.camodel.generate import resolve_policy
from repro.defects.universe import default_universe
from repro.spice.netlist import CellNetlist

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class CostModel:
    """Converts simulation workload into SPICE-license seconds."""

    #: modeled cost of one electrical (SPICE) defect simulation [s]
    seconds_per_spice_simulation: float = 2.0

    def cell_simulation_count(self, cell: CellNetlist, policy: str = "auto") -> int:
        """Electrical simulations the conventional flow needs for *cell*."""
        n_stimuli = expected_count(
            cell.n_inputs, resolve_policy(cell.n_inputs, policy)
        )
        n_defects = len(default_universe(cell))
        return (1 + n_defects) * n_stimuli  # golden pass + every defect

    def spice_seconds(self, cell: CellNetlist, policy: str = "auto") -> float:
        """Modeled SPICE time of conventional generation for *cell*."""
        return self.cell_simulation_count(cell, policy) * self.seconds_per_spice_simulation

    def spice_seconds_for_model(self, model: CAModel) -> float:
        """Modeled SPICE time matching a generated model's recorded count."""
        return model.simulation_count * self.seconds_per_spice_simulation


@dataclass
class GenerationLedger:
    """Accumulates the hybrid flow's time accounting."""

    spice_seconds: float = 0.0
    avoided_spice_seconds: float = 0.0
    ml_seconds: float = 0.0
    n_simulated: int = 0
    n_predicted: int = 0

    def record_simulated(self, modeled_spice_seconds: float) -> None:
        self.spice_seconds += modeled_spice_seconds
        self.n_simulated += 1

    def record_predicted(
        self, ml_seconds: float, avoided_spice_seconds: float
    ) -> None:
        self.ml_seconds += ml_seconds
        self.avoided_spice_seconds += avoided_spice_seconds
        self.n_predicted += 1

    # ------------------------------------------------------------------
    @property
    def ml_side_reduction(self) -> float:
        """Reduction on the ML-covered cells (the paper's 99.7 %)."""
        if self.avoided_spice_seconds <= 0:
            return 0.0
        return 1.0 - self.ml_seconds / self.avoided_spice_seconds

    @property
    def total_reduction(self) -> float:
        """Overall reduction vs all-simulation (the paper's ~38 %)."""
        baseline = self.spice_seconds + self.avoided_spice_seconds
        if baseline <= 0:
            return 0.0
        hybrid = self.spice_seconds + self.ml_seconds
        return 1.0 - hybrid / baseline

    def summary(self) -> dict:
        return {
            "simulated_cells": self.n_simulated,
            "predicted_cells": self.n_predicted,
            "spice_days": round(self.spice_seconds / SECONDS_PER_DAY, 2),
            "avoided_spice_days": round(
                self.avoided_spice_seconds / SECONDS_PER_DAY, 2
            ),
            "ml_hours": round(self.ml_seconds / 3600.0, 3),
            "ml_side_reduction": round(self.ml_side_reduction, 4),
            "total_reduction": round(self.total_reduction, 4),
        }
