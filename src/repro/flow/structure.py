"""Structural analysis for the hybrid flow (Sections V.B / V.C).

Decides, before any prediction, whether the ML path is expected to produce
a high-quality CA model for a new cell:

* **identical** — the training set contains a cell of the same
  (#inputs, #transistors) group with exactly the same transistor structure
  (equal anonymized branch-equation signature);
* **equivalent** — same group, and the signatures become equal after
  collapsing structurally identical parallel copies — precisely the
  "presence or absence of the red net" difference between the two Fig. 6
  high-drive configurations;
* **none** — no structural support; the paper routes such cells to the
  conventional simulation flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.camatrix.branches import EqLeaf, EqNode, EqParallel, EqSeries
from repro.camatrix.rename import RenamedCell

IDENTICAL = "identical"
EQUIVALENT = "equivalent"
NONE = "none"

GroupKey = Tuple[int, int]


def collapse_parallel_duplicates(node: EqNode) -> EqNode:
    """Deduplicate structurally identical parallel operands, recursively.

    ``((1n|1n)&(1n|1n))`` (merged high-drive) and ``((1n&1n)|(1n&1n))``
    (split high-drive) both collapse to ``(1n&1n)`` — the normal form in
    which the two Fig. 6 configurations coincide.
    """
    if isinstance(node, EqLeaf):
        return node
    children = [collapse_parallel_duplicates(c) for c in node.children]  # type: ignore[attr-defined]
    if isinstance(node, EqSeries):
        if len(children) == 1:
            return children[0]
        return EqSeries(*children)
    unique: List[EqNode] = []
    seen: Set[str] = set()
    for child in children:
        key = child.anon()
        if key not in seen:
            seen.add(key)
            unique.append(child)
    if len(unique) == 1:
        return unique[0]
    return EqParallel(*unique)


def exact_signature(renamed: RenamedCell) -> Tuple[str, ...]:
    """Ordered anonymized branch equations (identity of structure)."""
    return renamed.signature


def equivalent_signature(renamed: RenamedCell) -> Tuple[Tuple[int, str], ...]:
    """Signature after drive-collapse normalization.

    Branch levels are kept: an AND2 (inverter driving the output, NAND
    behind it) must not alias a NAND2B (NAND driving the output, inverter
    behind it) even though their collapsed equation *sets* coincide.
    """
    return tuple(
        sorted(
            (branch.level, collapse_parallel_duplicates(branch.equation).anon())
            for branch in renamed.branches
        )
    )


@dataclass
class StructuralIndex:
    """Signature store over a training set, queried per new cell."""

    exact: Dict[GroupKey, Set[Tuple[str, ...]]] = field(default_factory=dict)
    collapsed: Dict[GroupKey, Set[Tuple[str, ...]]] = field(default_factory=dict)
    n_cells: int = 0

    def add(self, renamed: RenamedCell) -> None:
        key = renamed.original.group_key
        self.exact.setdefault(key, set()).add(exact_signature(renamed))
        self.collapsed.setdefault(key, set()).add(equivalent_signature(renamed))
        self.n_cells += 1

    def add_all(self, renamed_cells: Iterable[RenamedCell]) -> None:
        for renamed in renamed_cells:
            self.add(renamed)

    def match(self, renamed: RenamedCell) -> str:
        """Classify a new cell: identical / equivalent / none."""
        key = renamed.original.group_key
        if exact_signature(renamed) in self.exact.get(key, ()):
            return IDENTICAL
        if equivalent_signature(renamed) in self.collapsed.get(key, ()):
            return EQUIVALENT
        return NONE
