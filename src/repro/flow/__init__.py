"""Hybrid generation flow: structural analysis, routing, cost model."""

from repro.flow.structure import (
    EQUIVALENT,
    IDENTICAL,
    NONE,
    StructuralIndex,
    collapse_parallel_duplicates,
    equivalent_signature,
    exact_signature,
)
from repro.flow.cost import CostModel, GenerationLedger, SECONDS_PER_DAY
from repro.flow.similarity import (
    SimilarityIndex,
    branch_profile,
    structural_similarity,
)
from repro.flow.hybrid import RELAXED, CellDecision, HybridFlow, HybridReport

__all__ = [
    "RELAXED",
    "SimilarityIndex",
    "structural_similarity",
    "branch_profile",
    "IDENTICAL",
    "EQUIVALENT",
    "NONE",
    "StructuralIndex",
    "exact_signature",
    "equivalent_signature",
    "collapse_parallel_duplicates",
    "CostModel",
    "GenerationLedger",
    "SECONDS_PER_DAY",
    "HybridFlow",
    "HybridReport",
    "CellDecision",
]
