"""Relaxed structural matching — the paper's flagged improvement.

Section V.C observes that the exact/equivalent structural analysis clears
only ~50 % of C40 cells for ML although ~80 % are in fact predicted well,
and concludes "there is still room for further improvement of the
structural analysis".  This module implements that improvement: a graded
*structural similarity score* between a new cell and the training cells of
its group, from which a relaxed router admits cells the binary analysis
would send to simulation.

The score compares drive-collapsed branch equations level by level:

* branches whose collapsed equations are identical count fully;
* otherwise the equations' operand multisets are compared with a Jaccard
  index, discounted by depth mismatch.

A score of 1.0 corresponds to the EQUIVALENT verdict of
:mod:`repro.flow.structure`; the relaxed router admits cells above a
configurable threshold (default 0.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.camatrix.branches import EqLeaf, EqNode
from repro.camatrix.rename import RenamedCell
from repro.flow.structure import collapse_parallel_duplicates

GroupKey = Tuple[int, int]


def _equation_tokens(node: EqNode, prefix: str = "") -> List[str]:
    """Multiset of structural tokens of one (collapsed) equation.

    Each leaf contributes two tokens: its operator path with the device
    polarity appended, and the bare operator path.  The polarity-less
    token lets dual structures (a NAND and a NOR) register as *related*
    rather than disjoint, which grades the score instead of snapping it
    to zero.
    """
    if isinstance(node, EqLeaf):
        polarity = "n" if node.device.is_nmos else "p"
        return [f"{prefix}{polarity}", prefix or "."]
    symbol = node.symbol  # type: ignore[attr-defined]
    out: List[str] = []
    for child in node.children:  # type: ignore[attr-defined]
        out.extend(_equation_tokens(child, prefix + symbol))
    return out


def _jaccard(a: Sequence[str], b: Sequence[str]) -> float:
    """Multiset Jaccard index."""
    from collections import Counter

    ca, cb = Counter(a), Counter(b)
    intersection = sum((ca & cb).values())
    union = sum((ca | cb).values())
    return intersection / union if union else 1.0


def branch_profile(renamed: RenamedCell) -> List[Tuple[int, List[str]]]:
    """(level, token multiset) per branch, drive-collapsed."""
    profile = []
    for branch in renamed.branches:
        collapsed = collapse_parallel_duplicates(branch.equation)
        profile.append((branch.level, _equation_tokens(collapsed)))
    return profile


def structural_similarity(a: RenamedCell, b: RenamedCell) -> float:
    """Similarity in [0, 1]; 1.0 iff the collapsed structures coincide."""
    profile_a = branch_profile(a)
    profile_b = branch_profile(b)
    if not profile_a or not profile_b:
        return 0.0
    # Greedy one-to-one matching of branches, same level preferred.
    remaining = list(profile_b)
    total = 0.0
    for level_a, tokens_a in profile_a:
        best_index, best_score = -1, -1.0
        for i, (level_b, tokens_b) in enumerate(remaining):
            score = _jaccard(tokens_a, tokens_b)
            if level_a != level_b:
                score *= 0.5
            if score > best_score:
                best_index, best_score = i, score
        if best_index >= 0:
            total += best_score
            remaining.pop(best_index)
    n = max(len(profile_a), len(profile_b))
    return total / n


@dataclass
class SimilarityIndex:
    """Stores training structures; answers best-similarity queries."""

    #: group -> list of training RenamedCells
    entries: Dict[GroupKey, List[RenamedCell]] = field(default_factory=dict)

    def add(self, renamed: RenamedCell) -> None:
        key = renamed.original.group_key
        self.entries.setdefault(key, []).append(renamed)

    def add_all(self, renamed_cells: Iterable[RenamedCell]) -> None:
        for renamed in renamed_cells:
            self.add(renamed)

    def best_match(self, renamed: RenamedCell) -> Tuple[float, Optional[str]]:
        """(best similarity, matching training cell name) within the group."""
        key = renamed.original.group_key
        best_score, best_name = 0.0, None
        for candidate in self.entries.get(key, ()):  # same group only
            score = structural_similarity(renamed, candidate)
            if score > best_score:
                best_score = score
                best_name = candidate.original.name
        return best_score, best_name

    def admits(self, renamed: RenamedCell, threshold: float = 0.6) -> bool:
        """Relaxed routing decision: admit to the ML path?"""
        score, _name = self.best_match(renamed)
        return score >= threshold
