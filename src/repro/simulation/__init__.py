"""Switch-level cell simulation (the SPICE substitute)."""

from repro.simulation.switchgraph import (
    CellTopology,
    DRIVER_RESISTANCE,
    DefectEffect,
    GOLDEN,
    PhaseState,
    SwitchGraph,
)
from repro.simulation.solver import StaticSolver, UnionFind, X
from repro.simulation.packed import PackedRequest, solve_packed
from repro.simulation.phasecache import PhaseCacheStore
from repro.simulation.trace import Trace, capture, dump_vcd, to_vcd
from repro.simulation.engine import (
    CellSimulator,
    SimulationError,
    golden_simulator,
    logic_check,
    solve_words_across,
)

__all__ = [
    "CellTopology",
    "DefectEffect",
    "GOLDEN",
    "PhaseState",
    "SwitchGraph",
    "DRIVER_RESISTANCE",
    "StaticSolver",
    "UnionFind",
    "X",
    "CellSimulator",
    "PackedRequest",
    "PhaseCacheStore",
    "SimulationError",
    "golden_simulator",
    "logic_check",
    "solve_packed",
    "solve_words_across",
    "Trace",
    "capture",
    "to_vcd",
    "dump_vcd",
]
