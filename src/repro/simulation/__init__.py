"""Switch-level cell simulation (the SPICE substitute)."""

from repro.simulation.switchgraph import (
    CellTopology,
    DRIVER_RESISTANCE,
    DefectEffect,
    GOLDEN,
    SwitchGraph,
)
from repro.simulation.solver import StaticSolver, UnionFind, X
from repro.simulation.trace import Trace, capture, dump_vcd, to_vcd
from repro.simulation.engine import (
    CellSimulator,
    SimulationError,
    golden_simulator,
    logic_check,
)

__all__ = [
    "CellTopology",
    "DefectEffect",
    "GOLDEN",
    "SwitchGraph",
    "DRIVER_RESISTANCE",
    "StaticSolver",
    "UnionFind",
    "X",
    "CellSimulator",
    "SimulationError",
    "golden_simulator",
    "logic_check",
    "Trace",
    "capture",
    "to_vcd",
    "dump_vcd",
]
