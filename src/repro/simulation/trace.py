"""Simulation tracing and VCD export.

Records per-net logic states over a pattern sequence and writes standard
VCD (Value Change Dump), so any waveform viewer can inspect golden or
defective cell behaviour — the debugging loop an engineer runs when a
CA detection looks surprising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.simulation.engine import CellSimulator

#: logic code -> VCD value character
_VCD_VALUE = {1: "1", 0: "0", -1: "x", -2: "x"}


@dataclass
class Trace:
    """Per-net logic states over an applied pattern sequence."""

    cell_name: str
    nets: List[str]
    #: applied binary input patterns, one per step
    patterns: List[Tuple[int, ...]]
    #: states[step][net] = logic code (1 / 0 / -1 for X)
    states: List[Dict[str, int]] = field(default_factory=list)

    def of(self, net: str) -> List[int]:
        """The state sequence of one net."""
        return [state[net] for state in self.states]

    def changes(self, net: str) -> List[int]:
        """Step indices at which *net* changes value."""
        sequence = self.of(net)
        return [
            i
            for i in range(1, len(sequence))
            if sequence[i] != sequence[i - 1]
        ]

    def __len__(self) -> int:
        return len(self.states)


def capture(
    simulator: CellSimulator,
    patterns: Sequence[Sequence[int]],
) -> Trace:
    """Run *patterns* through *simulator* with rolling state, recording
    every cell net at every step."""
    cell = simulator.cell
    nets = sorted(cell.nets())
    trace = Trace(cell_name=cell.name, nets=nets, patterns=[])
    prev_codes = None
    for raw in patterns:
        vector = tuple(int(v) for v in raw)
        codes = simulator._phase_with_codes(vector, prev_codes)
        trace.patterns.append(vector)
        trace.states.append(
            {net: codes[simulator.graph.net_index[net]] for net in nets}
        )
        prev_codes = codes
    return trace


def to_vcd(
    trace: Trace,
    timescale: str = "1ns",
    step: int = 10,
) -> str:
    """Render a trace as VCD text."""
    # VCD identifier characters: printable ASCII from '!' onwards
    identifiers = {
        net: chr(33 + i) for i, net in enumerate(trace.nets)
    }
    lines: List[str] = []
    lines.append(f"$comment cell {trace.cell_name} $end")
    lines.append(f"$timescale {timescale} $end")
    lines.append(f"$scope module {trace.cell_name} $end")
    for net in trace.nets:
        lines.append(f"$var wire 1 {identifiers[net]} {net} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    previous: Dict[str, Optional[int]] = {net: None for net in trace.nets}
    for index, state in enumerate(trace.states):
        emitted_time = False
        for net in trace.nets:
            value = state[net]
            if value != previous[net]:
                if not emitted_time:
                    lines.append(f"#{index * step}")
                    emitted_time = True
                lines.append(f"{_VCD_VALUE.get(value, 'x')}{identifiers[net]}")
                previous[net] = value
    lines.append(f"#{len(trace.states) * step}")
    return "\n".join(lines) + "\n"


def dump_vcd(
    trace: Trace,
    path: Union[str, Path],
    timescale: str = "1ns",
) -> Path:
    """Write a trace to a ``.vcd`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_vcd(trace, timescale=timescale))
    return path
