"""Static (single-phase) switch-level solver.

Given fixed boundary values (rails and input sources) and a conduction
state per device, the solver computes a logic code for every net:

``1`` / ``0``
    net is connected (through conducting channels / bridges) to boundary
    nodes that agree, or its solved analog voltage clears the logic
    thresholds;
``X`` (code ``-1``)
    contention whose divider lands between the thresholds, an unknown
    propagated from an unresolved gate, or an unstable feedback loop;
``FLOAT`` (code ``-2``, internal)
    no path to any boundary; resolved by charge retention (memory) or X.

Unknown gate values are handled by Bryant-style ternary envelopes: the
network is resolved once with all unknown devices off and once with all on;
nets where the two extremes agree take that value, others become X.

Contended components (paths to both rails, e.g. through an injected short)
are solved exactly as a linear resistive network (Laplacian solve) and
thresholded with the technology's ``vil``/``vih``.

Two execution paths produce byte-identical results:

* :meth:`StaticSolver.solve` — the scalar reference oracle, one phase at a
  time (the original Python implementation, kept as the ground truth the
  differential tests sweep against);
* :meth:`StaticSolver.solve_batch` — the vectorized kernel: all phases of
  one (cell, defect) pair are stacked into NumPy arrays, device conduction
  is a batched gate lookup, the per-phase union-find is replaced by a
  gather-based connected-components label propagation over the stacked
  conduction masks (the Bryant off/on envelopes become two batched
  resolves), and only the rare contended components drop to the exact
  scalar Laplacian path.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.switchgraph import DeviceRec, SwitchGraph

X = -1
FLOAT = -2
#: internal batch-resolve sentinel: component sees both rails (contention)
CONTENDED = -3
MAX_ITERATIONS = 16

ON, OFF, UNKNOWN = 1, 0, -1


class SolveResult(NamedTuple):
    """Solved per-node codes plus whether charge retention was consulted.

    When ``retention_used`` is False the result is independent of the
    previous pattern (no net floated), which the engine exploits to share
    phase solves across stimuli.
    """

    codes: List[int]
    retention_used: bool


class UnionFind:
    """Array-based union-find with path halving."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        parent = self.parent
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def device_conduction(
    dev: DeviceRec,
    codes: Sequence[int],
    prev_codes: Optional[Sequence[int]],
) -> int:
    """Conduction state of one device given current net codes.

    A gate-open device lags one pattern behind (trapped charge); with no
    history it is non-conducting.
    """
    if dev.gate_open:
        if prev_codes is None:
            return OFF
        gate_value = prev_codes[dev.gate]
    else:
        gate_value = codes[dev.gate]
    if gate_value == 1:
        return ON if dev.is_nmos else OFF
    if gate_value == 0:
        return OFF if dev.is_nmos else ON
    return UNKNOWN


class StaticSolver:
    """Solves one settled phase of a stimulus on one switch graph."""

    def __init__(self, graph: SwitchGraph):
        self.graph = graph
        self.vil = graph.params.vil
        self.vih = graph.params.vih
        self._retention_used = False
        # Retention only matters on nets whose value is ever *read*: the
        # cell output and every gate net.  Internal series-stack nodes
        # float routinely in healthy CMOS; retaining X there is harmless
        # and must not disable the engine's memoryless fast path.
        observable = [False] * graph.n_nodes
        for output in graph.outputs:
            observable[output] = True
        for dev in graph.devices:
            observable[dev.gate] = True
        self._observable = observable
        # Input pins can be pre-seeded with their source value when nothing
        # but the driver resistor touches them (no defect bridge, pin not on
        # any channel): the relaxation then starts with known first-stage
        # conduction, saving one all-unknown iteration.
        channel_nets = set()
        for dev in graph.devices:
            channel_nets.add(dev.drain)
            channel_nets.add(dev.source)
        bridged = set()
        for net_a, net_b, _r in graph.effect.bridges:
            bridged.add(graph.net_index[net_a])
            bridged.add(graph.net_index[net_b])
        self._seedable_pins = [
            (pin, src)
            for pin, src in zip(graph.pin_nodes, graph.source_nodes)
            if pin not in channel_nets and pin not in bridged
        ]
        # Stacked-array views for solve_batch, built on first use.
        self._batch: Optional[_BatchArrays] = None
        # Resolve rows memoized by (conduction mask, source values): the
        # component structure and boundary outcome — including the exact
        # contention solve — are a pure function of that pair, and the
        # fixpoint revisits the same pair constantly.  Batched path only;
        # the scalar path stays the untouched reference oracle.
        self._resolve_cache: Dict[bytes, np.ndarray] = {}

    # ------------------------------------------------------------------
    def solve(
        self,
        input_codes: Sequence[int],
        prev_codes: Optional[Sequence[int]] = None,
    ) -> SolveResult:
        """Return a logic code (1/0/X) per node.

        *prev_codes* is the settled state of the previous pattern; it feeds
        charge retention on floating nets and the lagged conduction of
        gate-open devices.
        """
        graph = self.graph
        fixed = graph.fixed_values(input_codes)

        codes: List[int] = [X] * graph.n_nodes
        for node, value in fixed.items():
            codes[node] = value
        for pin, src in self._seedable_pins:
            codes[pin] = fixed[src]

        for _ in range(MAX_ITERATIONS):
            new_codes, retention_used = self._step(codes, prev_codes, fixed)
            if new_codes == codes:
                # Only the converged step's retention flag matters: floats
                # seen while early iterations still carried X gates are
                # transients that the fixpoint has overwritten.
                return SolveResult(codes, retention_used)
            codes = new_codes

        # Non-convergence (possible only with defect-induced feedback):
        # one more step, anything still changing is marked unknown.
        final, _ = self._step(codes, prev_codes, fixed)
        merged = [c if c == f else X for c, f in zip(codes, final)]
        return SolveResult(merged, True)

    # ------------------------------------------------------------------
    def _step(
        self,
        codes: List[int],
        prev_codes: Optional[Sequence[int]],
        fixed: Dict[int, int],
    ) -> Tuple[List[int], bool]:
        graph = self.graph
        conduction = [
            device_conduction(dev, codes, prev_codes) for dev in graph.devices
        ]
        has_unknown = any(c == UNKNOWN for c in conduction)
        res_off = self._resolve(conduction, unknown_as=OFF, fixed=fixed)
        if has_unknown:
            res_on = self._resolve(conduction, unknown_as=ON, fixed=fixed)
        else:
            res_on = res_off

        self._retention_used = False
        combined: List[int] = []
        for node in range(graph.n_nodes):
            a, b = res_off[node], res_on[node]
            if a == b:
                if a == FLOAT:
                    combined.append(self._retained(node, prev_codes))
                else:
                    combined.append(a)
            elif FLOAT in (a, b):
                driven = b if a == FLOAT else a
                retained = self._retained(node, prev_codes)
                combined.append(driven if driven == retained else X)
            else:
                combined.append(X)
        return combined, self._retention_used

    def _retained(self, node: int, prev_codes: Optional[Sequence[int]]) -> int:
        if self._observable[node]:
            self._retention_used = True
        if prev_codes is None:
            return X
        value = prev_codes[node]
        return value if value in (0, 1) else X

    # ------------------------------------------------------------------
    def _resolve(
        self,
        conduction: Sequence[int],
        unknown_as: int,
        fixed: Dict[int, int],
    ) -> List[int]:
        """Resolve all nodes for one extreme of the unknown devices."""
        graph = self.graph
        uf = UnionFind(graph.n_nodes)

        conducting: List[DeviceRec] = []
        for dev, state in zip(graph.devices, conduction):
            effective = unknown_as if state == UNKNOWN else state
            if effective == ON:
                conducting.append(dev)
                uf.union(dev.drain, dev.source)
        for a, b, _g in graph.static_edges:
            uf.union(a, b)

        # Group nodes per component root.
        members: Dict[int, List[int]] = {}
        for node in range(graph.n_nodes):
            members.setdefault(uf.find(node), []).append(node)

        result: List[int] = [FLOAT] * graph.n_nodes
        for nodes in members.values():
            boundary = [(n, fixed[n]) for n in nodes if n in fixed]
            if not boundary:
                continue  # stays FLOAT
            values = {v for _n, v in boundary}
            if len(values) == 1:
                value = values.pop()
                for n in nodes:
                    result[n] = value
            else:
                self._solve_contention(nodes, conducting, fixed, result)
        return result

    # ------------------------------------------------------------------
    def _solve_contention(
        self,
        nodes: List[int],
        conducting: Sequence[DeviceRec],
        fixed: Dict[int, int],
        result: List[int],
    ) -> None:
        """Exact resistive solve of one contended component."""
        graph = self.graph
        node_set = set(nodes)
        free = [n for n in nodes if n not in fixed]
        for n in nodes:
            if n in fixed:
                result[n] = fixed[n]
        if not free:
            return
        pos = {n: i for i, n in enumerate(free)}

        size = len(free)
        laplacian = np.zeros((size, size))
        injection = np.zeros(size)

        def add_edge(a: int, b: int, g: float) -> None:
            if a not in node_set or b not in node_set or a == b:
                return
            a_free, b_free = a in pos, b in pos
            if a_free:
                laplacian[pos[a], pos[a]] += g
            if b_free:
                laplacian[pos[b], pos[b]] += g
            if a_free and b_free:
                laplacian[pos[a], pos[b]] -= g
                laplacian[pos[b], pos[a]] -= g
            elif a_free:
                injection[pos[a]] += g * fixed[b]
            elif b_free:
                injection[pos[b]] += g * fixed[a]

        for dev in conducting:
            add_edge(dev.drain, dev.source, dev.g_on)
        for a, b, g in graph.static_edges:
            add_edge(a, b, g)

        try:
            voltages = np.linalg.solve(laplacian, injection)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate
            for n in free:
                result[n] = X
            return

        for n in free:
            v = voltages[pos[n]]
            if v >= self.vih:
                result[n] = 1
            elif v <= self.vil:
                result[n] = 0
            else:
                result[n] = X

    # ------------------------------------------------------------------
    # Batched (vectorized) path — byte-identical to solve()
    # ------------------------------------------------------------------
    def _batch_arrays(self) -> "_BatchArrays":
        if self._batch is None:
            self._batch = _BatchArrays(self.graph, self._observable, self._seedable_pins)
        return self._batch

    def solve_batch(
        self,
        vectors: Sequence[Tuple[int, ...]],
        prevs: Optional[Sequence[Optional[Sequence[int]]]] = None,
    ) -> List[SolveResult]:
        """Solve many phases at once; element *i* equals ``solve(vectors[i],
        prevs[i])`` exactly (codes and retention flag).

        All phases are iterated together; a phase drops out of the stacked
        fixpoint as soon as it converges, so per-phase iteration counts
        match the scalar path.  Contended components (the only place float
        arithmetic enters) are delegated to the scalar
        :meth:`_solve_contention`, which keeps the two paths byte-identical.
        """
        batch = len(vectors)
        if batch == 0:
            return []
        ba = self._batch_arrays()
        graph = self.graph
        n = graph.n_nodes
        src_vals = np.asarray(vectors, dtype=np.int16)
        if src_vals.ndim != 2 or src_vals.shape[1] != len(graph.source_nodes):
            raise ValueError(
                f"expected {len(graph.source_nodes)} input values per vector"
            )

        codes = np.full((batch, n), X, dtype=np.int16)
        codes[:, graph.power] = 1
        codes[:, graph.ground] = 0
        codes[:, ba.source_nodes] = src_vals
        if ba.seed_pins.size:
            codes[:, ba.seed_pins] = codes[:, ba.seed_srcs]

        prev = np.full((batch, n), X, dtype=np.int16)
        has_prev = np.zeros(batch, dtype=bool)
        if prevs is not None:
            for i, p in enumerate(prevs):
                if p is not None:
                    prev[i] = np.asarray(p, dtype=np.int16)
                    has_prev[i] = True

        results: List[Optional[SolveResult]] = [None] * batch
        active = np.arange(batch)
        for _ in range(MAX_ITERATIONS):
            new_codes, retention = self._batch_step(
                codes[active], prev[active], has_prev[active], src_vals[active]
            )
            converged = (new_codes == codes[active]).all(axis=1)
            for k in np.where(converged)[0]:
                g = int(active[k])
                results[g] = SolveResult(new_codes[k].tolist(), bool(retention[k]))
            codes[active] = new_codes
            active = active[~converged]
            if active.size == 0:
                break
        if active.size:
            # Non-convergence (defect-induced feedback): one more step,
            # anything still changing is unknown — mirrors the scalar path.
            final, _ = self._batch_step(
                codes[active], prev[active], has_prev[active], src_vals[active]
            )
            merged = np.where(codes[active] == final, codes[active], X)
            for k, g in enumerate(active):
                results[int(g)] = SolveResult(merged[k].tolist(), True)
        return results  # type: ignore[return-value]

    def _batch_step(
        self,
        codes: np.ndarray,
        prev: np.ndarray,
        has_prev: np.ndarray,
        src_vals: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_step` over a stack of phases."""
        ba = self._batch_arrays()
        batch = codes.shape[0]
        if ba.n_devices:
            gate_vals = codes[:, ba.dev_gate]
            if ba.open_cols.size:
                gate_vals[:, ba.open_cols] = prev[:, ba.dev_gate[ba.open_cols]]
            conduction = np.where(
                gate_vals == 1,
                ba.on_if_1[None, :],
                np.where(gate_vals == 0, ba.on_if_0[None, :], UNKNOWN),
            )
            if ba.open_cols.size and not has_prev.all():
                # A gate-open device with no history is non-conducting.
                conduction[np.ix_(~has_prev, ba.open_cols)] = OFF
        else:
            conduction = np.zeros((batch, 0), dtype=np.int16)

        res_off = self._batch_resolve(conduction == ON, src_vals)
        unknown_rows = (conduction == UNKNOWN).any(axis=1)
        if unknown_rows.any():
            res_on = res_off.copy()
            sub = np.where(unknown_rows)[0]
            act_on = conduction[sub] != OFF
            res_on[sub] = self._batch_resolve(act_on, src_vals[sub])
        else:
            res_on = res_off

        retained = np.where((prev == 0) | (prev == 1), prev, X)
        float_off = res_off == FLOAT
        float_on = res_on == FLOAT
        agree = res_off == res_on
        one_float = float_off ^ float_on
        driven = np.where(float_off, res_on, res_off)
        combined = np.where(
            agree,
            np.where(float_off, retained, res_off),
            np.where(
                one_float, np.where(driven == retained, driven, X), X
            ),
        ).astype(np.int16, copy=False)
        # _retained() is consulted exactly when an envelope came up FLOAT;
        # the flag records whether that happened on an observable net.
        retention = ((float_off | float_on) & ba.observable[None, :]).any(axis=1)
        return combined, retention

    def _batch_resolve(
        self, conducting: np.ndarray, src_vals: np.ndarray
    ) -> np.ndarray:
        """Memoizing wrapper over :meth:`_batch_resolve_rows`.

        A resolve row is a pure function of (conduction mask, source
        values); the fixpoint and the Bryant envelopes revisit the same
        pair constantly, so rows are served from ``_resolve_cache`` and
        only the distinct misses go through the vectorized computation.

        The key layout — uint8 conduction mask (untrimmed device count)
        then uint8 source values — is a contract shared with the
        multi-topology kernel: ``simulation.packed._resolve_packed``
        trims its padded rows back to this exact byte sequence so packed
        and per-cell calls read and warm one cache.  Changing the layout
        here requires the same change there.
        """
        batch = conducting.shape[0]
        n = self.graph.n_nodes
        key_mat = np.concatenate(
            [conducting.astype(np.uint8), src_vals.astype(np.uint8)], axis=1
        )
        cache = self._resolve_cache
        result = np.empty((batch, n), dtype=np.int16)
        keys: List[Optional[bytes]] = [None] * batch
        misses: List[int] = []
        for b in range(batch):
            key = key_mat[b].tobytes()
            cached = cache.get(key)
            if cached is not None:
                result[b] = cached
            else:
                keys[b] = key
                misses.append(b)
        if misses:
            rows = np.array(misses, dtype=np.intp)
            solved = self._batch_resolve_rows(
                conducting[rows], src_vals[rows]
            )
            result[rows] = solved
            for k, b in enumerate(misses):
                cache[keys[b]] = solved[k]
        return result

    def _batch_resolve_rows(
        self, conducting: np.ndarray, src_vals: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`_resolve` for one unknown-extreme.

        *conducting* is a (batch, n_devices) bool mask of channels treated
        as ON.  Connected components are found with min-label propagation
        over padded per-node neighbour tables (gathers only — no scatter),
        with pointer-jumping compression; stability implies every active
        edge joins equal labels, i.e. labels are constant per component.
        """
        ba = self._batch_arrays()
        graph = self.graph
        batch = conducting.shape[0]
        n = graph.n_nodes

        edge_active = np.concatenate(
            [
                conducting,
                np.ones((batch, ba.n_static), dtype=bool),
                np.zeros((batch, 1), dtype=bool),  # padding slots
            ],
            axis=1,
        )
        act_slots = edge_active[:, ba.slot_edge]  # batch × n × max_deg
        labels = np.broadcast_to(np.arange(n), (batch, n)).copy()
        while True:
            neighbour = labels[:, ba.slot_node]
            neighbour = np.where(act_slots, neighbour, n)
            new = np.minimum(labels, neighbour.min(axis=2))
            new = np.take_along_axis(new, new, axis=1)  # pointer jumping
            if np.array_equal(new, labels):
                break
            labels = new

        fixed_vals = np.empty((batch, ba.fixed_nodes.size), dtype=np.int16)
        fixed_vals[:, 0] = 1  # power rail
        fixed_vals[:, 1] = 0  # ground rail
        fixed_vals[:, 2:] = src_vals
        rows = np.arange(batch)
        has1 = np.zeros((batch, n), dtype=bool)
        has0 = np.zeros((batch, n), dtype=bool)
        for j, node in enumerate(ba.fixed_nodes):
            root = labels[:, node]
            has1[rows, root] |= fixed_vals[:, j] == 1
            has0[rows, root] |= fixed_vals[:, j] == 0
        root1 = np.take_along_axis(has1, labels, axis=1)
        root0 = np.take_along_axis(has0, labels, axis=1)
        result = np.where(
            root1 & root0,
            CONTENDED,
            np.where(root1, 1, np.where(root0, 0, FLOAT)),
        ).astype(np.int16)

        contended_rows = np.where((result == CONTENDED).any(axis=1))[0]
        for b in contended_rows:
            fixed = {graph.power: 1, graph.ground: 0}
            for i, node in enumerate(graph.source_nodes):
                fixed[node] = int(src_vals[b, i])
            conducting_devs = [
                graph.devices[d] for d in np.where(conducting[b])[0]
            ]
            row = result[b]
            for root in np.unique(labels[b][row == CONTENDED]):
                nodes = np.where(labels[b] == root)[0].tolist()
                self._solve_contention(nodes, conducting_devs, fixed, row)
        return result


class _BatchArrays:
    """Precomputed index arrays shared by every solve_batch call.

    Edges are the device channels (activity varies per phase) followed by
    the static resistive edges (always active) plus one padding slot that
    is never active; ``slot_node``/``slot_edge`` are per-node neighbour
    tables padded to the maximum degree, so label propagation needs only
    gathers.
    """

    def __init__(self, graph: SwitchGraph, observable, seedable_pins):
        devices = graph.devices
        self.n_devices = len(devices)
        self.dev_gate = np.array([d.gate for d in devices], dtype=np.intp)
        self.on_if_1 = np.array(
            [ON if d.is_nmos else OFF for d in devices], dtype=np.int16
        )
        self.on_if_0 = np.array(
            [OFF if d.is_nmos else ON for d in devices], dtype=np.int16
        )
        self.open_cols = np.array(
            [i for i, d in enumerate(devices) if d.gate_open], dtype=np.intp
        )
        self.observable = np.array(observable, dtype=bool)
        self.source_nodes = np.array(graph.source_nodes, dtype=np.intp)
        self.fixed_nodes = np.array(
            [graph.power, graph.ground] + list(graph.source_nodes), dtype=np.intp
        )
        self.seed_pins = np.array([p for p, _s in seedable_pins], dtype=np.intp)
        self.seed_srcs = np.array([s for _p, s in seedable_pins], dtype=np.intp)

        self.n_static = len(graph.static_edges)
        endpoints = [(d.drain, d.source) for d in devices]
        endpoints += [(a, b) for a, b, _g in graph.static_edges]
        n = graph.n_nodes
        incident: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for edge, (a, b) in enumerate(endpoints):
            if a != b:  # self-edges never merge anything
                incident[a].append((edge, b))
                incident[b].append((edge, a))
        max_deg = max((len(slots) for slots in incident), default=0) or 1
        padding_edge = len(endpoints)  # the always-inactive slot
        self.slot_node = np.empty((n, max_deg), dtype=np.intp)
        self.slot_edge = np.empty((n, max_deg), dtype=np.intp)
        for node, slots in enumerate(incident):
            for k in range(max_deg):
                if k < len(slots):
                    self.slot_edge[node, k], self.slot_node[node, k] = slots[k]
                else:
                    self.slot_edge[node, k] = padding_edge
                    self.slot_node[node, k] = node
