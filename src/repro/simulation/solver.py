"""Static (single-phase) switch-level solver.

Given fixed boundary values (rails and input sources) and a conduction
state per device, the solver computes a logic code for every net:

``1`` / ``0``
    net is connected (through conducting channels / bridges) to boundary
    nodes that agree, or its solved analog voltage clears the logic
    thresholds;
``X`` (code ``-1``)
    contention whose divider lands between the thresholds, an unknown
    propagated from an unresolved gate, or an unstable feedback loop;
``FLOAT`` (code ``-2``, internal)
    no path to any boundary; resolved by charge retention (memory) or X.

Unknown gate values are handled by Bryant-style ternary envelopes: the
network is resolved once with all unknown devices off and once with all on;
nets where the two extremes agree take that value, others become X.

Contended components (paths to both rails, e.g. through an injected short)
are solved exactly as a linear resistive network (Laplacian solve) and
thresholded with the technology's ``vil``/``vih``.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.switchgraph import DeviceRec, SwitchGraph

X = -1
FLOAT = -2
MAX_ITERATIONS = 16

ON, OFF, UNKNOWN = 1, 0, -1


class SolveResult(NamedTuple):
    """Solved per-node codes plus whether charge retention was consulted.

    When ``retention_used`` is False the result is independent of the
    previous pattern (no net floated), which the engine exploits to share
    phase solves across stimuli.
    """

    codes: List[int]
    retention_used: bool


class UnionFind:
    """Array-based union-find with path halving."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        parent = self.parent
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def device_conduction(
    dev: DeviceRec,
    codes: Sequence[int],
    prev_codes: Optional[Sequence[int]],
) -> int:
    """Conduction state of one device given current net codes.

    A gate-open device lags one pattern behind (trapped charge); with no
    history it is non-conducting.
    """
    if dev.gate_open:
        if prev_codes is None:
            return OFF
        gate_value = prev_codes[dev.gate]
    else:
        gate_value = codes[dev.gate]
    if gate_value == 1:
        return ON if dev.is_nmos else OFF
    if gate_value == 0:
        return OFF if dev.is_nmos else ON
    return UNKNOWN


class StaticSolver:
    """Solves one settled phase of a stimulus on one switch graph."""

    def __init__(self, graph: SwitchGraph):
        self.graph = graph
        self.vil = graph.params.vil
        self.vih = graph.params.vih
        self._retention_used = False
        # Retention only matters on nets whose value is ever *read*: the
        # cell output and every gate net.  Internal series-stack nodes
        # float routinely in healthy CMOS; retaining X there is harmless
        # and must not disable the engine's memoryless fast path.
        observable = [False] * graph.n_nodes
        for output in graph.outputs:
            observable[output] = True
        for dev in graph.devices:
            observable[dev.gate] = True
        self._observable = observable
        # Input pins can be pre-seeded with their source value when nothing
        # but the driver resistor touches them (no defect bridge, pin not on
        # any channel): the relaxation then starts with known first-stage
        # conduction, saving one all-unknown iteration.
        channel_nets = set()
        for dev in graph.devices:
            channel_nets.add(dev.drain)
            channel_nets.add(dev.source)
        bridged = set()
        for net_a, net_b, _r in graph.effect.bridges:
            bridged.add(graph.net_index[net_a])
            bridged.add(graph.net_index[net_b])
        self._seedable_pins = [
            (pin, src)
            for pin, src in zip(graph.pin_nodes, graph.source_nodes)
            if pin not in channel_nets and pin not in bridged
        ]

    # ------------------------------------------------------------------
    def solve(
        self,
        input_codes: Sequence[int],
        prev_codes: Optional[Sequence[int]] = None,
    ) -> SolveResult:
        """Return a logic code (1/0/X) per node.

        *prev_codes* is the settled state of the previous pattern; it feeds
        charge retention on floating nets and the lagged conduction of
        gate-open devices.
        """
        graph = self.graph
        fixed = graph.fixed_values(input_codes)

        codes: List[int] = [X] * graph.n_nodes
        for node, value in fixed.items():
            codes[node] = value
        for pin, src in self._seedable_pins:
            codes[pin] = fixed[src]

        for _ in range(MAX_ITERATIONS):
            new_codes, retention_used = self._step(codes, prev_codes, fixed)
            if new_codes == codes:
                # Only the converged step's retention flag matters: floats
                # seen while early iterations still carried X gates are
                # transients that the fixpoint has overwritten.
                return SolveResult(codes, retention_used)
            codes = new_codes

        # Non-convergence (possible only with defect-induced feedback):
        # one more step, anything still changing is marked unknown.
        final, _ = self._step(codes, prev_codes, fixed)
        merged = [c if c == f else X for c, f in zip(codes, final)]
        return SolveResult(merged, True)

    # ------------------------------------------------------------------
    def _step(
        self,
        codes: List[int],
        prev_codes: Optional[Sequence[int]],
        fixed: Dict[int, int],
    ) -> Tuple[List[int], bool]:
        graph = self.graph
        conduction = [
            device_conduction(dev, codes, prev_codes) for dev in graph.devices
        ]
        has_unknown = any(c == UNKNOWN for c in conduction)
        res_off = self._resolve(conduction, unknown_as=OFF, fixed=fixed)
        if has_unknown:
            res_on = self._resolve(conduction, unknown_as=ON, fixed=fixed)
        else:
            res_on = res_off

        self._retention_used = False
        combined: List[int] = []
        for node in range(graph.n_nodes):
            a, b = res_off[node], res_on[node]
            if a == b:
                if a == FLOAT:
                    combined.append(self._retained(node, prev_codes))
                else:
                    combined.append(a)
            elif FLOAT in (a, b):
                driven = b if a == FLOAT else a
                retained = self._retained(node, prev_codes)
                combined.append(driven if driven == retained else X)
            else:
                combined.append(X)
        return combined, self._retention_used

    def _retained(self, node: int, prev_codes: Optional[Sequence[int]]) -> int:
        if self._observable[node]:
            self._retention_used = True
        if prev_codes is None:
            return X
        value = prev_codes[node]
        return value if value in (0, 1) else X

    # ------------------------------------------------------------------
    def _resolve(
        self,
        conduction: Sequence[int],
        unknown_as: int,
        fixed: Dict[int, int],
    ) -> List[int]:
        """Resolve all nodes for one extreme of the unknown devices."""
        graph = self.graph
        uf = UnionFind(graph.n_nodes)

        conducting: List[DeviceRec] = []
        for dev, state in zip(graph.devices, conduction):
            effective = unknown_as if state == UNKNOWN else state
            if effective == ON:
                conducting.append(dev)
                uf.union(dev.drain, dev.source)
        for a, b, _g in graph.static_edges:
            uf.union(a, b)

        # Group nodes per component root.
        members: Dict[int, List[int]] = {}
        for node in range(graph.n_nodes):
            members.setdefault(uf.find(node), []).append(node)

        result: List[int] = [FLOAT] * graph.n_nodes
        for nodes in members.values():
            boundary = [(n, fixed[n]) for n in nodes if n in fixed]
            if not boundary:
                continue  # stays FLOAT
            values = {v for _n, v in boundary}
            if len(values) == 1:
                value = values.pop()
                for n in nodes:
                    result[n] = value
            else:
                self._solve_contention(nodes, conducting, fixed, result)
        return result

    # ------------------------------------------------------------------
    def _solve_contention(
        self,
        nodes: List[int],
        conducting: Sequence[DeviceRec],
        fixed: Dict[int, int],
        result: List[int],
    ) -> None:
        """Exact resistive solve of one contended component."""
        graph = self.graph
        node_set = set(nodes)
        free = [n for n in nodes if n not in fixed]
        for n in nodes:
            if n in fixed:
                result[n] = fixed[n]
        if not free:
            return
        pos = {n: i for i, n in enumerate(free)}

        size = len(free)
        laplacian = np.zeros((size, size))
        injection = np.zeros(size)

        def add_edge(a: int, b: int, g: float) -> None:
            if a not in node_set or b not in node_set or a == b:
                return
            a_free, b_free = a in pos, b in pos
            if a_free:
                laplacian[pos[a], pos[a]] += g
            if b_free:
                laplacian[pos[b], pos[b]] += g
            if a_free and b_free:
                laplacian[pos[a], pos[b]] -= g
                laplacian[pos[b], pos[a]] -= g
            elif a_free:
                injection[pos[a]] += g * fixed[b]
            elif b_free:
                injection[pos[b]] += g * fixed[a]

        for dev in conducting:
            add_edge(dev.drain, dev.source, dev.g_on)
        for a, b, g in graph.static_edges:
            add_edge(a, b, g)

        try:
            voltages = np.linalg.solve(laplacian, injection)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate
            for n in free:
                result[n] = X
            return

        for n in free:
            v = voltages[pos[n]]
            if v >= self.vih:
                result[n] = 1
            elif v <= self.vil:
                result[n] = 0
            else:
                result[n] = X
