"""Cross-topology packed solving: many cells/defects, one NumPy kernel call.

:meth:`~repro.simulation.solver.StaticSolver.solve_batch` vectorizes the
phases of **one** (cell, defect) switch graph.  At library scale that
still means hundreds of small kernel calls — one or two per defect — and
on small cells the fixed per-call NumPy overhead dominates the actual
arithmetic.  :func:`solve_packed` removes that wall: it takes phase
batches from **many** solvers (different defects of one cell, different
cells entirely) and runs them through a single padded kernel.

Mechanics
---------
Every distinct solver becomes one *topology slot*: its index arrays
(device gates, neighbour tables, fixed nodes, …) are padded to the
maximum node/device/degree count across the pack and stacked along a
leading slot axis.  Every requested phase becomes one *row* carrying the
slot index of its topology; per-step gathers (``stacked[topo_idx]``)
give each row its own graph.  Rows then iterate exactly like
``solve_batch``: per-row convergence dropout, Bryant off/on envelopes as
two sub-resolves, min-label propagation for connected components, and a
scalar exact-Laplacian fallback for the rare contended components.

Padding is inert by construction:

* one extra **scrap node** (shared column ``N-1``) absorbs the padded
  slots of source/seed scatter tables; it is isolated, unobservable, and
  pinned to ``X`` after initialization, so it can never delay a row's
  convergence;
* padded **device** columns read their gate from the row's ground rail
  and map ``0`` to OFF, so they never conduct and never go unknown;
* padded **fixed-node** columns alias the ground rail with value 0, so
  they re-assert a boundary fact that is already true.

Identity guarantee
------------------
``solve_packed(requests)[i][j]`` equals
``requests[i].solver.solve(requests[i].vectors[j], ...)`` exactly —
codes and retention flag — for the same reason ``solve_batch`` does: all
logic-level work is integer, per-row iteration counts match the scalar
path, and contention (the only float arithmetic) is delegated to the
same scalar :meth:`~repro.simulation.solver.StaticSolver._solve_contention`.
The per-solver resolve-row memo (``_resolve_cache``) is keyed on the
*trimmed* (conduction mask, source values) pair, byte-compatible with
the keys ``solve_batch`` writes, so packed and per-cell calls share one
cache.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.simulation.solver import (
    CONTENDED,
    FLOAT,
    MAX_ITERATIONS,
    OFF,
    ON,
    UNKNOWN,
    SolveResult,
    StaticSolver,
    X,
)


#: padding-waste accounting of the packed kernel (registered in
#: repro.lint.catalog): total row×column slots each call allocates, and
#: how many of them are padding (rows shorter than the widest topology).
M_KERNEL_SLOTS = "throughput.kernel_slots"
M_PADDED_SLOTS = "throughput.padded_slots"


class PackedRequest(NamedTuple):
    """One solver's share of a packed kernel call."""

    solver: StaticSolver
    vectors: Sequence[Tuple[int, ...]]
    prevs: Optional[Sequence[Optional[Sequence[int]]]] = None


class _PackedTopo:
    """Stacked, padded per-solver index arrays (one slot per solver).

    Shapes: ``S`` solvers, ``N`` node columns (max nodes + 1 scrap),
    ``D`` device columns, ``E = D + max_static + 1`` edge slots (device
    channels, then static edges, then one never-active padding edge).
    """

    def __init__(self, solvers: Sequence[StaticSolver]):
        bas = [s._batch_arrays() for s in solvers]
        graphs = [s.graph for s in solvers]
        self.solvers = list(solvers)
        S = len(solvers)
        self.n_nodes = np.array([g.n_nodes for g in graphs], dtype=np.intp)
        self.n_devices = np.array([ba.n_devices for ba in bas], dtype=np.intp)
        self.n_inputs = np.array(
            [len(g.source_nodes) for g in graphs], dtype=np.intp
        )
        N = int(self.n_nodes.max()) + 1  # + scrap column
        D = int(self.n_devices.max()) if S else 0
        max_static = max(ba.n_static for ba in bas)
        max_deg = max(ba.slot_node.shape[1] for ba in bas)
        max_in = int(self.n_inputs.max())
        max_fixed = 2 + max_in
        max_seed = max(ba.seed_pins.size for ba in bas)
        self.N, self.D = N, D
        self.E = D + max_static + 1
        self.scrap = N - 1

        self.power = np.array([g.power for g in graphs], dtype=np.intp)
        self.ground = np.array([g.ground for g in graphs], dtype=np.intp)

        # Devices: padded columns gate on the ground rail (always 0) and
        # map 0 -> OFF, so they never conduct and never go unknown.
        self.dev_gate = np.empty((S, D), dtype=np.intp)
        self.on_if_1 = np.full((S, D), OFF, dtype=np.int16)
        self.on_if_0 = np.full((S, D), OFF, dtype=np.int16)
        self.is_open = np.zeros((S, D), dtype=bool)
        self.observable = np.zeros((S, N), dtype=bool)
        self.src_nodes = np.full((S, max_in), self.scrap, dtype=np.intp)
        self.fixed_nodes = np.empty((S, max_fixed), dtype=np.intp)
        self.seed_pins = np.full((S, max_seed), self.scrap, dtype=np.intp)
        self.seed_srcs = np.full((S, max_seed), self.scrap, dtype=np.intp)
        self.static_active = np.zeros((S, max_static), dtype=bool)
        self.slot_node = np.empty((S, N, max_deg), dtype=np.intp)
        self.slot_edge = np.full((S, N, max_deg), self.E - 1, dtype=np.intp)
        self.any_open = np.zeros(S, dtype=bool)

        for s, (ba, graph) in enumerate(zip(bas, graphs)):
            d = ba.n_devices
            self.dev_gate[s, :d] = ba.dev_gate
            self.dev_gate[s, d:] = graph.ground
            self.on_if_1[s, :d] = ba.on_if_1
            self.on_if_0[s, :d] = ba.on_if_0
            self.is_open[s, ba.open_cols] = True
            self.any_open[s] = bool(ba.open_cols.size)
            self.observable[s, : ba.observable.size] = ba.observable
            self.src_nodes[s, : ba.source_nodes.size] = ba.source_nodes
            self.fixed_nodes[s] = graph.ground  # padding re-asserts ground=0
            self.fixed_nodes[s, : ba.fixed_nodes.size] = ba.fixed_nodes
            self.seed_pins[s, : ba.seed_pins.size] = ba.seed_pins
            self.seed_srcs[s, : ba.seed_srcs.size] = ba.seed_srcs
            self.static_active[s, : ba.n_static] = True
            # Remap this solver's edge indices into the packed edge space:
            # devices keep their column, static edge j -> D + j, and the
            # solver's own padding edge (index d + n_static) -> E - 1.
            n = graph.n_nodes
            node_tab = np.broadcast_to(
                np.arange(N)[:, None], (N, max_deg)
            ).copy()
            edge_tab = np.full((N, max_deg), self.E - 1, dtype=np.intp)
            deg = ba.slot_node.shape[1]
            src_edges = ba.slot_edge
            remapped = np.where(
                src_edges < d,
                src_edges,
                np.where(
                    src_edges < d + ba.n_static,
                    src_edges - d + D,
                    self.E - 1,
                ),
            )
            edge_tab[:n, :deg] = remapped
            node_tab[:n, :deg] = ba.slot_node
            # A solver's padding slots point the node back at itself; keep
            # that (node_tab already holds slot_node verbatim).
            self.slot_node[s] = node_tab
            self.slot_edge[s] = edge_tab


def _resolve_packed_rows(
    pk: _PackedTopo,
    conducting: np.ndarray,
    src_vals: np.ndarray,
    topo_idx: np.ndarray,
) -> np.ndarray:
    """Vectorized resolve of one unknown-extreme across topologies."""
    batch = conducting.shape[0]
    N = pk.N
    rows = np.arange(batch)
    edge_active = np.concatenate(
        [
            conducting,
            pk.static_active[topo_idx],
            np.zeros((batch, 1), dtype=bool),
        ],
        axis=1,
    )
    slot_edge = pk.slot_edge[topo_idx]  # batch x N x deg
    slot_node = pk.slot_node[topo_idx]
    act_slots = edge_active[rows[:, None, None], slot_edge]
    labels = np.broadcast_to(np.arange(N), (batch, N)).copy()
    while True:
        neighbour = labels[rows[:, None, None], slot_node]
        neighbour = np.where(act_slots, neighbour, N)
        new = np.minimum(labels, neighbour.min(axis=2))
        new = np.take_along_axis(new, new, axis=1)  # pointer jumping
        if np.array_equal(new, labels):
            break
        labels = new

    fnodes = pk.fixed_nodes[topo_idx]  # batch x max_fixed
    max_fixed = fnodes.shape[1]
    fixed_vals = np.zeros((batch, max_fixed), dtype=np.int16)
    fixed_vals[:, 0] = 1  # power rail
    fixed_vals[:, 2:] = src_vals  # padded sources carry 0 (alias ground)
    has1 = np.zeros((batch, N), dtype=bool)
    has0 = np.zeros((batch, N), dtype=bool)
    for j in range(max_fixed):
        root = labels[rows, fnodes[:, j]]
        has1[rows, root] |= fixed_vals[:, j] == 1
        has0[rows, root] |= fixed_vals[:, j] == 0
    root1 = np.take_along_axis(has1, labels, axis=1)
    root0 = np.take_along_axis(has0, labels, axis=1)
    result = np.where(
        root1 & root0,
        CONTENDED,
        np.where(root1, 1, np.where(root0, 0, FLOAT)),
    ).astype(np.int16)

    contended_rows = np.where((result == CONTENDED).any(axis=1))[0]
    for b in contended_rows:
        solver = pk.solvers[int(topo_idx[b])]
        graph = solver.graph
        fixed = {graph.power: 1, graph.ground: 0}
        for i, node in enumerate(graph.source_nodes):
            fixed[node] = int(src_vals[b, i])
        d = len(graph.devices)
        conducting_devs = [
            graph.devices[k] for k in np.where(conducting[b, :d])[0]
        ]
        row = result[b]
        for root in np.unique(labels[b][row == CONTENDED]):
            nodes = np.where(labels[b] == root)[0].tolist()
            solver._solve_contention(nodes, conducting_devs, fixed, row)
    return result


def _resolve_packed(
    pk: _PackedTopo,
    conducting: np.ndarray,
    src_vals: np.ndarray,
    topo_idx: np.ndarray,
) -> np.ndarray:
    """Memoizing wrapper over :func:`_resolve_packed_rows`.

    Keys are byte-compatible with
    :meth:`~repro.simulation.solver.StaticSolver._batch_resolve` (the
    *trimmed* conduction mask and source values), so packed flushes warm
    the same per-solver cache the per-cell kernel reads.
    """
    batch = conducting.shape[0]
    result = np.full((batch, pk.N), FLOAT, dtype=np.int16)
    misses: List[int] = []
    keys: List[Optional[bytes]] = [None] * batch
    for b in range(batch):
        t = int(topo_idx[b])
        solver = pk.solvers[t]
        d = int(pk.n_devices[t])
        m = int(pk.n_inputs[t])
        key = (
            conducting[b, :d].astype(np.uint8).tobytes()
            + src_vals[b, :m].astype(np.uint8).tobytes()
        )
        cached = solver._resolve_cache.get(key)
        if cached is not None:
            result[b, : cached.size] = cached
        else:
            keys[b] = key
            misses.append(b)
    if misses:
        rows = np.array(misses, dtype=np.intp)
        solved = _resolve_packed_rows(
            pk, conducting[rows], src_vals[rows], topo_idx[rows]
        )
        result[rows] = solved
        for k, b in enumerate(misses):
            t = int(topo_idx[b])
            n = int(pk.n_nodes[t])
            pk.solvers[t]._resolve_cache[keys[b]] = solved[k, :n].copy()
    return result


def _step_packed(
    pk: _PackedTopo,
    codes: np.ndarray,
    prev: np.ndarray,
    has_prev: np.ndarray,
    src_vals: np.ndarray,
    topo_idx: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One packed fixpoint step (mirrors ``StaticSolver._batch_step``)."""
    batch = codes.shape[0]
    rows = np.arange(batch)
    if pk.D:
        dev_gate = pk.dev_gate[topo_idx]  # batch x D
        gate_vals = codes[rows[:, None], dev_gate]
        is_open = pk.is_open[topo_idx]
        if pk.any_open.any():
            gate_vals = np.where(
                is_open, prev[rows[:, None], dev_gate], gate_vals
            )
        conduction = np.where(
            gate_vals == 1,
            pk.on_if_1[topo_idx],
            np.where(gate_vals == 0, pk.on_if_0[topo_idx], UNKNOWN),
        )
        if pk.any_open.any() and not has_prev.all():
            # A gate-open device with no history is non-conducting.
            conduction = np.where(
                is_open & ~has_prev[:, None], OFF, conduction
            )
    else:  # pragma: no cover - degenerate (no devices anywhere)
        conduction = np.zeros((batch, 0), dtype=np.int16)

    res_off = _resolve_packed(pk, conduction == ON, src_vals, topo_idx)
    unknown_rows = (conduction == UNKNOWN).any(axis=1)
    if unknown_rows.any():
        res_on = res_off.copy()
        sub = np.where(unknown_rows)[0]
        act_on = conduction[sub] != OFF
        res_on[sub] = _resolve_packed(
            pk, act_on, src_vals[sub], topo_idx[sub]
        )
    else:
        res_on = res_off

    retained = np.where((prev == 0) | (prev == 1), prev, X)
    float_off = res_off == FLOAT
    float_on = res_on == FLOAT
    agree = res_off == res_on
    one_float = float_off ^ float_on
    driven = np.where(float_off, res_on, res_off)
    combined = np.where(
        agree,
        np.where(float_off, retained, res_off),
        np.where(one_float, np.where(driven == retained, driven, X), X),
    ).astype(np.int16, copy=False)
    observable = pk.observable[topo_idx]
    retention = ((float_off | float_on) & observable).any(axis=1)
    return combined, retention


def solve_packed(
    requests: Sequence[PackedRequest],
) -> List[List[SolveResult]]:
    """Solve every request's phases in one padded multi-topology kernel.

    Element ``[i][j]`` equals
    ``requests[i].solver.solve(requests[i].vectors[j], prevs[j])``
    exactly (codes and retention flag).  Solvers may repeat across
    requests; each distinct solver occupies one topology slot.
    """
    requests = [r for r in requests if len(r.vectors)]
    if not requests:
        return []
    solvers: List[StaticSolver] = []
    slot_of = {}
    for req in requests:
        if id(req.solver) not in slot_of:
            slot_of[id(req.solver)] = len(solvers)
            solvers.append(req.solver)
    pk = _PackedTopo(solvers)
    N = pk.N

    counts = [len(r.vectors) for r in requests]
    batch = sum(counts)
    topo_idx = np.empty(batch, dtype=np.intp)
    max_in = pk.src_nodes.shape[1]
    src_vals = np.zeros((batch, max_in), dtype=np.int16)
    prev = np.full((batch, N), X, dtype=np.int16)
    has_prev = np.zeros(batch, dtype=bool)
    offset = 0
    for req in requests:
        t = slot_of[id(req.solver)]
        graph = req.solver.graph
        n_in = len(graph.source_nodes)
        vals = np.asarray(req.vectors, dtype=np.int16)
        if vals.ndim != 2 or vals.shape[1] != n_in:
            raise ValueError(
                f"expected {n_in} input values per vector for "
                f"{graph.cell.name}"
            )
        stop = offset + len(req.vectors)
        topo_idx[offset:stop] = t
        src_vals[offset:stop, :n_in] = vals
        if req.prevs is not None:
            for i, p in enumerate(req.prevs):
                if p is not None:
                    prev[offset + i, : len(p)] = np.asarray(p, dtype=np.int16)
                    has_prev[offset + i] = True
        offset = stop

    rows = np.arange(batch)
    codes = np.full((batch, N), X, dtype=np.int16)
    codes[rows, pk.power[topo_idx]] = 1
    codes[rows, pk.ground[topo_idx]] = 0
    codes[rows[:, None], pk.src_nodes[topo_idx]] = src_vals
    if pk.seed_pins.shape[1]:
        seed_pins = pk.seed_pins[topo_idx]
        seed_srcs = pk.seed_srcs[topo_idx]
        codes[rows[:, None], seed_pins] = codes[rows[:, None], seed_srcs]
    # The scrap column absorbed every padded scatter slot; pin it back to
    # X so it can never perturb a row's convergence count.
    codes[:, pk.scrap] = X

    flat: List[Optional[SolveResult]] = [None] * batch
    n_of_row = pk.n_nodes[topo_idx]
    # Padding waste of this call: every row spans N columns, but only
    # its own topology's nodes do real work (the inspect `cache` report
    # reads these to quantify mixed-size-library packing overhead).
    obs.metrics().inc(M_KERNEL_SLOTS, float(batch * N))
    obs.metrics().inc(M_PADDED_SLOTS, float(batch * N - int(n_of_row.sum())))
    active = rows.copy()
    for _ in range(MAX_ITERATIONS):
        new_codes, retention = _step_packed(
            pk,
            codes[active],
            prev[active],
            has_prev[active],
            src_vals[active],
            topo_idx[active],
        )
        converged = (new_codes == codes[active]).all(axis=1)
        for k in np.where(converged)[0]:
            g = int(active[k])
            flat[g] = SolveResult(
                new_codes[k, : n_of_row[g]].tolist(), bool(retention[k])
            )
        codes[active] = new_codes
        active = active[~converged]
        if active.size == 0:
            break
    if active.size:
        # Non-convergence (defect-induced feedback): one more step,
        # anything still changing is unknown — mirrors the scalar path.
        final, _ = _step_packed(
            pk,
            codes[active],
            prev[active],
            has_prev[active],
            src_vals[active],
            topo_idx[active],
        )
        merged = np.where(codes[active] == final, codes[active], X)
        for k, g in enumerate(active):
            g = int(g)
            flat[g] = SolveResult(merged[k, : n_of_row[g]].tolist(), True)

    out: List[List[SolveResult]] = []
    offset = 0
    for count in counts:
        out.append(flat[offset : offset + count])  # type: ignore[arg-type]
        offset += count
    return out
