"""On-disk phase-cache store: solved phases persisted across runs.

The in-memory caches of :class:`~repro.simulation.switchgraph.PhaseState`
die with the process, so every library run re-solves the same golden and
defect phases of the same cells.  A :class:`PhaseCacheStore` persists
them: one JSON file per (cell netlist, electrical params, driver
resistance, effect signature), addressed by a content hash over exactly
those inputs — a changed netlist or changed parameters can never be
served stale phases, they simply hash to a different file.

Loading is **prefetch, not cache-fill**: persisted phases land in the
``prefetch_*`` dicts of the signature's
:class:`~repro.simulation.switchgraph.PhaseState`, and the engine pops
them at the exact point the solver would otherwise have run — with the
same counter increments.  A warm-store run therefore produces models
*and* cost accounting byte-identical to a cold run, which is what lets
resumed library runs keep the PR 4 canonical-artifact guarantee while
skipping the solves entirely.

Writes go through the repo-wide temp-file + ``os.replace`` discipline,
and the payload is canonically ordered, so concurrent writers of the
same signature race benignly: they write byte-identical files.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.simulation.solver import SolveResult
from repro.simulation.switchgraph import CellTopology, PhaseState
from repro.spice.writer import write_cell

PHASECACHE_FORMAT = 1

# obs metric names (registered in repro.lint.catalog)
M_PHASECACHE_LOADS = "phasecache.loads"
M_PHASECACHE_MISSES = "phasecache.misses"
M_PHASECACHE_STORES = "phasecache.stores"

#: JSON stand-in for ``float("inf")`` drive resistances (strict JSON has
#: no Infinity literal; None round-trips through every parser).
_INF = None


class PhaseCacheError(RuntimeError):
    """A phase-cache directory cannot be used as requested."""


def _atomic_write(path: Path, payload: Dict) -> None:
    # Same discipline as repro.camodel.io / resilience.ledger, local copy
    # because simulation must not import camodel (dependency direction).
    tmp = path.parent / f".{path.name}.tmp{os.getpid()}"
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def _encode_resistance(value: float):
    return _INF if value == float("inf") else value


def _decode_resistance(value) -> float:
    return float("inf") if value is None else float(value)


def signature_fingerprint(
    topology: CellTopology, signature: tuple
) -> str:
    """Content hash addressing one (topology, effect signature) file.

    Hashes the written netlist text, the electrical params, the driver
    resistance and the canonicalized signature — everything a solved
    phase depends on.
    """
    removed, gate_open, bridges = signature
    blob = json.dumps(
        {
            "format": PHASECACHE_FORMAT,
            "cell_text": write_cell(topology.cell),
            "params": asdict(topology.params),
            "driver_resistance": topology.driver_resistance,
            "removed": sorted(removed),
            "gate_open": sorted(gate_open),
            # Order preserved: it is part of the signature (float
            # summation order in contention solves).
            "bridges": [[a, b, r] for a, b, r in bridges],
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


class PhaseCacheStore:
    """Directory of persisted solved phases, content-keyed per signature.

    Attach to a topology with
    :meth:`CellTopology.attach_phase_store`; call :meth:`save` after a
    cell's characterization to persist what the run solved (merged with
    anything the store already held for the signature).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise PhaseCacheError(
                f"phase-cache path {self.root} exists and is not a directory"
            )
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, topology: CellTopology, signature: tuple) -> Path:
        digest = signature_fingerprint(topology, signature)
        return self.root / f"{topology.cell.name}-{digest}.json"

    # ------------------------------------------------------------------
    def _read_payload(
        self, path: Path
    ) -> Optional[Tuple[Dict, Dict, Dict]]:
        """Parse one store file into (memoryless, history, drive) dicts.

        Corrupt files are reported (``phasecache.corrupt`` event) and
        treated as absent — the run simply solves from scratch and
        overwrites them on save.
        """
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (ValueError, OSError) as exc:
            obs.events().warning(
                "phasecache.corrupt",
                path=str(path),
                kind=type(exc).__name__,
                error=str(exc),
                msg=f"unreadable phase-cache file {path}; ignoring it",
            )
            return None
        if data.get("format") != PHASECACHE_FORMAT:
            obs.events().warning(
                "phasecache.corrupt",
                path=str(path),
                kind="format",
                error=str(data.get("format")),
                msg=f"unsupported phase-cache format in {path}; ignoring it",
            )
            return None
        memoryless: Dict[tuple, SolveResult] = {}
        history: Dict[tuple, List[int]] = {}
        drive: Dict[tuple, float] = {}
        try:
            for vector, codes, retention in data["memoryless"]:
                memoryless[tuple(vector)] = SolveResult(
                    [int(c) for c in codes], bool(retention)
                )
            for vector, observed, codes in data["history"]:
                key = (tuple(vector), tuple(observed))
                history[key] = [int(c) for c in codes]
            for first, second, out, resistance in data["drive"]:
                key = (tuple(first), tuple(second), int(out))
                drive[key] = _decode_resistance(resistance)
        except (KeyError, TypeError, ValueError) as exc:
            obs.events().warning(
                "phasecache.corrupt",
                path=str(path),
                kind=type(exc).__name__,
                error=str(exc),
                msg=f"malformed phase-cache payload in {path}; ignoring it",
            )
            return None
        return memoryless, history, drive

    def load_into(
        self,
        topology: CellTopology,
        signature: tuple,
        state: PhaseState,
    ) -> bool:
        """Prefetch one signature's persisted phases into *state*.

        Returns True when a valid file was loaded.
        """
        path = self.path_for(topology, signature)
        payload = self._read_payload(path)
        if payload is None:
            obs.metrics().inc(M_PHASECACHE_MISSES)
            return False
        memoryless, history, drive = payload
        state.prefetch_memoryless.update(memoryless)
        state.prefetch_history.update(history)
        state.prefetch_drive.update(drive)
        obs.metrics().inc(M_PHASECACHE_LOADS)
        return True

    # ------------------------------------------------------------------
    def save(self, topology: CellTopology) -> List[Path]:
        """Persist every signature the topology solved phases for.

        The written payload is the union of what the file already holds,
        any prefetched-but-unused entries, and the settled caches, so
        repeated save/load cycles are lossless and concurrent writers
        (e.g. defect-chunk pool workers of one cell) converge to the
        union.  Entries are canonically sorted, so equal content always
        produces equal bytes.
        """
        written: List[Path] = []
        for signature, state in topology._phase_states.items():
            path = self.path_for(topology, signature)
            existing = self._read_payload(path)
            memoryless: Dict[tuple, SolveResult] = (
                dict(existing[0]) if existing else {}
            )
            history: Dict[tuple, List[int]] = (
                dict(existing[1]) if existing else {}
            )
            drive: Dict[tuple, float] = dict(existing[2]) if existing else {}
            memoryless.update(state.prefetch_memoryless)
            memoryless.update(state.memoryless)
            history.update(state.prefetch_history)
            history.update(state.history)
            drive.update(state.prefetch_drive)
            drive.update(state.drive)
            if not (memoryless or history or drive):
                continue
            payload = {
                "format": PHASECACHE_FORMAT,
                "cell": topology.cell.name,
                "memoryless": [
                    [list(vector), list(result.codes), result.retention_used]
                    for vector, result in sorted(memoryless.items())
                ],
                "history": [
                    [list(vector), list(observed), list(codes)]
                    for (vector, observed), codes in sorted(history.items())
                ],
                "drive": [
                    [
                        list(first),
                        list(second),
                        out,
                        _encode_resistance(resistance),
                    ]
                    for (first, second, out), resistance in sorted(
                        drive.items()
                    )
                ],
            }
            _atomic_write(path, payload)
            written.append(path)
        if written:
            obs.metrics().inc(M_PHASECACHE_STORES, len(written))
        return written


def attach_store(
    topology: CellTopology,
    phase_cache: Optional[Union[str, Path, PhaseCacheStore]],
) -> Optional[PhaseCacheStore]:
    """Normalize a path-or-store argument and attach it to *topology*."""
    if phase_cache is None:
        return None
    store = (
        phase_cache
        if isinstance(phase_cache, PhaseCacheStore)
        else PhaseCacheStore(phase_cache)
    )
    topology.attach_phase_store(store)
    return store
