"""Switch-level view of a cell netlist.

Builds the indexed structures the solver works on: integer net ids, device
records with on-conductances, resistive input drivers, and the defect
modifications (:class:`DefectEffect`) a simulation run can apply.

Modeling choices (see DESIGN.md):

* Cell inputs are driven through a finite driver resistance from an ideal
  source node, so shorts onto input nets produce realistic voltage dividers
  instead of being masked by an ideal source.
* Power/ground rails are ideal (zero-impedance) boundaries.
* A conducting MOS channel is a resistor ``Ron = rsq * L / W``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.library.technology import ElectricalParams
from repro.spice.netlist import CellNetlist, Transistor

#: default driver resistance seen looking back into a cell input [ohm]
DRIVER_RESISTANCE = 2_000.0


@dataclass(frozen=True)
class DefectEffect:
    """Structural modification a defect makes to the switch graph.

    * ``removed``: device names whose channel can never conduct
      (drain/source opens).
    * ``gate_open``: device names whose gate terminal is disconnected;
      their conduction is the one implied by the *previous* pattern's gate
      value (trapped-charge lag), non-conducting on the first pattern.
    * ``bridges``: resistive shorts ``(net_a, net_b, resistance)``.
    * ``benign``: defect has no logic-level effect (e.g. bulk open);
      simulation is skipped and the golden response returned.
    """

    removed: FrozenSet[str] = frozenset()
    gate_open: FrozenSet[str] = frozenset()
    bridges: Tuple[Tuple[str, str, float], ...] = ()
    benign: bool = False

    @property
    def is_golden(self) -> bool:
        return not (self.removed or self.gate_open or self.bridges)


GOLDEN = DefectEffect()


class PhaseState:
    """Shared solving state for one effect signature of one topology.

    Every :class:`~repro.simulation.engine.CellSimulator` built on the
    same topology with a signature-equal effect binds the *same* state
    object, which is what makes phase work flow across defects:

    * ``memoryless`` / ``history`` / ``drive`` — the settled memoization
      caches (PR 3's cross-defect sharing);
    * ``staged_memoryless`` / ``staged_history`` — batch-solved phases
      awaiting their first *counted* lookup.  Shared so the cross-cell
      packed planner can see what a signature-sibling already has in
      flight; always drained back to empty by per-word assembly, so
      sharing them is invisible to the sequential flow;
    * ``prefetch_*`` — phases loaded from an on-disk
      :class:`~repro.simulation.phasecache.PhaseCacheStore`.  Entries
      are *popped* into the ordinary flow at the point the solver would
      have been called, with the same counter increments, so a
      warm-store run stays byte-identical (results **and** cost
      accounting) to a cold one.
    """

    __slots__ = (
        "memoryless",
        "history",
        "drive",
        "staged_memoryless",
        "staged_history",
        "prefetch_memoryless",
        "prefetch_history",
        "prefetch_drive",
    )

    def __init__(self) -> None:
        self.memoryless: dict = {}
        self.history: dict = {}
        self.drive: dict = {}
        self.staged_memoryless: dict = {}
        self.staged_history: dict = {}
        self.prefetch_memoryless: dict = {}
        self.prefetch_history: dict = {}
        self.prefetch_drive: dict = {}


@dataclass
class DeviceRec:
    """Solver-facing device record (net ids instead of names)."""

    index: int
    name: str
    is_nmos: bool
    drain: int
    gate: int
    source: int
    g_on: float
    gate_open: bool = False


class CellTopology:
    """Per-cell structures shared by every (cell, defect) switch graph.

    Defect characterization builds one :class:`SwitchGraph` per defect of
    the same cell; the net ordering, index maps, rail/pin node ids and
    device on-conductances are identical across the whole universe.  A
    topology is built once per (cell, params, driver resistance) and
    cheaply specialized per :class:`DefectEffect` via :meth:`graph`.

    The topology also hosts the **cross-defect phase cache**: two defects
    whose effects leave the touched subgraph identical (same removed
    channels, same gate opens, same resistive bridges — e.g. the drain
    open and the source open of one transistor) build byte-identical
    switch graphs, so their solved phases are interchangeable.
    :meth:`phase_caches` hands every simulator of the same effect
    signature the same memoization dicts, collapsing that duplicate work.
    """

    def __init__(
        self,
        cell: CellNetlist,
        params: Optional[ElectricalParams] = None,
        driver_resistance: float = DRIVER_RESISTANCE,
    ):
        self.cell = cell
        self.params = params or ElectricalParams()
        self.driver_resistance = driver_resistance

        nets = sorted(cell.nets())
        self.net_index: Dict[str, int] = {n: i for i, n in enumerate(nets)}
        # one virtual source node per input pin
        self.source_index: Dict[str, int] = {}
        for pin in cell.inputs:
            self.source_index[pin] = len(nets) + len(self.source_index)
        self.n_nodes = len(nets) + len(self.source_index)
        self.net_names = nets + [f"<src:{p}>" for p in cell.inputs]

        self.power = self.net_index[cell.power]
        self.ground = self.net_index[cell.ground]
        self.outputs = [self.net_index[o] for o in cell.outputs]
        self.output = self.outputs[0]
        self.pin_nodes: List[int] = [self.net_index[p] for p in cell.inputs]
        self.source_nodes: List[int] = [self.source_index[p] for p in cell.inputs]
        #: nodes with externally fixed voltage (rails + virtual sources)
        self.fixed_nodes: List[int] = [self.power, self.ground] + self.source_nodes

        #: per-transistor on-conductance (independent of any defect)
        self.g_on: Dict[str, float] = {
            t.name: 1.0 / self._ron(t) for t in cell.transistors
        }
        #: resistive driver edges shared by every specialization
        g_drv = 1.0 / driver_resistance
        self.driver_edges: List[Tuple[int, int, float]] = [
            (self.source_index[pin], self.net_index[pin], g_drv)
            for pin in cell.inputs
        ]
        self._device_names: FrozenSet[str] = frozenset(
            t.name for t in cell.transistors
        )
        #: effect signature -> shared :class:`PhaseState`
        self._phase_states: Dict[tuple, PhaseState] = {}
        #: optional on-disk phase-cache store (see :meth:`attach_phase_store`)
        self._phase_store = None

    def effect_signature(self, effect: DefectEffect) -> tuple:
        """Canonical key of the switch graph *effect* builds.

        Two effects with equal signatures produce identical device lists
        and identical (ordered) static-edge lists, hence byte-identical
        solver results.  Bridge order is preserved — not sorted — so even
        the floating-point summation order of a contention solve matches.
        """
        removed = frozenset(effect.removed & self._device_names)
        remaining = self._device_names - removed
        gate_open = frozenset(effect.gate_open & remaining)
        bridges = tuple(
            (self.net_index[a], self.net_index[b], float(r))
            for a, b, r in effect.bridges
            if self.net_index[a] != self.net_index[b]
        )
        return (removed, gate_open, bridges)

    def phase_state(self, effect: DefectEffect) -> PhaseState:
        """Shared :class:`PhaseState` for *effect*'s signature.

        Every simulator built on this topology with a signature-equal
        effect gets the same state, so phases solved under one defect are
        served as cache hits to the next.  When a store is attached (see
        :meth:`attach_phase_store`), first access of a signature loads
        its persisted phases into the prefetch dicts.
        """
        signature = self.effect_signature(effect)
        state = self._phase_states.get(signature)
        if state is None:
            state = PhaseState()
            self._phase_states[signature] = state
            if self._phase_store is not None:
                self._phase_store.load_into(self, signature, state)
        return state

    def phase_caches(self, effect: DefectEffect) -> Tuple[dict, dict, dict]:
        """Shared (memoryless, history, drive) caches for *effect*.

        Compatibility view over :meth:`phase_state`.
        """
        state = self.phase_state(effect)
        return (state.memoryless, state.history, state.drive)

    def attach_phase_store(self, store) -> None:
        """Back this topology's phase states with an on-disk store.

        *store* is a :class:`~repro.simulation.phasecache.PhaseCacheStore`
        (duck-typed: ``load_into(topology, signature, state)`` and
        ``save(topology)``).  Attach before the first
        :meth:`phase_state` call of the signatures it should warm.
        """
        self._phase_store = store

    def detach_phase_state(self) -> None:
        """Drop all shared phase state and any attached store.

        Used by plan replay: a checked-out topology must solve from
        scratch so its counters match a freshly built one.
        """
        self._phase_states = {}
        self._phase_store = None

    def _ron(self, t: Transistor) -> float:
        rsq = self.params.rsq_nmos if t.is_nmos else self.params.rsq_pmos
        return rsq * t.l / t.w

    def graph(self, effect: DefectEffect = GOLDEN) -> "SwitchGraph":
        """Specialize the shared topology for one defect effect."""
        return SwitchGraph(
            self.cell,
            params=self.params,
            effect=effect,
            driver_resistance=self.driver_resistance,
            topology=self,
        )


class SwitchGraph:
    """Indexed switch-level structure for one (cell, defect) pair."""

    def __init__(
        self,
        cell: CellNetlist,
        params: Optional[ElectricalParams] = None,
        effect: DefectEffect = GOLDEN,
        driver_resistance: float = DRIVER_RESISTANCE,
        topology: Optional[CellTopology] = None,
    ):
        if topology is None:
            topology = CellTopology(
                cell, params=params, driver_resistance=driver_resistance
            )
        self.topology = topology
        self.cell = topology.cell
        self.params = topology.params
        self.effect = effect

        self.net_index = topology.net_index
        self.source_index = topology.source_index
        self.n_nodes = topology.n_nodes
        self.net_names = topology.net_names
        self.power = topology.power
        self.ground = topology.ground
        self.outputs = topology.outputs
        self.output = topology.output
        self.pin_nodes = topology.pin_nodes
        self.source_nodes = topology.source_nodes
        self.fixed_nodes = topology.fixed_nodes

        self.devices: List[DeviceRec] = []
        for t in self.cell.transistors:
            if t.name in effect.removed:
                continue
            self.devices.append(
                DeviceRec(
                    index=len(self.devices),
                    name=t.name,
                    is_nmos=t.is_nmos,
                    drain=self.net_index[t.drain],
                    gate=self.net_index[t.gate],
                    source=self.net_index[t.source],
                    g_on=topology.g_on[t.name],
                    gate_open=t.name in effect.gate_open,
                )
            )

        #: always-conducting resistive edges: (node_a, node_b, conductance)
        self.static_edges: List[Tuple[int, int, float]] = list(
            topology.driver_edges
        )
        for net_a, net_b, resistance in effect.bridges:
            a = self.net_index[net_a]
            b = self.net_index[net_b]
            if a != b:
                self.static_edges.append((a, b, 1.0 / resistance))

    def fixed_values(self, input_codes: Sequence[int]) -> Dict[int, int]:
        """Fixed logic values: rails plus the given per-pin codes."""
        if len(input_codes) != len(self.source_nodes):
            raise ValueError(
                f"expected {len(self.source_nodes)} input values, "
                f"got {len(input_codes)}"
            )
        out = {self.power: 1, self.ground: 0}
        for node, code in zip(self.source_nodes, input_codes):
            out[node] = int(code)
        return out
