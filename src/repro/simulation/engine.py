"""Cell simulation engine: stimuli in, four-valued responses out.

This is the drop-in replacement for the electrical (SPICE) simulation of
the conventional CA generation flow (Fig. 1 of the paper).  A
:class:`CellSimulator` wraps one (cell, defect) pair and answers:

* :meth:`output_response` — the cell output as a {0,1,R,F,X} symbol for a
  four-valued stimulus word;
* :meth:`net_waveforms` — every net's symbol (used by the golden run to
  identify active/passive transistors, Section III.A).

A stimulus word is a tuple of :class:`~repro.logic.fourval.V4`, one symbol
per input pin.  A static word needs one solver phase; a dynamic word is a
two-pattern test: the initial phase settles, then the final phase is solved
with charge retention and gate-open lag fed from the initial phase.

Solved phases are memoized per (final vector, initial vector), which makes
exhaustive-stimulus characterization cost O(4^n) solves instead of
O(4^n * patterns).  :meth:`CellSimulator.solve_words` additionally plans a
whole stimulus set at once: the unique phases still missing from the caches
are solved in one or two :meth:`~repro.simulation.solver.StaticSolver.solve_batch`
calls (memoryless first, then the history-dependent survivors), and the
per-word assembly then runs entirely against warm caches.  When the
simulator shares a :class:`~repro.simulation.switchgraph.CellTopology`, the
caches themselves are shared across defects with signature-equal effects.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.library.technology import ElectricalParams
from repro.logic.fourval import V4, final_phase, initial_phase, word_from_phases
from repro.simulation.solver import SolveResult, StaticSolver
from repro.simulation.switchgraph import (
    CellTopology,
    DRIVER_RESISTANCE,
    DefectEffect,
    GOLDEN,
    SwitchGraph,
)
from repro.spice.netlist import CellNetlist

PhaseKey = Tuple[Tuple[int, ...], Optional[Tuple[int, ...]]]
#: split form of one stimulus word: (initial vector, final vector, dynamic)
WordPlan = Tuple[Tuple[int, ...], Tuple[int, ...], bool]


class SimulationError(RuntimeError):
    """Raised for malformed stimuli."""


def split_word(
    word: Sequence[V4], n_inputs: int, cell_name: str = "?"
) -> WordPlan:
    """Validate and split a stimulus word into its two phase vectors.

    Returns ``(initial, final, dynamic)``.  Splitting is a property of the
    word alone, so a sweep over many simulators of the same cell computes
    it once per word and passes it via the ``plan`` arguments.
    """
    if len(word) != n_inputs:
        raise SimulationError(
            f"stimulus has {len(word)} symbols, cell {cell_name} "
            f"has {n_inputs} inputs"
        )
    first = initial_phase(word)
    second = final_phase(word)
    if any(v < 0 for v in first) or any(v < 0 for v in second):
        raise SimulationError(f"stimulus contains X: {word}")
    return first, second, first != second


class CellSimulator:
    """Switch-level simulator for one cell under one (optional) defect."""

    def __init__(
        self,
        cell: CellNetlist,
        params: Optional[ElectricalParams] = None,
        effect: DefectEffect = GOLDEN,
        driver_resistance: float = DRIVER_RESISTANCE,
        topology: Optional[CellTopology] = None,
        batched: bool = True,
    ):
        self.cell = cell
        self.effect = effect
        self.batched = batched
        if topology is not None:
            self.graph = topology.graph(effect)
            # Cross-defect sharing: signature-equal effects build identical
            # graphs, so their memoized phases are interchangeable.
            memoryless, history, drive = topology.phase_caches(effect)
        else:
            self.graph = SwitchGraph(
                cell, params=params, effect=effect,
                driver_resistance=driver_resistance,
            )
            memoryless, history, drive = {}, {}, {}
        self.solver = StaticSolver(self.graph)
        self._memoryless_cache: Dict[Tuple[int, ...], SolveResult] = memoryless
        self._phase_cache: Dict[PhaseKey, List[int]] = history
        # Batch-solved phases awaiting their first (counted) lookup.
        self._staged_memoryless: Dict[Tuple[int, ...], SolveResult] = {}
        self._staged_history: Dict[PhaseKey, List[int]] = {}
        self._has_gate_open = bool(effect.gate_open)
        self._observable_nodes = [
            node
            for node, observable in enumerate(self.solver._observable)
            if observable
        ]
        # Keyed on (initial vector, final vector, output node) — the values
        # the resistance actually depends on.  (Never key on id() of the
        # solved code lists: ids of freed lists are recycled and alias.)
        self._drive_cache: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...], int], float
        ] = drive
        #: number of phase solves actually performed (cost accounting)
        self.solve_count = 0
        #: memoized phase lookups served without a solve (cost accounting)
        self.cache_hit_count = 0
        #: phases solved through the vectorized batch kernel (a subset of
        #: ``solve_count``; cost accounting for the batched path)
        self.batched_count = 0

    def counters(self) -> Dict[str, int]:
        """Solve vs. memo-hit counts of this simulator instance.

        This is the leaf-level cost signal the generation flow accumulates
        into the :mod:`repro.obs` metrics registry (metric names
        ``camodel.sim.solves`` / ``camodel.sim.cache_hits``), from which
        the :class:`~repro.camodel.stats.GenerationStats` attached to each
        model is derived.
        """
        return {
            "solves": self.solve_count,
            "cache_hits": self.cache_hit_count,
            "batched": self.batched_count,
        }

    # ------------------------------------------------------------------
    def _memoryless(self, vector: Tuple[int, ...]):
        """History-free solve of one static vector, memoized per vector."""
        result = self._memoryless_cache.get(vector)
        if result is None:
            result = self._staged_memoryless.pop(vector, None)
            if result is None:
                result = self.solver.solve(vector, None)
            self.solve_count += 1
            self._memoryless_cache[vector] = result
        else:
            self.cache_hit_count += 1
        return result

    def _phase_with_codes(
        self,
        vector: Tuple[int, ...],
        prev_codes: Optional[List[int]],
    ) -> List[int]:
        """Solve one settled phase given the previous settled state.

        A phase depends on the previous pattern only through charge
        retention on floating nets and gate-open conduction lag; when the
        history-free solve of *vector* touched neither, it is the answer
        for every predecessor, which collapses the dynamic-stimulus cost
        from O(4^n) to O(2^n) solves for most defects.  When history does
        matter, results are cached by the previous *observable* state.
        """
        base = self._memoryless(vector)
        if prev_codes is None:
            return base.codes
        if not base.retention_used and not self._has_gate_open:
            return base.codes
        observed = tuple(prev_codes[n] for n in self._observable_nodes)
        key = (vector, observed)
        cached = self._phase_cache.get(key)
        if cached is not None:
            self.cache_hit_count += 1
            return cached
        codes = self._staged_history.pop(key, None)
        if codes is None:
            codes = self.solver.solve(vector, prev_codes).codes
        self.solve_count += 1
        self._phase_cache[key] = codes
        return codes

    def _phase(
        self,
        vector: Tuple[int, ...],
        prev_vector: Optional[Tuple[int, ...]] = None,
    ) -> List[int]:
        """Solve (with memoization) one settled phase of a two-phase word."""
        prev_codes = self._phase(prev_vector) if prev_vector is not None else None
        return self._phase_with_codes(vector, prev_codes)

    def _split_word(self, word: Sequence[V4]) -> WordPlan:
        return split_word(word, len(self.cell.inputs), self.cell.name)

    # ------------------------------------------------------------------
    def solve_word(
        self, word: Sequence[V4], plan: Optional[WordPlan] = None
    ) -> Tuple[List[int], List[int]]:
        """Solve a word; returns (initial codes, final codes) per node.

        For a static word both phases are the same solved state.  *plan*
        is the precomputed :func:`split_word` of *word* (an optimization
        for sweeping one word list over many simulators).
        """
        first, second, dynamic = plan if plan is not None else self._split_word(word)
        if not dynamic:
            codes = self._phase(second)
            return codes, codes
        codes1 = self._phase(first)
        codes2 = self._phase(second, prev_vector=first)
        return codes1, codes2

    def solve_words(
        self,
        words: Sequence[Sequence[V4]],
        plans: Optional[Sequence[WordPlan]] = None,
    ) -> List[Tuple[List[int], List[int]]]:
        """Solve a whole stimulus set, batch-planning the missing phases.

        Plans the unique phase set once: distinct vectors absent from the
        memoryless cache go through one vectorized
        :meth:`~repro.simulation.solver.StaticSolver.solve_batch` call;
        the history-dependent survivors (words whose base solve used
        charge retention, or any word under a gate-open defect) go through
        a second.  Per-word assembly then runs the ordinary scalar path
        against warm caches, so solve/cache-hit counter sequences — and
        results — are identical to calling :meth:`solve_word` in a loop.

        *plans* is the precomputed per-word :func:`split_word` output; the
        generation flow computes it once per stimulus list and reuses it
        across every defect of a cell.
        """
        if plans is None:
            plans = [self._split_word(word) for word in words]
        if not self.batched:
            return [
                self.solve_word(word, plan)
                for word, plan in zip(words, plans)
            ]

        # Stage 1: memoryless solve of every distinct phase vector.
        need: List[Tuple[int, ...]] = []
        seen = set()
        for first, second, dynamic in plans:
            for vector in (first, second) if dynamic else (second,):
                if vector in seen or vector in self._memoryless_cache:
                    continue
                seen.add(vector)
                need.append(vector)
        if need:
            with obs.tracer().span(
                "solver.batch", phases=len(need), history=False
            ):
                solved = self.solver.solve_batch(need)
            self.batched_count += len(need)
            self._staged_memoryless.update(zip(need, solved))

        # Stage 2: history-dependent phases the base solve cannot answer.
        pending: List[PhaseKey] = []
        prevs: List[List[int]] = []
        pending_seen = set()
        for first, second, dynamic in plans:
            if not dynamic:
                continue
            base = self._memoryless_cache.get(second)
            if base is None:
                base = self._staged_memoryless[second]
            if not base.retention_used and not self._has_gate_open:
                continue
            prev = self._memoryless_cache.get(first)
            if prev is None:
                prev = self._staged_memoryless[first]
            prev_codes = prev.codes
            key = (
                second,
                tuple(prev_codes[n] for n in self._observable_nodes),
            )
            if key in self._phase_cache or key in pending_seen:
                continue
            pending_seen.add(key)
            pending.append(key)
            prevs.append(prev_codes)
        if pending:
            with obs.tracer().span(
                "solver.batch", phases=len(pending), history=True
            ):
                solved = self.solver.solve_batch(
                    [key[0] for key in pending], prevs
                )
            self.batched_count += len(pending)
            for key, result in zip(pending, solved):
                self._staged_history[key] = result.codes

        # Stage 3: per-word assembly against warm caches.
        return [
            self.solve_word(word, plan) for word, plan in zip(words, plans)
        ]

    def output_response(self, word: Sequence[V4], output: Optional[str] = None) -> V4:
        """Four-valued response on a cell output (first output default)."""
        codes1, codes2 = self.solve_word(word)
        node = self.graph.output if output is None else self.graph.net_index[output]
        return V4.from_phases(codes1[node], codes2[node])

    def net_waveforms(self, word: Sequence[V4]) -> Dict[str, V4]:
        """Per-net four-valued symbols under *word* (cell nets only)."""
        codes1, codes2 = self.solve_word(word)
        out: Dict[str, V4] = {}
        for net, index in self.graph.net_index.items():
            out[net] = V4.from_phases(codes1[index], codes2[index])
        return out

    def static_net_codes(self, vector: Sequence[int]) -> Dict[str, int]:
        """Settled logic code per net for a static binary input vector."""
        codes = self._phase(tuple(int(v) for v in vector))
        return {net: codes[index] for net, index in self.graph.net_index.items()}

    def simulate_sequence(
        self, vectors: Sequence[Sequence[int]]
    ) -> List[V4]:
        """Simulate a multi-pattern sequence with rolling state.

        *vectors* are binary input patterns applied one after another;
        charge retention and gate-open lag carry across every step (a
        generalization of the two-pattern words to arbitrary test
        sequences).  Returns the output symbol observed at each step:
        the transition from the previous settled state to the new one.
        """
        responses: List[V4] = []
        prev_codes: Optional[List[int]] = None
        out = self.graph.output
        for raw in vectors:
            vector = tuple(int(v) for v in raw)
            if len(vector) != len(self.cell.inputs):
                raise SimulationError(
                    f"pattern {vector} does not match {len(self.cell.inputs)} inputs"
                )
            codes = self._phase_with_codes(vector, prev_codes)
            if prev_codes is None:
                responses.append(V4.from_phases(codes[out], codes[out]))
            else:
                responses.append(V4.from_phases(prev_codes[out], codes[out]))
            prev_codes = codes
        return responses

    # ------------------------------------------------------------------
    # Drive-strength measurement (delay-defect proxy)
    # ------------------------------------------------------------------
    def output_drive_resistance(
        self, word: Sequence[V4], output: Optional[str] = None
    ) -> float:
        """Effective resistance from an output to the rail it settled at.

        This is the switch-level proxy for transition speed: a defect that
        removes one finger of a parallel stack leaves the logic value
        intact but raises this resistance, which a transient (SPICE)
        simulation would report as a slow, delay-detected defect.  Returns
        ``inf`` when the output is floating or unknown.
        """
        first, second, _dynamic = self._split_word(word)
        codes1, codes2 = self.solve_word(word)
        out = self.graph.output if output is None else self.graph.net_index[output]
        level = codes2[out]
        if level not in (0, 1):
            return float("inf")
        cache_key = (first, second, out)
        cached = self._drive_cache.get(cache_key)
        if cached is not None:
            self.cache_hit_count += 1
            return cached
        rail = self.graph.power if level == 1 else self.graph.ground
        resistance = self._effective_resistance(out, rail, codes1, codes2)
        self._drive_cache[cache_key] = resistance
        return resistance

    def _conducting_edges(
        self, codes1: Sequence[int], codes2: Sequence[int]
    ) -> List[Tuple[int, int, float]]:
        """Conducting edges in the final phase (unknown gates -> off)."""
        edges: List[Tuple[int, int, float]] = list(self.graph.static_edges)
        for dev in self.graph.devices:
            gate_value = codes1[dev.gate] if dev.gate_open else codes2[dev.gate]
            on = gate_value == 1 if dev.is_nmos else gate_value == 0
            if on:
                edges.append((dev.drain, dev.source, dev.g_on))
        return edges

    def _effective_resistance(
        self,
        node_a: int,
        node_b: int,
        codes1: Sequence[int],
        codes2: Sequence[int],
    ) -> float:
        """Two-point effective resistance over the conducting graph.

        Only *node_b* is held (grounded); every other node floats, so the
        result measures the strength of the path actually charging the
        output, independent of the other rails.
        """
        edges = self._conducting_edges(codes1, codes2)
        # Restrict to the connected component of node_a.
        adjacency: Dict[int, List[Tuple[int, float]]] = {}
        for a, b, g in edges:
            adjacency.setdefault(a, []).append((b, g))
            adjacency.setdefault(b, []).append((a, g))
        component = {node_a}
        frontier = [node_a]
        while frontier:
            current = frontier.pop()
            for neighbor, _g in adjacency.get(current, ()):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        if node_b not in component:
            return float("inf")
        free = sorted(component - {node_b})
        pos = {n: i for i, n in enumerate(free)}
        size = len(free)
        laplacian = np.zeros((size, size))
        for a, b, g in edges:
            if a not in component or a == b:
                continue
            if a in pos:
                laplacian[pos[a], pos[a]] += g
            if b in pos:
                laplacian[pos[b], pos[b]] += g
            if a in pos and b in pos:
                laplacian[pos[a], pos[b]] -= g
                laplacian[pos[b], pos[a]] -= g
        injection = np.zeros(size)
        injection[pos[node_a]] = 1.0
        try:
            voltages = np.linalg.solve(laplacian, injection)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate
            return float("inf")
        return float(voltages[pos[node_a]])


def golden_simulator(
    cell: CellNetlist, params: Optional[ElectricalParams] = None
) -> CellSimulator:
    """Convenience constructor for the defect-free simulation."""
    return CellSimulator(cell, params=params, effect=GOLDEN)


def logic_check(
    cell: CellNetlist,
    expected,
    params: Optional[ElectricalParams] = None,
    output: Optional[str] = None,
) -> List[Tuple[Tuple[int, ...], int, int]]:
    """Compare a cell's static behaviour against a Boolean reference.

    *expected* is a :class:`repro.logic.expr.Expr` over the cell's input
    names; *output* picks the port to check (first output by default).
    Returns mismatches as (vector, simulated, expected); an empty list
    means the netlist implements the function.
    """
    sim = golden_simulator(cell, params)
    port = output or cell.outputs[0]
    node = sim.graph.net_index[port]
    vectors = list(itertools.product((0, 1), repeat=len(cell.inputs)))
    words = [
        word_from_phases(bits, bits)
        for bits in vectors
    ]
    solved = sim.solve_words(words)
    mismatches = []
    for bits, (_codes1, codes2) in zip(vectors, solved):
        env = dict(zip(cell.inputs, bits))
        got = codes2[node]
        want = expected.evaluate(env)
        if got != want:
            mismatches.append((bits, got, want))
    return mismatches
