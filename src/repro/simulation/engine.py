"""Cell simulation engine: stimuli in, four-valued responses out.

This is the drop-in replacement for the electrical (SPICE) simulation of
the conventional CA generation flow (Fig. 1 of the paper).  A
:class:`CellSimulator` wraps one (cell, defect) pair and answers:

* :meth:`output_response` — the cell output as a {0,1,R,F,X} symbol for a
  four-valued stimulus word;
* :meth:`net_waveforms` — every net's symbol (used by the golden run to
  identify active/passive transistors, Section III.A).

A stimulus word is a tuple of :class:`~repro.logic.fourval.V4`, one symbol
per input pin.  A static word needs one solver phase; a dynamic word is a
two-pattern test: the initial phase settles, then the final phase is solved
with charge retention and gate-open lag fed from the initial phase.

Solved phases are memoized per (final vector, initial vector), which makes
exhaustive-stimulus characterization cost O(4^n) solves instead of
O(4^n * patterns).  :meth:`CellSimulator.solve_words` additionally plans a
whole stimulus set at once: the unique phases still missing from the caches
are solved in one or two :meth:`~repro.simulation.solver.StaticSolver.solve_batch`
calls (memoryless first, then the history-dependent survivors), and the
per-word assembly then runs entirely against warm caches.  When the
simulator shares a :class:`~repro.simulation.switchgraph.CellTopology`, the
caches themselves are shared across defects with signature-equal effects.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.library.technology import ElectricalParams
from repro.logic.fourval import V4, final_phase, initial_phase, word_from_phases
from repro.simulation.packed import PackedRequest, solve_packed
from repro.simulation.solver import SolveResult, StaticSolver
from repro.simulation.switchgraph import (
    CellTopology,
    DRIVER_RESISTANCE,
    DefectEffect,
    GOLDEN,
    PhaseState,
    SwitchGraph,
)
from repro.spice.netlist import CellNetlist

PhaseKey = Tuple[Tuple[int, ...], Optional[Tuple[int, ...]]]
#: split form of one stimulus word: (initial vector, final vector, dynamic)
WordPlan = Tuple[Tuple[int, ...], Tuple[int, ...], bool]

# ----------------------------------------------------------------------
# Metric names (repro.obs registry; registered in repro.lint.catalog)
# ----------------------------------------------------------------------
M_PACKED_ROWS = "throughput.packed_rows"
M_PACKED_FLUSHES = "throughput.flushes"
M_PHASECACHE_HITS = "phasecache.hits"


class SimulationError(RuntimeError):
    """Raised for malformed stimuli."""


def split_word(
    word: Sequence[V4], n_inputs: int, cell_name: str = "?"
) -> WordPlan:
    """Validate and split a stimulus word into its two phase vectors.

    Returns ``(initial, final, dynamic)``.  Splitting is a property of the
    word alone, so a sweep over many simulators of the same cell computes
    it once per word and passes it via the ``plan`` arguments.
    """
    if len(word) != n_inputs:
        raise SimulationError(
            f"stimulus has {len(word)} symbols, cell {cell_name} "
            f"has {n_inputs} inputs"
        )
    first = initial_phase(word)
    second = final_phase(word)
    if any(v < 0 for v in first) or any(v < 0 for v in second):
        raise SimulationError(f"stimulus contains X: {word}")
    return first, second, first != second


class CellSimulator:
    """Switch-level simulator for one cell under one (optional) defect."""

    def __init__(
        self,
        cell: CellNetlist,
        params: Optional[ElectricalParams] = None,
        effect: DefectEffect = GOLDEN,
        driver_resistance: float = DRIVER_RESISTANCE,
        topology: Optional[CellTopology] = None,
        batched: bool = True,
    ):
        self.cell = cell
        self.effect = effect
        self.batched = batched
        if topology is not None:
            self.graph = topology.graph(effect)
            # Cross-defect sharing: signature-equal effects build identical
            # graphs, so their memoized phases are interchangeable.
            state = topology.phase_state(effect)
        else:
            self.graph = SwitchGraph(
                cell, params=params, effect=effect,
                driver_resistance=driver_resistance,
            )
            state = PhaseState()
        self.solver = StaticSolver(self.graph)
        self._memoryless_cache: Dict[Tuple[int, ...], SolveResult] = (
            state.memoryless
        )
        self._phase_cache: Dict[PhaseKey, List[int]] = state.history
        # Batch-solved phases awaiting their first (counted) lookup.
        # Shared across signature-equal simulators (see PhaseState); the
        # per-word assembly always drains them back to empty.
        self._staged_memoryless: Dict[Tuple[int, ...], SolveResult] = (
            state.staged_memoryless
        )
        self._staged_history: Dict[PhaseKey, List[int]] = state.staged_history
        # Phases loaded from an on-disk store; popped exactly where the
        # solver would have run, with the same counter increments.
        self._prefetch_memoryless: Dict[Tuple[int, ...], SolveResult] = (
            state.prefetch_memoryless
        )
        self._prefetch_history: Dict[PhaseKey, List[int]] = (
            state.prefetch_history
        )
        self._prefetch_drive: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...], int], float
        ] = state.prefetch_drive
        self._has_gate_open = bool(effect.gate_open)
        self._observable_nodes = [
            node
            for node, observable in enumerate(self.solver._observable)
            if observable
        ]
        # Keyed on (initial vector, final vector, output node) — the values
        # the resistance actually depends on.  (Never key on id() of the
        # solved code lists: ids of freed lists are recycled and alias.)
        self._drive_cache: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...], int], float
        ] = state.drive
        #: number of phase solves actually performed (cost accounting)
        self.solve_count = 0
        #: memoized phase lookups served without a solve (cost accounting)
        self.cache_hit_count = 0
        #: phases solved through the vectorized batch kernel (a subset of
        #: ``solve_count``; cost accounting for the batched path)
        self.batched_count = 0

    def counters(self) -> Dict[str, int]:
        """Solve vs. memo-hit counts of this simulator instance.

        This is the leaf-level cost signal the generation flow accumulates
        into the :mod:`repro.obs` metrics registry (metric names
        ``camodel.sim.solves`` / ``camodel.sim.cache_hits``), from which
        the :class:`~repro.camodel.stats.GenerationStats` attached to each
        model is derived.
        """
        return {
            "solves": self.solve_count,
            "cache_hits": self.cache_hit_count,
            "batched": self.batched_count,
        }

    # ------------------------------------------------------------------
    def _memoryless(self, vector: Tuple[int, ...]):
        """History-free solve of one static vector, memoized per vector."""
        result = self._memoryless_cache.get(vector)
        if result is None:
            result = self._staged_memoryless.pop(vector, None)
            if result is None:
                result = self._prefetch_memoryless.pop(vector, None)
            if result is None:
                result = self.solver.solve(vector, None)
            self.solve_count += 1
            self._memoryless_cache[vector] = result
        else:
            self.cache_hit_count += 1
        return result

    def _phase_with_codes(
        self,
        vector: Tuple[int, ...],
        prev_codes: Optional[List[int]],
    ) -> List[int]:
        """Solve one settled phase given the previous settled state.

        A phase depends on the previous pattern only through charge
        retention on floating nets and gate-open conduction lag; when the
        history-free solve of *vector* touched neither, it is the answer
        for every predecessor, which collapses the dynamic-stimulus cost
        from O(4^n) to O(2^n) solves for most defects.  When history does
        matter, results are cached by the previous *observable* state.
        """
        base = self._memoryless(vector)
        if prev_codes is None:
            return base.codes
        if not base.retention_used and not self._has_gate_open:
            return base.codes
        observed = tuple(prev_codes[n] for n in self._observable_nodes)
        key = (vector, observed)
        cached = self._phase_cache.get(key)
        if cached is not None:
            self.cache_hit_count += 1
            return cached
        codes = self._staged_history.pop(key, None)
        if codes is None:
            codes = self._prefetch_history.pop(key, None)
        if codes is None:
            codes = self.solver.solve(vector, prev_codes).codes
        self.solve_count += 1
        self._phase_cache[key] = codes
        return codes

    def _phase(
        self,
        vector: Tuple[int, ...],
        prev_vector: Optional[Tuple[int, ...]] = None,
    ) -> List[int]:
        """Solve (with memoization) one settled phase of a two-phase word."""
        prev_codes = self._phase(prev_vector) if prev_vector is not None else None
        return self._phase_with_codes(vector, prev_codes)

    def _split_word(self, word: Sequence[V4]) -> WordPlan:
        return split_word(word, len(self.cell.inputs), self.cell.name)

    # ------------------------------------------------------------------
    def solve_word(
        self, word: Sequence[V4], plan: Optional[WordPlan] = None
    ) -> Tuple[List[int], List[int]]:
        """Solve a word; returns (initial codes, final codes) per node.

        For a static word both phases are the same solved state.  *plan*
        is the precomputed :func:`split_word` of *word* (an optimization
        for sweeping one word list over many simulators).
        """
        first, second, dynamic = plan if plan is not None else self._split_word(word)
        if not dynamic:
            codes = self._phase(second)
            return codes, codes
        codes1 = self._phase(first)
        codes2 = self._phase(second, prev_vector=first)
        return codes1, codes2

    def solve_words(
        self,
        words: Sequence[Sequence[V4]],
        plans: Optional[Sequence[WordPlan]] = None,
    ) -> List[Tuple[List[int], List[int]]]:
        """Solve a whole stimulus set, batch-planning the missing phases.

        Plans the unique phase set once: distinct vectors absent from the
        memoryless cache go through one vectorized
        :meth:`~repro.simulation.solver.StaticSolver.solve_batch` call;
        the history-dependent survivors (words whose base solve used
        charge retention, or any word under a gate-open defect) go through
        a second.  Per-word assembly then runs the ordinary scalar path
        against warm caches, so solve/cache-hit counter sequences — and
        results — are identical to calling :meth:`solve_word` in a loop.

        *plans* is the precomputed per-word :func:`split_word` output; the
        generation flow computes it once per stimulus list and reuses it
        across every defect of a cell.
        """
        if plans is None:
            plans = [self._split_word(word) for word in words]
        if not self.batched:
            return [
                self.solve_word(word, plan)
                for word, plan in zip(words, plans)
            ]

        # Stage 1: memoryless solve of every distinct phase vector.
        need = self._plan_stage1(plans)
        if need:
            to_solve = self._take_prefetched_stage1(need)
            with obs.tracer().span(
                "solver.batch", phases=len(need), history=False
            ):
                solved = self.solver.solve_batch(to_solve)
            self.batched_count += len(need)
            self._staged_memoryless.update(zip(to_solve, solved))

        # Stage 2: history-dependent phases the base solve cannot answer.
        pending, prevs = self._plan_stage2(plans)
        if pending:
            to_solve2, prevs2 = self._take_prefetched_stage2(pending, prevs)
            with obs.tracer().span(
                "solver.batch", phases=len(pending), history=True
            ):
                solved = self.solver.solve_batch(
                    [key[0] for key in to_solve2], prevs2
                )
            self.batched_count += len(pending)
            for key, result in zip(to_solve2, solved):
                self._staged_history[key] = result.codes

        # Stage 3: per-word assembly against warm caches.
        return [
            self.solve_word(word, plan) for word, plan in zip(words, plans)
        ]

    # ------------------------------------------------------------------
    # Batch planning, shared by solve_words and solve_words_across
    # ------------------------------------------------------------------
    def _plan_stage1(
        self,
        plans: Sequence[WordPlan],
        planned: Optional[set] = None,
    ) -> List[Tuple[int, ...]]:
        """Distinct memoryless vectors the caches cannot yet answer.

        *planned* holds vectors a signature-sibling simulator already has
        in flight within the same packed round; they are excluded exactly
        as a sequential sweep would have found them memoized by the time
        this simulator ran.
        """
        need: List[Tuple[int, ...]] = []
        seen = set()
        for first, second, dynamic in plans:
            for vector in (first, second) if dynamic else (second,):
                if (
                    vector in seen
                    or vector in self._memoryless_cache
                    or vector in self._staged_memoryless
                    or (planned is not None and vector in planned)
                ):
                    continue
                seen.add(vector)
                need.append(vector)
        return need

    def _take_prefetched_stage1(
        self, need: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, ...]]:
        """Serve stage-1 vectors from the disk prefetch; return the rest.

        Prefetched vectors move straight into the staged dict — the same
        place a kernel solve would have put them — so per-word assembly
        (and its counters) cannot tell a warm store from a cold solve.
        """
        if not self._prefetch_memoryless:
            return list(need)
        to_solve: List[Tuple[int, ...]] = []
        hits = 0
        for vector in need:
            result = self._prefetch_memoryless.pop(vector, None)
            if result is None:
                to_solve.append(vector)
            else:
                self._staged_memoryless[vector] = result
                hits += 1
        if hits:
            obs.metrics().inc(M_PHASECACHE_HITS, hits)
        return to_solve

    def _plan_stage2(
        self,
        plans: Sequence[WordPlan],
        planned: Optional[set] = None,
    ) -> Tuple[List[PhaseKey], List[List[int]]]:
        """History-dependent phase keys the base solves cannot answer.

        Requires every stage-1 vector of *plans* to be cached or staged
        (the planner peeks at base results to read retention flags).
        """
        pending: List[PhaseKey] = []
        prevs: List[List[int]] = []
        pending_seen = set()
        for first, second, dynamic in plans:
            if not dynamic:
                continue
            base = self._memoryless_cache.get(second)
            if base is None:
                base = self._staged_memoryless[second]
            if not base.retention_used and not self._has_gate_open:
                continue
            prev = self._memoryless_cache.get(first)
            if prev is None:
                prev = self._staged_memoryless[first]
            prev_codes = prev.codes
            key = (
                second,
                tuple(prev_codes[n] for n in self._observable_nodes),
            )
            if (
                key in self._phase_cache
                or key in self._staged_history
                or key in pending_seen
                or (planned is not None and key in planned)
            ):
                continue
            pending_seen.add(key)
            pending.append(key)
            prevs.append(prev_codes)
        return pending, prevs

    def _take_prefetched_stage2(
        self, pending: Sequence[PhaseKey], prevs: Sequence[List[int]]
    ) -> Tuple[List[PhaseKey], List[List[int]]]:
        """Serve stage-2 keys from the disk prefetch; return the rest."""
        if not self._prefetch_history:
            return list(pending), list(prevs)
        to_solve: List[PhaseKey] = []
        kept_prevs: List[List[int]] = []
        hits = 0
        for key, prev_codes in zip(pending, prevs):
            codes = self._prefetch_history.pop(key, None)
            if codes is None:
                to_solve.append(key)
                kept_prevs.append(prev_codes)
            else:
                self._staged_history[key] = codes
                hits += 1
        if hits:
            obs.metrics().inc(M_PHASECACHE_HITS, hits)
        return to_solve, kept_prevs

    def output_response(self, word: Sequence[V4], output: Optional[str] = None) -> V4:
        """Four-valued response on a cell output (first output default)."""
        codes1, codes2 = self.solve_word(word)
        node = self.graph.output if output is None else self.graph.net_index[output]
        return V4.from_phases(codes1[node], codes2[node])

    def net_waveforms(self, word: Sequence[V4]) -> Dict[str, V4]:
        """Per-net four-valued symbols under *word* (cell nets only)."""
        codes1, codes2 = self.solve_word(word)
        out: Dict[str, V4] = {}
        for net, index in self.graph.net_index.items():
            out[net] = V4.from_phases(codes1[index], codes2[index])
        return out

    def static_net_codes(self, vector: Sequence[int]) -> Dict[str, int]:
        """Settled logic code per net for a static binary input vector."""
        codes = self._phase(tuple(int(v) for v in vector))
        return {net: codes[index] for net, index in self.graph.net_index.items()}

    def simulate_sequence(
        self, vectors: Sequence[Sequence[int]]
    ) -> List[V4]:
        """Simulate a multi-pattern sequence with rolling state.

        *vectors* are binary input patterns applied one after another;
        charge retention and gate-open lag carry across every step (a
        generalization of the two-pattern words to arbitrary test
        sequences).  Returns the output symbol observed at each step:
        the transition from the previous settled state to the new one.
        """
        responses: List[V4] = []
        prev_codes: Optional[List[int]] = None
        out = self.graph.output
        for raw in vectors:
            vector = tuple(int(v) for v in raw)
            if len(vector) != len(self.cell.inputs):
                raise SimulationError(
                    f"pattern {vector} does not match {len(self.cell.inputs)} inputs"
                )
            codes = self._phase_with_codes(vector, prev_codes)
            if prev_codes is None:
                responses.append(V4.from_phases(codes[out], codes[out]))
            else:
                responses.append(V4.from_phases(prev_codes[out], codes[out]))
            prev_codes = codes
        return responses

    # ------------------------------------------------------------------
    # Drive-strength measurement (delay-defect proxy)
    # ------------------------------------------------------------------
    def output_drive_resistance(
        self, word: Sequence[V4], output: Optional[str] = None
    ) -> float:
        """Effective resistance from an output to the rail it settled at.

        This is the switch-level proxy for transition speed: a defect that
        removes one finger of a parallel stack leaves the logic value
        intact but raises this resistance, which a transient (SPICE)
        simulation would report as a slow, delay-detected defect.  Returns
        ``inf`` when the output is floating or unknown.
        """
        first, second, _dynamic = self._split_word(word)
        codes1, codes2 = self.solve_word(word)
        out = self.graph.output if output is None else self.graph.net_index[output]
        level = codes2[out]
        if level not in (0, 1):
            return float("inf")
        cache_key = (first, second, out)
        cached = self._drive_cache.get(cache_key)
        if cached is not None:
            self.cache_hit_count += 1
            return cached
        resistance = self._prefetch_drive.pop(cache_key, None)
        if resistance is None:
            rail = self.graph.power if level == 1 else self.graph.ground
            resistance = self._effective_resistance(out, rail, codes1, codes2)
        self._drive_cache[cache_key] = resistance
        return resistance

    def _conducting_edges(
        self, codes1: Sequence[int], codes2: Sequence[int]
    ) -> List[Tuple[int, int, float]]:
        """Conducting edges in the final phase (unknown gates -> off)."""
        edges: List[Tuple[int, int, float]] = list(self.graph.static_edges)
        for dev in self.graph.devices:
            gate_value = codes1[dev.gate] if dev.gate_open else codes2[dev.gate]
            on = gate_value == 1 if dev.is_nmos else gate_value == 0
            if on:
                edges.append((dev.drain, dev.source, dev.g_on))
        return edges

    def _effective_resistance(
        self,
        node_a: int,
        node_b: int,
        codes1: Sequence[int],
        codes2: Sequence[int],
    ) -> float:
        """Two-point effective resistance over the conducting graph.

        Only *node_b* is held (grounded); every other node floats, so the
        result measures the strength of the path actually charging the
        output, independent of the other rails.
        """
        edges = self._conducting_edges(codes1, codes2)
        # Restrict to the connected component of node_a.
        adjacency: Dict[int, List[Tuple[int, float]]] = {}
        for a, b, g in edges:
            adjacency.setdefault(a, []).append((b, g))
            adjacency.setdefault(b, []).append((a, g))
        component = {node_a}
        frontier = [node_a]
        while frontier:
            current = frontier.pop()
            for neighbor, _g in adjacency.get(current, ()):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        if node_b not in component:
            return float("inf")
        free = sorted(component - {node_b})
        pos = {n: i for i, n in enumerate(free)}
        size = len(free)
        laplacian = np.zeros((size, size))
        for a, b, g in edges:
            if a not in component or a == b:
                continue
            if a in pos:
                laplacian[pos[a], pos[a]] += g
            if b in pos:
                laplacian[pos[b], pos[b]] += g
            if a in pos and b in pos:
                laplacian[pos[a], pos[b]] -= g
                laplacian[pos[b], pos[a]] -= g
        injection = np.zeros(size)
        injection[pos[node_a]] = 1.0
        try:
            voltages = np.linalg.solve(laplacian, injection)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate
            return float("inf")
        return float(voltages[pos[node_a]])


#: one cross-simulator work item: (simulator, words, per-word plans)
AcrossTask = Tuple[
    "CellSimulator", Sequence[Sequence[V4]], Optional[Sequence[WordPlan]]
]


def solve_words_across(
    tasks: Sequence[AcrossTask],
    max_rows: int = 4096,
    assemble: bool = True,
) -> List[List[Tuple[List[int], List[int]]]]:
    """Solve many simulators' stimulus sets through one packed kernel.

    The cross-cell analogue of :meth:`CellSimulator.solve_words`: instead
    of one :meth:`~repro.simulation.solver.StaticSolver.solve_batch` call
    per (cell, defect), the missing phases of *every* task are packed
    into a handful of multi-topology
    :func:`~repro.simulation.packed.solve_packed` flushes (windowed at
    *max_rows* rows), which is where the throughput win at library scale
    comes from — the per-call NumPy overhead stops scaling with the
    number of defects.

    Element ``[i][j]`` equals ``tasks[i]`` solving its word ``j`` through
    the ordinary sequential path, **including the cost accounting**:
    planning excludes phases a signature-equal sibling earlier in the
    task list already has in flight (exactly the phases a sequential
    sweep would have found memoized), and per-word assembly runs in task
    order against the shared staged dicts, so every task's solve /
    cache-hit / batched counters match a per-task ``solve_words`` sweep.
    Tasks with ``batched=False`` simulators skip planning and assemble
    through the scalar path; mixing them *before* batched signature
    siblings voids the counter-identity (the generation flow never does).

    With ``assemble=False`` the call stops after the packed flushes and
    returns ``[]``: every planned phase sits in the simulators' staged
    dicts, and a later per-task :meth:`CellSimulator.solve_words` (in
    task order) finds nothing left to plan and only assembles — the
    generation flow uses this to keep its per-defect loop untouched
    while the solving itself is packed across cells.
    """
    normalized: List[
        Tuple[CellSimulator, Sequence[Sequence[V4]], Sequence[WordPlan]]
    ] = []
    for sim, words, plans in tasks:
        if plans is None:
            plans = [sim._split_word(word) for word in words]
        normalized.append((sim, words, plans))
    if not normalized:
        return []

    pending_reqs: List[
        Tuple[CellSimulator, List[Tuple[int, ...]], Optional[List[List[int]]]]
    ] = []
    pending_sinks: List = []
    pending_rows = 0

    def flush() -> None:
        nonlocal pending_reqs, pending_sinks, pending_rows
        if not pending_reqs:
            return
        with obs.tracer().span(
            "solver.packed",
            rows=pending_rows,
            requests=len(pending_reqs),
        ):
            results = solve_packed(
                [
                    PackedRequest(sim.solver, vectors, prevs)
                    for sim, vectors, prevs in pending_reqs
                ]
            )
        obs.metrics().inc(M_PACKED_ROWS, pending_rows)
        obs.metrics().inc(M_PACKED_FLUSHES)
        for sink, result in zip(pending_sinks, results):
            sink(result)
        pending_reqs = []
        pending_sinks = []
        pending_rows = 0

    def enqueue(sim, vectors, prevs, sink) -> None:
        nonlocal pending_rows
        pending_reqs.append((sim, vectors, prevs))
        pending_sinks.append(sink)
        pending_rows += len(vectors)
        if pending_rows >= max_rows:
            flush()

    def stage1_sink(sim, vectors):
        def deliver(results) -> None:
            sim._staged_memoryless.update(zip(vectors, results))

        return deliver

    def stage2_sink(sim, keys):
        def deliver(results) -> None:
            for key, result in zip(keys, results):
                sim._staged_history[key] = result.codes

        return deliver

    # Stage 1 planning: every task's missing memoryless vectors, with
    # per-group (shared staged dict == shared signature) in-flight sets.
    group_planned: Dict[int, set] = {}
    for sim, _words, plans in normalized:
        if not sim.batched:
            continue
        planned = group_planned.setdefault(id(sim._staged_memoryless), set())
        need = sim._plan_stage1(plans, planned)
        if not need:
            continue
        to_solve = sim._take_prefetched_stage1(need)
        sim.batched_count += len(need)
        if to_solve:
            planned.update(to_solve)
            enqueue(sim, to_solve, None, stage1_sink(sim, to_solve))
    flush()

    # Stage 2 planning: history-dependent survivors (needs the stage-1
    # results, hence the barrier flush above).
    group_planned = {}
    for sim, _words, plans in normalized:
        if not sim.batched:
            continue
        planned = group_planned.setdefault(id(sim._staged_history), set())
        pending, prevs = sim._plan_stage2(plans, planned)
        if not pending:
            continue
        to_solve2, prevs2 = sim._take_prefetched_stage2(pending, prevs)
        sim.batched_count += len(pending)
        if to_solve2:
            planned.update(to_solve2)
            enqueue(
                sim,
                [key[0] for key in to_solve2],
                prevs2,
                stage2_sink(sim, to_solve2),
            )
    flush()

    if not assemble:
        return []

    # Assembly in task order: sequential order within every signature
    # group, so staged pops and cache hits land on the same simulators
    # as a per-task sweep.
    return [
        [sim.solve_word(word, plan) for word, plan in zip(words, plans)]
        for sim, words, plans in normalized
    ]


def golden_simulator(
    cell: CellNetlist, params: Optional[ElectricalParams] = None
) -> CellSimulator:
    """Convenience constructor for the defect-free simulation."""
    return CellSimulator(cell, params=params, effect=GOLDEN)


def logic_check(
    cell: CellNetlist,
    expected,
    params: Optional[ElectricalParams] = None,
    output: Optional[str] = None,
) -> List[Tuple[Tuple[int, ...], int, int]]:
    """Compare a cell's static behaviour against a Boolean reference.

    *expected* is a :class:`repro.logic.expr.Expr` over the cell's input
    names; *output* picks the port to check (first output by default).
    Returns mismatches as (vector, simulated, expected); an empty list
    means the netlist implements the function.
    """
    sim = golden_simulator(cell, params)
    port = output or cell.outputs[0]
    node = sim.graph.net_index[port]
    vectors = list(itertools.product((0, 1), repeat=len(cell.inputs)))
    words = [
        word_from_phases(bits, bits)
        for bits in vectors
    ]
    solved = sim.solve_words(words)
    mismatches = []
    for bits, (_codes1, codes2) in zip(vectors, solved):
        env = dict(zip(cell.inputs, bits))
        got = codes2[node]
        want = expected.evaluate(env)
        if got != want:
            mismatches.append((bits, got, want))
    return mismatches
