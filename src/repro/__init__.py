"""repro — learning-based cell-aware model generation (DATE 2021 repro).

Subpackages
-----------
``repro.logic``
    Four-valued stimulus algebra and Boolean expressions.
``repro.spice``
    SPICE/CDL netlist model, parser and writer.
``repro.library``
    Standard-cell synthesis, function catalog, synthetic technologies.
``repro.simulation``
    Switch-level cell simulation (the SPICE substitute).
``repro.defects``
    Cell-internal defect models, universes, equivalence classes.
``repro.camodel``
    CA model data structures and the conventional generation flow.
``repro.camatrix``
    The paper's core: CA-matrix construction and transistor renaming.
``repro.learning``
    From-scratch ML estimators and the paper's evaluation protocols.
``repro.flow``
    Structural analysis, the hybrid generation flow, the cost model.
``repro.experiments``
    One regenerator per paper table / figure.
``repro.obs``
    Run-scoped tracing, metrics and structured event logging
    (dependency-free; off by default).
"""

__version__ = "1.0.0"

__all__ = [
    "logic",
    "spice",
    "library",
    "simulation",
    "defects",
    "camodel",
    "camatrix",
    "learning",
    "flow",
    "experiments",
    "obs",
]
